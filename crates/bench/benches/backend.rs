//! E7 — §5.1 "column-based systems such as MonetDB are well suited for
//! Charles' workloads": the same advisor workload on the columnar engine
//! vs the row-store baseline, plus the two primitive operations (counts
//! over predicates, medians) in isolation.

use charles_core::Advisor;
use charles_datagen::voc_table;
use charles_sdl::eval;
use charles_store::{Backend, RowTable};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_backend(c: &mut Criterion) {
    let col = voc_table(100_000, 7);
    let rowstore = RowTable::from_table(&col);
    let context = "(type_of_boat: , tonnage: , departure_harbour: , built: )";

    let mut group = c.benchmark_group("backend_advise");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function(BenchmarkId::new("advise", "columnar"), |b| {
        let advisor = Advisor::new(&col);
        b.iter(|| advisor.advise_str(context).unwrap().ranked.len())
    });
    group.bench_function(BenchmarkId::new("advise", "rowstore"), |b| {
        let advisor = Advisor::new(&rowstore);
        b.iter(|| advisor.advise_str(context).unwrap().ranked.len())
    });
    group.finish();

    let mut ops = c.benchmark_group("backend_ops");
    ops.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let q = charles_sdl::parse_query("(tonnage: [300,700])", col.schema()).unwrap();
    let pred = eval::lower(&q);
    let sel_col = col.eval(&pred).unwrap();
    let sel_row = rowstore.eval(&pred).unwrap();
    ops.bench_function(BenchmarkId::new("count", "columnar"), |b| {
        b.iter(|| col.count(&pred).unwrap())
    });
    ops.bench_function(BenchmarkId::new("count", "rowstore"), |b| {
        b.iter(|| rowstore.count(&pred).unwrap())
    });
    ops.bench_function(BenchmarkId::new("median", "columnar"), |b| {
        b.iter(|| col.median("tonnage", &sel_col).unwrap())
    });
    ops.bench_function(BenchmarkId::new("median", "rowstore"), |b| {
        b.iter(|| rowstore.median("tonnage", &sel_row).unwrap())
    });
    ops.bench_function(BenchmarkId::new("frequencies", "columnar"), |b| {
        b.iter(|| {
            col.frequencies("departure_harbour", &sel_col)
                .unwrap()
                .0
                .total()
        })
    });
    ops.bench_function(BenchmarkId::new("frequencies", "rowstore"), |b| {
        b.iter(|| {
            rowstore
                .frequencies("departure_harbour", &sel_row)
                .unwrap()
                .0
                .total()
        })
    });
    ops.finish();
}

criterion_group!(benches, bench_backend);
criterion_main!(benches);
