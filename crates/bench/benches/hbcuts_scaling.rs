//! HB-cuts pair-argmin scaling: incremental (`hb_cuts`) vs the naive
//! O(k²)-probes reference (`hb_cuts_naive`) as the candidate count
//! grows. Both produce bitwise-identical advice (pinned by
//! `tests/hbcuts_equivalence.rs`), so this measures pure execution
//! strategy: run-local pair carrying + O(k) frontier fan-out against
//! per-iteration full re-enumeration of the mutexed memo with String
//! fingerprint re-renders.
//!
//! The companion probe-count table (INDEP memo probes per run, the
//! `≥ 2×` acceptance number) comes from
//! `cargo run -p charles-bench --bin experiments -- e13`.

use charles_bench::context_over;
use charles_core::{hb_cuts, hb_cuts_naive, Config, Explorer};
use charles_datagen::sweep_table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const CANDIDATES: [usize; 4] = [4, 8, 12, 16];

fn bench_hbcuts_scaling(c: &mut Criterion) {
    // A deep composing run (max_indep = 1.0) is the worst case for the
    // pair argmin: the loop runs until the depth bound.
    let cfg = Config::default().with_max_indep(1.0).with_max_depth(48);

    let mut group = c.benchmark_group("hbcuts_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &k in &CANDIDATES {
        let table = sweep_table(10_000, k, 11);
        let ctx = context_over(&table, k);
        group.bench_function(BenchmarkId::new("incremental", k), |b| {
            b.iter(|| {
                let ex = Explorer::new(&table, cfg.clone(), ctx.clone()).unwrap();
                hb_cuts(&ex).unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("naive", k), |b| {
            b.iter(|| {
                let ex = Explorer::new(&table, cfg.clone(), ctx.clone()).unwrap();
                hb_cuts_naive(&ex).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hbcuts_scaling);
criterion_main!(benches);
