//! E5 — §5.1 horizontal scalability: HB-cuts runtime as the number of
//! context attributes grows, with the INDEP/selection memoization
//! ablation ("the calculations of SDL products and entropy can be reused
//! from one iteration to the next").

use charles_bench::explorer_over;
use charles_core::{hb_cuts, Config};
use charles_datagen::sweep_table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_horizontal(c: &mut Criterion) {
    let mut group = c.benchmark_group("horizontal");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for k in [2usize, 4, 6, 8] {
        let t = sweep_table(20_000, k, 5);
        group.bench_with_input(BenchmarkId::new("memoized", k), &k, |b, &k| {
            b.iter(|| {
                let ex = explorer_over(&t, Config::default(), k);
                hb_cuts(&ex).unwrap().ranked.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("no_memo", k), &k, |b, &k| {
            b.iter(|| {
                let ex = explorer_over(&t, Config::default().with_memoize(false), k);
                hb_cuts(&ex).unwrap().ranked.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_horizontal);
criterion_main!(benches);
