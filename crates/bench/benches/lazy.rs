//! E11 — §5.2 lazy generation: time-to-first-answer vs the full eager
//! enumeration, as the attribute count grows.

use charles_bench::{context_over, explorer_over};
use charles_core::{hb_cuts, Config, Explorer, LazyGenerator};
use charles_datagen::sweep_table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_lazy(c: &mut Criterion) {
    let mut group = c.benchmark_group("lazy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for k in [4usize, 6, 8] {
        let t = sweep_table(20_000, k, 8);
        group.bench_with_input(BenchmarkId::new("first_answer", k), &k, |b, &k| {
            b.iter(|| {
                let ex = Explorer::new(&t, Config::default(), context_over(&t, k)).unwrap();
                let mut gen = LazyGenerator::new(&ex);
                gen.next_segmentation().unwrap().is_some()
            })
        });
        group.bench_with_input(BenchmarkId::new("full_run", k), &k, |b, &k| {
            b.iter(|| {
                let ex = explorer_over(&t, Config::default(), k);
                hb_cuts(&ex).unwrap().ranked.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lazy);
criterion_main!(benches);
