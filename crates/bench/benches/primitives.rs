//! E1 (timed side) — microbenchmarks of the §4.1 primitives and metrics:
//! CUT (numeric + nominal), COMPOSE, PRODUCT, entropy, INDEP.

use charles_bench::explorer_over;
use charles_core::{compose, cut_segmentation, entropy, indep, product, Config, Explorer};
use charles_datagen::voc_table;
use charles_sdl::Segmentation;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_primitives(c: &mut Criterion) {
    let t = voc_table(50_000, 99);
    let mut group = c.benchmark_group("primitives");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("cut_numeric_50k", |b| {
        b.iter(|| {
            // Fresh explorer per iteration: measured work includes the
            // median scan, not the cache hit.
            let ex = explorer_over(&t, Config::default().with_memoize(false), 5);
            let base = Segmentation::singleton(ex.context().clone());
            cut_segmentation(&ex, &base, "tonnage").unwrap().unwrap()
        })
    });

    group.bench_function("cut_nominal_50k", |b| {
        b.iter(|| {
            let ex = explorer_over(&t, Config::default().with_memoize(false), 5);
            let base = Segmentation::singleton(ex.context().clone());
            cut_segmentation(&ex, &base, "type_of_boat")
                .unwrap()
                .unwrap()
        })
    });

    // Compose / product / indep over prepared halves, memoized selections.
    let ex = explorer_over(&t, Config::default(), 5);
    let base = Segmentation::singleton(ex.context().clone());
    let s_type = cut_segmentation(&ex, &base, "type_of_boat")
        .unwrap()
        .unwrap();
    let s_ton = cut_segmentation(&ex, &base, "tonnage").unwrap().unwrap();

    group.bench_function("compose_2x2_50k", |b| {
        b.iter(|| compose(&ex, &s_type, &s_ton).unwrap().unwrap())
    });
    group.bench_function("product_2x2_50k", |b| {
        b.iter(|| product(&ex, &s_type, &s_ton).unwrap())
    });
    group.bench_function("entropy_50k", |b| b.iter(|| entropy(&ex, &s_type).unwrap()));
    group.bench_function("indep_cold_50k", |b| {
        b.iter(|| {
            let ex = explorer_over(&t, Config::default().with_memoize(false), 5);
            let base = Segmentation::singleton(ex.context().clone());
            let s1 = cut_segmentation(&ex, &base, "type_of_boat")
                .unwrap()
                .unwrap();
            let s2 = cut_segmentation(&ex, &base, "tonnage").unwrap().unwrap();
            indep(&ex, &s1, &s2).unwrap()
        })
    });
    group.bench_function("indep_memoized_50k", |b| {
        // After the first call this is a pure cache hit: the §5.1 reuse.
        let _ = indep(&ex, &s_type, &s_ton).unwrap();
        b.iter(|| indep(&ex, &s_type, &s_ton).unwrap())
    });
    group.finish();

    let mut sel_group = c.benchmark_group("selection");
    sel_group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    sel_group.bench_function("eval_conjunction_50k", |b| {
        let q = charles_sdl::parse_query(
            "(type_of_boat: {fluit, jacht}, tonnage: [200,600])",
            t.schema(),
        )
        .unwrap();
        let ex = Explorer::new(&t, Config::default().with_memoize(false), q.clone()).unwrap();
        b.iter(|| ex.selection(&q).unwrap().count_ones())
    });
    sel_group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
