//! E9 — method comparison: the runtime cost of HB-cuts vs the related-work
//! baselines (facets, random, adaptive per-piece cuts, exhaustive
//! enumeration, CLIQUE-style grids) on the VOC dataset. Quality numbers
//! (entropy / breadth / simplicity) are reported by the `experiments`
//! binary; here we measure time.

use charles_bench::explorer_over;
use charles_core::baselines::{
    clique_clusters, exhaustive_segmentations, facet_segmentations, random_segmentations,
    CliqueOptions, ExhaustiveOptions, RandomOptions,
};
use charles_core::{adaptive_segmentations, hb_cuts, AdaptiveOptions, Config};
use charles_datagen::voc_table;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_quality(c: &mut Criterion) {
    let t = voc_table(20_000, 21);
    let mut group = c.benchmark_group("methods_voc20k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("hb_cuts", |b| {
        b.iter(|| {
            let ex = explorer_over(&t, Config::default(), 5);
            hb_cuts(&ex).unwrap().ranked.len()
        })
    });
    group.bench_function("facets", |b| {
        b.iter(|| {
            let ex = explorer_over(&t, Config::default(), 5);
            facet_segmentations(&ex, 8).unwrap().len()
        })
    });
    group.bench_function("random", |b| {
        b.iter(|| {
            let ex = explorer_over(&t, Config::default(), 5);
            random_segmentations(
                &ex,
                RandomOptions {
                    count: 8,
                    target_depth: 8,
                    seed: 3,
                },
            )
            .unwrap()
            .len()
        })
    });
    group.bench_function("adaptive", |b| {
        b.iter(|| {
            let ex = explorer_over(&t, Config::default(), 5);
            adaptive_segmentations(
                &ex,
                AdaptiveOptions {
                    restarts: 8,
                    target_depth: 8,
                    exploration: 0.9,
                    seed: 4,
                },
            )
            .unwrap()
            .len()
        })
    });
    group.bench_function("exhaustive_subset3", |b| {
        b.iter(|| {
            let ex = explorer_over(&t, Config::default(), 5);
            exhaustive_segmentations(
                &ex,
                ExhaustiveOptions {
                    max_subset: 3,
                    max_depth: 16,
                },
            )
            .unwrap()
            .len()
        })
    });
    group.bench_function("clique", |b| {
        b.iter(|| {
            let ex = explorer_over(&t, Config::default(), 5);
            clique_clusters(&ex, CliqueOptions::default())
                .unwrap()
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
