//! E10 — §5.2 quantile cuts: the cost of a k-way quantile cut vs iterated
//! median cuts reaching the same piece count, on a skewed column.

use charles_core::{cut_segmentation, quantile_cut_query, Config, Explorer};
use charles_datagen::weblog_table;
use charles_sdl::{Query, Segmentation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_quantile(c: &mut Criterion) {
    let t = weblog_table(50_000, 31);
    let mut group = c.benchmark_group("quantile_latency50k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for k in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("quantile_cut", k), &k, |b, &k| {
            b.iter(|| {
                let ex = Explorer::new(
                    &t,
                    Config::default().with_memoize(false),
                    Query::wildcard(&["latency_ms"]),
                )
                .unwrap();
                quantile_cut_query(&ex, ex.context(), "latency_ms", k)
                    .unwrap()
                    .unwrap()
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("iterated_median", k), &k, |b, &k| {
            b.iter(|| {
                let ex = Explorer::new(
                    &t,
                    Config::default().with_memoize(false),
                    Query::wildcard(&["latency_ms"]),
                )
                .unwrap();
                let mut seg = Segmentation::singleton(ex.context().clone());
                while seg.depth() < k {
                    match cut_segmentation(&ex, &seg, "latency_ms").unwrap() {
                        Some(next) => seg = next,
                        None => break,
                    }
                }
                seg.depth()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quantile);
criterion_main!(benches);
