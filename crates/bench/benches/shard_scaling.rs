//! Shard scaling: the paper's two workhorse operations — counts over
//! predicates and median calculations (§5.1) — on `ShardedTable` at
//! 1/2/4/8 row-range shards, against the unsharded `Table` baseline.
//! Shard-parallel evaluation is bitwise identical to the baseline (pinned
//! by `tests/backend_contract.rs`), so this measures pure execution
//! strategy: per-shard fan-out cost vs multi-core scan/gather throughput.

use charles_datagen::voc_table;
use charles_sdl::eval;
use charles_store::{Backend, ShardedTable};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_shard_scaling(c: &mut Criterion) {
    let table = voc_table(200_000, 7);
    let q = charles_sdl::parse_query("(tonnage: [300,700])", table.schema()).unwrap();
    let pred = eval::lower(&q);
    let sel = table.eval(&pred).unwrap();
    let sharded: Vec<ShardedTable> = SHARD_COUNTS
        .iter()
        .map(|&n| ShardedTable::from_table(&table, n))
        .collect();

    let mut count = c.benchmark_group("shard_scaling_count");
    count
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    count.bench_function(BenchmarkId::new("count", "table"), |b| {
        b.iter(|| table.count(&pred).unwrap())
    });
    for s in &sharded {
        count.bench_function(
            BenchmarkId::new("count", format!("{}-shards", s.shard_count())),
            |b| b.iter(|| s.count(&pred).unwrap()),
        );
    }
    count.finish();

    let mut median = c.benchmark_group("shard_scaling_median");
    median
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    median.bench_function(BenchmarkId::new("median", "table"), |b| {
        b.iter(|| table.median("tonnage", &sel).unwrap())
    });
    for s in &sharded {
        median.bench_function(
            BenchmarkId::new("median", format!("{}-shards", s.shard_count())),
            |b| b.iter(|| s.median("tonnage", &sel).unwrap()),
        );
    }
    median.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
