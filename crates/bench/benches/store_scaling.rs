//! Store scaling: dense vs Roaring-compressed selection bitmaps on the
//! operations the advisor's merge path leans on — `and`, `or`,
//! `and_count` and iteration — at selectivities from full scans down to
//! the sparse drill-downs where compression pays. Correctness is pinned
//! elsewhere (`crates/store/tests/bitmap_containers.rs` drives every op
//! against a dense oracle); this measures the time side of the
//! memory/time trade the `e14` experiment quantifies in
//! `BENCH_store.json`.

use charles_store::Bitmap;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Ten million rows: big enough that container effects dominate, small
/// enough for a bench iteration budget.
const ROWS: usize = 10_000_000;

/// A selection keeping every `stride`-th row (dense layout).
fn strided(rows: usize, stride: usize) -> Bitmap {
    Bitmap::from_indices(rows, (0..rows).step_by(stride)).to_dense()
}

fn bench_store_scaling(c: &mut Criterion) {
    // (label, stride): 50% scan, 1% filter, 0.1% drill-down.
    let cases = [("half", 2usize), ("percent", 100), ("permille", 1000)];

    for (label, stride) in cases {
        let a_dense = strided(ROWS, stride);
        let b_dense = strided(ROWS, stride + 1);
        let a_comp = a_dense.compress();
        let b_comp = b_dense.compress();

        let mut g = c.benchmark_group(format!("store_scaling_{label}"));
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2));
        g.bench_function(BenchmarkId::new("and", "dense"), |b| {
            b.iter(|| a_dense.and(&b_dense).count_ones())
        });
        g.bench_function(BenchmarkId::new("and", "compressed"), |b| {
            b.iter(|| a_comp.and(&b_comp).count_ones())
        });
        g.bench_function(BenchmarkId::new("or", "dense"), |b| {
            b.iter(|| a_dense.or(&b_dense).count_ones())
        });
        g.bench_function(BenchmarkId::new("or", "compressed"), |b| {
            b.iter(|| a_comp.or(&b_comp).count_ones())
        });
        g.bench_function(BenchmarkId::new("and_count", "dense"), |b| {
            b.iter(|| a_dense.and_count(&b_dense))
        });
        g.bench_function(BenchmarkId::new("and_count", "compressed"), |b| {
            b.iter(|| a_comp.and_count(&b_comp))
        });
        g.bench_function(BenchmarkId::new("iter_ones", "dense"), |b| {
            b.iter(|| a_dense.iter_ones().sum::<usize>())
        });
        g.bench_function(BenchmarkId::new("iter_ones", "compressed"), |b| {
            b.iter(|| a_comp.iter_ones().sum::<usize>())
        });
        g.finish();
    }
}

criterion_group!(benches, bench_store_scaling);
criterion_main!(benches);
