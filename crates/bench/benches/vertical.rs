//! E6 — §5.1 vertical scalability: HB-cuts runtime as the table grows,
//! exact medians vs the §5.2 reservoir-sampled medians ("the calculation
//! of medians is a major bottleneck … not all tuples are necessary").

use charles_bench::explorer_over;
use charles_core::{hb_cuts, Config, MedianStrategy};
use charles_datagen::sweep_table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench_vertical(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertical");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for n in [1_000usize, 10_000, 100_000] {
        let t = sweep_table(n, 4, 6);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("exact_median", n), &n, |b, _| {
            b.iter(|| {
                let ex = explorer_over(&t, Config::default(), 4);
                hb_cuts(&ex).unwrap().ranked.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("sampled_median", n), &n, |b, _| {
            b.iter(|| {
                let ex = explorer_over(
                    &t,
                    Config::default().with_median(MedianStrategy::Sampled {
                        size: 1024,
                        seed: 9,
                    }),
                    4,
                );
                hb_cuts(&ex).unwrap().ranked.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vertical);
criterion_main!(benches);
