//! The experiment harness: regenerates every table/figure of the paper.
//!
//! ```sh
//! cargo run -p charles-bench --bin experiments --release            # all
//! cargo run -p charles-bench --bin experiments --release -- e5 e6  # some
//! cargo run -p charles-bench --bin experiments --release -- e4 --dataset voc.charles
//! ```
//!
//! Experiment ids follow DESIGN.md §4 (E1–E12). Output is the set of rows
//! recorded in EXPERIMENTS.md. `--dataset <path>` points the advisor
//! experiments (E4's Figure 1 panel and E7's backend ablation) at a
//! saved `.charles` file instead of the synthetic VOC register — write
//! one with `cargo run -p charles-datagen --bin datagen`.

use charles_bench::{explorer_over, fmt_duration, header, row, time_once};
use charles_core::baselines::{
    clique_clusters, exhaustive_segmentations, facet_segmentations, random_segmentations,
    CliqueOptions, ExhaustiveOptions, RandomOptions,
};
use charles_core::{
    adaptive_segmentations, compose, cut_segmentation, hb_cuts, hb_cuts_naive, indep, product,
    quantile_cut_query, AdaptiveOptions, Advisor, Config, Explorer, LazyGenerator, MedianStrategy,
};
use charles_datagen::{
    astro_table, correlated_pair_table, sweep_table, voc_table, weblog_table, DependencyKind,
};
use charles_sdl::{eval, Query, Segmentation};
use charles_store::{Backend, Bitmap, DataType, DiskTable, RowTable, Table, TableBuilder, Value};
use charles_viz::render_panel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut dataset: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--dataset" {
            let path = it.next().unwrap_or_else(|| {
                eprintln!("--dataset requires a path to a .charles file");
                std::process::exit(2);
            });
            dataset = Some(PathBuf::from(path));
        } else if a == "--json" {
            let path = it.next().unwrap_or_else(|| {
                eprintln!("--json requires an output path (e.g. BENCH_hbcuts.json)");
                std::process::exit(2);
            });
            json = Some(PathBuf::from(path));
        } else {
            args.push(a.to_lowercase());
        }
    }
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);

    if want("e1") {
        e1_figure2();
    }
    if want("e2") {
        e2_figure3();
    }
    if want("e3") {
        e3_figure4();
    }
    if want("e4") {
        e4_figure1(dataset.as_deref());
    }
    if want("e5") {
        e5_horizontal();
    }
    if want("e6") {
        e6_vertical();
    }
    if want("e7") {
        e7_backend(dataset.as_deref());
    }
    if want("e8") {
        e8_indep();
    }
    if want("e9") {
        e9_quality();
    }
    if want("e10") {
        e10_quantile();
    }
    if want("e11") {
        e11_lazy();
    }
    if want("e12") {
        e12_homogeneity_surprise();
    }
    if want("e13") {
        e13_hbcuts_scaling(json.as_deref());
    }
    if want("e14") {
        e14_store_scaling(json.as_deref());
    }
}

fn banner(id: &str, title: &str) {
    println!("\n==================================================================");
    println!("{id} — {title}");
    println!("==================================================================");
}

/// E1 — Figure 2: CUT, COMPOSE and PRODUCT on the boats example.
fn e1_figure2() {
    banner(
        "E1",
        "Figure 2: cut, composition and product of segmentations",
    );
    let mut b = TableBuilder::new("boats");
    b.add_column("type", DataType::Str)
        .add_column("tonnage", DataType::Int)
        .add_column("year", DataType::Int);
    for (ty, t, y) in [
        ("fluit", 1200, 1700),
        ("fluit", 1800, 1720),
        ("fluit", 2500, 1736),
        ("fluit", 4000, 1744),
        ("jacht", 1500, 1750),
        ("jacht", 2800, 1760),
        ("jacht", 3500, 1770),
        ("jacht", 4800, 1780),
    ] {
        b.push_row(vec![Value::str(ty), Value::Int(t), Value::Int(y)])
            .unwrap();
    }
    let t = b.finish();
    let ex = Explorer::new(
        &t,
        Config::default(),
        Query::wildcard(&["type", "tonnage", "year"]),
    )
    .unwrap();
    let base = Segmentation::singleton(ex.context().clone());
    let a = cut_segmentation(&ex, &base, "type").unwrap().unwrap();
    let bb = cut_segmentation(&ex, &base, "year").unwrap().unwrap();

    let show = |name: &str, s: &Segmentation| {
        println!("\n{name}:");
        for q in s.queries() {
            println!("  {:>2} rows  {q}", ex.count(q).unwrap());
        }
        println!(
            "  E = {:.3}, partition = {}",
            charles_core::entropy(&ex, s).unwrap(),
            s.check_partition(ex.backend(), ex.context_selection())
                .unwrap()
                .is_partition()
        );
    };
    show("set A (cut on type)", &a);
    show("set B (cut on year)", &bb);
    show(
        "CUT_tonnage(A)",
        &cut_segmentation(&ex, &a, "tonnage").unwrap().unwrap(),
    );
    show("COMPOSE(A, B)", &compose(&ex, &a, &bb).unwrap().unwrap());
    show(
        "A × B (empty cells pruned)",
        &product(&ex, &a, &bb).unwrap(),
    );
    println!(
        "\nINDEP(A, B) = {:.3}  (≪ 1: type and year are dependent, as the figure intends)",
        indep(&ex, &a, &bb).unwrap()
    );
}

/// E2 — Figure 3: the HB-cuts execution tree on five attributes.
fn e2_figure3() {
    banner(
        "E2",
        "Figure 3: example execution of HB-cuts (5 attributes)",
    );
    let mut rng = StdRng::seed_from_u64(42);
    let mut b = TableBuilder::new("t");
    for name in ["att1", "att2", "att3", "att4", "att5"] {
        b.add_column(name, DataType::Int);
    }
    for _ in 0..5000 {
        let a2: i64 = rng.gen_range(0..100);
        let a3 = a2 + rng.gen_range(-3i64..=3);
        let a1 = a2 / 2 + rng.gen_range(-2i64..=2);
        let a4: i64 = rng.gen_range(0..100);
        let a5 = a4 + rng.gen_range(-3i64..=3);
        b.push_row(vec![
            Value::Int(a1),
            Value::Int(a2),
            Value::Int(a3),
            Value::Int(a4),
            Value::Int(a5),
        ])
        .unwrap();
    }
    let t = b.finish();
    let ex = explorer_over(&t, Config::default(), 5);
    let out = hb_cuts(&ex).unwrap();
    println!(
        "seeds: {:?}  (skipped: {:?})",
        out.trace.seeds, out.trace.skipped
    );
    for step in &out.trace.steps {
        println!(
            "  {} {:?} × {:?}  INDEP={:.3} depth={}",
            if step.accepted { "compose" } else { "REJECT " },
            step.left_attrs,
            step.right_attrs,
            step.indep,
            step.depth
        );
    }
    println!(
        "stop: {:?}; returned {} segmentations (paper's figure: 8)",
        out.trace.stop,
        out.ranked.len()
    );
    for (i, r) in out.ranked.iter().enumerate() {
        println!(
            "  #{i} E={:.3} attrs={:?} depth={}",
            r.score.entropy,
            r.segmentation.attributes(),
            r.segmentation.depth()
        );
    }
}

/// E3 — Figure 4: stopping-criteria conformance.
fn e3_figure4() {
    banner("E3", "Figure 4: algorithm conformance (stopping criteria)");
    let t = voc_table(10_000, 11);
    header(&["maxIndep", "maxDepth", "answers", "compositions", "stop"]);
    for (mi, md) in [(0.0, 12), (0.99, 12), (1.0, 12), (0.99, 4), (1.0, 64)] {
        let cfg = Config::default().with_max_indep(mi).with_max_depth(md);
        let ex = Explorer::new(
            &t,
            cfg,
            Query::wildcard(&[
                "type_of_boat",
                "tonnage",
                "departure_harbour",
                "cape_arrival",
                "built",
            ]),
        )
        .unwrap();
        let out = hb_cuts(&ex).unwrap();
        row(&[
            format!("{mi}"),
            format!("{md}"),
            format!("{}", out.ranked.len()),
            format!("{}", out.trace.steps.iter().filter(|s| s.accepted).count()),
            format!("{:?}", out.trace.stop.unwrap()),
        ]);
    }
}

/// E4 — Figure 1: the advisor interface on the VOC data (or, with
/// `--dataset <path>`, on a saved `.charles` file served lazily).
fn e4_figure1(dataset: Option<&Path>) {
    let (ships, label): (Box<dyn Backend>, String) = match dataset {
        None => (
            Box::new(voc_table(20_000, 1713)),
            "synthetic VOC shipping data".into(),
        ),
        Some(path) => {
            let disk = DiskTable::open(path)
                .unwrap_or_else(|e| panic!("cannot open dataset {path:?}: {e}"));
            let label = format!("{:?} ({} rows, from disk)", disk.name(), disk.len());
            (Box::new(disk), label)
        }
    };
    banner("E4", &format!("Figure 1: the Charles interface on {label}"));
    let ships = ships.as_ref();
    // The default run keeps the exact Figure 1 context (pinned by
    // EXPERIMENTS.md); a --dataset run cannot assume those attribute
    // names and takes a wildcard over the first five columns instead.
    let context = match dataset {
        None => charles_sdl::parse_query(
            "(type_of_boat: , tonnage: , departure_harbour: , cape_arrival: , built: )",
            ships.schema(),
        )
        .unwrap(),
        Some(_) => charles_bench::context_over(ships, 5.min(ships.schema().arity())),
    };
    let advisor = Advisor::new(ships);
    let advice = match advisor.advise(context) {
        Ok(a) => a,
        Err(e) => {
            // A degenerate --dataset (empty, uniform) is an advisor
            // error, not a harness crash.
            println!("advisor could not segment this dataset: {e}");
            return;
        }
    };
    println!(
        "{}",
        render_panel(ships, &advice, 0, 110).expect("panel renders")
    );
    println!(
        "backend ops: {} scans, {} counts, {} medians; cache: {} hits / {} misses",
        advice.backend_ops.scans,
        advice.backend_ops.counts,
        advice.backend_ops.medians,
        advice.cache.sel_hits,
        advice.cache.sel_misses
    );
}

/// E5 — §5.1 horizontal scalability + memoization ablation + the
/// exhaustive-search wall.
fn e5_horizontal() {
    banner(
        "E5",
        "horizontal scalability: runtime vs #attributes (50k rows)",
    );
    header(&[
        "attrs",
        "hb-cuts",
        "hb (no memo)",
        "answers",
        "exhaustive",
        "exh answers",
    ]);
    for k in [2usize, 4, 6, 8, 10, 12] {
        let t = sweep_table(50_000, k, 5);
        let (d_memo, out) = time_once(|| {
            let ex = explorer_over(&t, Config::default(), k);
            hb_cuts(&ex).unwrap()
        });
        let (d_nomemo, _) = time_once(|| {
            let ex = explorer_over(&t, Config::default().with_memoize(false), k);
            hb_cuts(&ex).unwrap()
        });
        // Exhaustive enumeration only up to 8 attributes (2^k explosion).
        let (d_exh, n_exh) = if k <= 8 {
            let (d, r) = time_once(|| {
                let ex = explorer_over(&t, Config::default(), k);
                exhaustive_segmentations(
                    &ex,
                    ExhaustiveOptions {
                        max_subset: k,
                        max_depth: 16,
                    },
                )
                .unwrap()
            });
            (fmt_duration(d), format!("{}", r.len()))
        } else {
            ("—".into(), "—".into())
        };
        row(&[
            format!("{k}"),
            fmt_duration(d_memo),
            fmt_duration(d_nomemo),
            format!("{}", out.ranked.len()),
            d_exh,
            n_exh,
        ]);
    }
}

/// E6 — §5.1 vertical scalability + §5.2 sampled medians ablation.
fn e6_vertical() {
    banner(
        "E6",
        "vertical scalability: runtime vs #tuples (4 attributes)",
    );
    header(&["rows", "exact medians", "sampled (1k)", "entropy Δ"]);
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let t = sweep_table(n, 4, 6);
        let (d_exact, out_exact) = time_once(|| {
            let ex = explorer_over(&t, Config::default(), 4);
            hb_cuts(&ex).unwrap()
        });
        let (d_sample, out_sample) = time_once(|| {
            let ex = explorer_over(
                &t,
                Config::default().with_median(MedianStrategy::Sampled {
                    size: 1024,
                    seed: 9,
                }),
                4,
            );
            hb_cuts(&ex).unwrap()
        });
        let delta = (out_exact.ranked[0].score.entropy - out_sample.ranked[0].score.entropy).abs();
        row(&[
            format!("{n}"),
            fmt_duration(d_exact),
            fmt_duration(d_sample),
            format!("{delta:.4}"),
        ]);
    }
}

/// E7 — §5.1 "column stores suit Charles' workload": column vs row engine
/// (plus, under `--dataset`, the lazily loaded `.charles` file itself).
fn e7_backend(dataset: Option<&Path>) {
    banner("E7", "backend ablation: columnar vs row-store engine");
    let (col, disk): (Table, Option<DiskTable>) = match dataset {
        None => (voc_table(200_000, 7), None),
        Some(path) => {
            let d = DiskTable::open(path)
                .unwrap_or_else(|e| panic!("cannot open dataset {path:?}: {e}"));
            let t = d.to_table().expect("materialise dataset");
            // A fresh handle so the lazy engine's first-touch I/O is
            // actually measured (the materialisation above already
            // loaded every column of `d`).
            let fresh = DiskTable::open(path).expect("reopen dataset");
            (t, Some(fresh))
        }
    };
    let rowstore = RowTable::from_table(&col);
    let context = match dataset {
        None => "(type_of_boat: , tonnage: , departure_harbour: , built: )".to_string(),
        Some(_) => charles_bench::context_over(&col, 4.min(col.schema().arity())).to_string(),
    };
    let mut engines: Vec<(&str, &dyn Backend)> = vec![("columnar", &col), ("row-store", &rowstore)];
    if let Some(d) = &disk {
        engines.push(("disk (lazy)", d));
    }

    header(&["engine", "advise time", "scans", "counts", "medians"]);
    for (name, backend) in &engines {
        let advisor = Advisor::new(*backend);
        let (d, advice) = time_once(|| advisor.advise_str(&context));
        match advice {
            Ok(advice) => row(&[
                name.to_string(),
                fmt_duration(d),
                format!("{}", advice.backend_ops.scans),
                format!("{}", advice.backend_ops.counts),
                format!("{}", advice.backend_ops.medians),
            ]),
            // Degenerate datasets (empty, uniform) are advisor errors,
            // not harness crashes — report and move on.
            Err(e) => row(&[
                name.to_string(),
                format!("({e})"),
                "—".into(),
                "—".into(),
                "—".into(),
            ]),
        }
    }

    // Microbenchmark: one predicate count + one median, per engine. The
    // default run pins the historical VOC predicate; a --dataset run
    // derives an interquartile range over the first numeric column.
    let micro = match dataset {
        None => Some(("tonnage".to_string(), "(tonnage: [300,700])".to_string())),
        // First numeric column that actually has values (quantile is
        // None for empty or all-null columns — skip those rather than
        // panic on a degenerate dataset).
        Some(_) => col
            .schema()
            .columns()
            .iter()
            .filter(|c| c.ty.is_numeric())
            .find_map(|c| {
                let all = col.all_rows();
                let lo = col.quantile(&c.name, &all, 0.25).ok().flatten()?;
                let hi = col.quantile(&c.name, &all, 0.75).ok().flatten()?;
                Some((c.name.clone(), format!("({}: [{},{}])", c.name, lo, hi)))
            }),
    };
    if let Some((attr, pred_text)) = micro {
        println!(
            "\nper-operation microbenchmark ({} rows, {pred_text}):",
            col.len()
        );
        header(&["engine", "count(pred)", "median(sel)"]);
        let q = charles_sdl::parse_query(&pred_text, col.schema()).unwrap();
        let pred = eval::lower(&q);
        for (name, backend) in &engines {
            let d_count = charles_bench::time_mean(20, || backend.count(&pred).unwrap());
            let sel = backend.eval(&pred).unwrap();
            let d_median = charles_bench::time_mean(20, || backend.median(&attr, &sel).unwrap());
            row(&[
                name.to_string(),
                fmt_duration(d_count),
                fmt_duration(d_median),
            ]);
        }
    }
}

/// E8 — Proposition 1: the INDEP dial.
fn e8_indep() {
    banner(
        "E8",
        "Proposition 1: INDEP vs controlled dependency (40k rows)",
    );
    header(&["noise", "INDEP", "compositions", "stop"]);
    for step in 0..=10 {
        let noise = step as f64 / 10.0;
        let kind = match step {
            0 => DependencyKind::Functional,
            10 => DependencyKind::Independent,
            _ => DependencyKind::Noisy { noise },
        };
        let t = correlated_pair_table(40_000, 64, kind, 1000 + step);
        let ex = explorer_over(&t, Config::default(), 2);
        let base = Segmentation::singleton(ex.context().clone());
        let sa = cut_segmentation(&ex, &base, "a").unwrap().unwrap();
        let sb = cut_segmentation(&ex, &base, "b").unwrap().unwrap();
        let v = indep(&ex, &sa, &sb).unwrap();
        let out = hb_cuts(&ex).unwrap();
        row(&[
            format!("{noise:.1}"),
            format!("{v:.4}"),
            format!("{}", out.trace.steps.iter().filter(|s| s.accepted).count()),
            format!("{:?}", out.trace.stop.unwrap()),
        ]);
    }
}

/// E9 — quality comparison across methods and datasets.
fn e9_quality() {
    banner("E9", "quality: HB-cuts vs baselines (20k rows per dataset)");
    let datasets: Vec<(&str, Table, usize)> = vec![
        ("voc", voc_table(20_000, 21), 5),
        ("astro", astro_table(20_000, 22), 5),
        ("weblog", weblog_table(20_000, 23), 5),
    ];
    for (name, t, k) in &datasets {
        println!("\ndataset: {name}");
        header(&[
            "method",
            "time",
            "best E",
            "balance",
            "breadth",
            "simplicity",
            "answers",
        ]);
        let describe = |label: &str, d: std::time::Duration, ranked: &[charles_core::Ranked]| {
            if let Some(best) = ranked.first() {
                row(&[
                    label.to_string(),
                    fmt_duration(d),
                    format!("{:.3}", best.score.entropy),
                    format!("{:.3}", best.score.balance()),
                    format!("{}", best.score.breadth),
                    format!("{}", best.score.simplicity),
                    format!("{}", ranked.len()),
                ]);
            }
        };
        {
            let ex = explorer_over(t, Config::default(), *k);
            let (d, out) = time_once(|| hb_cuts(&ex).unwrap());
            describe("hb-cuts", d, &out.ranked);
        }
        {
            let ex = explorer_over(t, Config::default(), *k);
            let (d, out) = time_once(|| facet_segmentations(&ex, 8).unwrap());
            describe("facets", d, &out);
        }
        {
            let ex = explorer_over(t, Config::default(), *k);
            let (d, out) = time_once(|| {
                random_segmentations(
                    &ex,
                    RandomOptions {
                        count: 8,
                        target_depth: 8,
                        seed: 3,
                    },
                )
                .unwrap()
            });
            describe("random", d, &out);
        }
        {
            let ex = explorer_over(t, Config::default(), *k);
            let (d, out) = time_once(|| {
                adaptive_segmentations(
                    &ex,
                    AdaptiveOptions {
                        restarts: 8,
                        target_depth: 8,
                        exploration: 0.9,
                        seed: 4,
                    },
                )
                .unwrap()
            });
            describe("adaptive", d, &out);
        }
        {
            let ex = explorer_over(t, Config::default(), *k);
            let (d, out) = time_once(|| {
                exhaustive_segmentations(
                    &ex,
                    ExhaustiveOptions {
                        max_subset: 3,
                        max_depth: 16,
                    },
                )
                .unwrap()
            });
            describe("exhaustive≤3", d, &out);
        }
        {
            let ex = explorer_over(t, Config::default(), *k);
            let (d, cells) = time_once(|| clique_clusters(&ex, CliqueOptions::default()).unwrap());
            row(&[
                "clique".to_string(),
                fmt_duration(d),
                "—".into(),
                "—".into(),
                format!("{}", cells.iter().map(|c| c.dims).max().unwrap_or(0)),
                "—".into(),
                format!("{} cells", cells.len()),
            ]);
        }
    }
}

/// E10 — §5.2 quantile cuts: "there is no way to obtain a pie-chart
/// displaying the second third of the population" with median cuts.
///
/// Observable: how well any piece of each method matches the population's
/// middle rank band [1/3, 2/3] (Jaccard overlap in rank space). Median
/// cuts always place a boundary at rank 0.5 — inside the band — so they
/// can never isolate it; tercile cuts hit it exactly. We also report
/// the value-width of the matching piece: the Gaussian middle third is
/// value-narrow but population-dense, which is why the paper wants it.
fn e10_quantile() {
    banner(
        "E10",
        "quantile cuts: isolating the dense second third (50k Gaussian rows)",
    );
    let mut rng = StdRng::seed_from_u64(5);
    let mut b = TableBuilder::new("gauss");
    b.add_column("size", DataType::Float);
    for _ in 0..50_000 {
        let g: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
        b.push_row(vec![Value::Float(g * 10.0 + 100.0)]).unwrap();
    }
    let gauss = b.finish();
    let ex = Explorer::new(&gauss, Config::default(), Query::wildcard(&["size"])).unwrap();
    let n = ex.context_size() as f64;

    // Rank band [a, b] of a piece: fraction of rows strictly below its
    // bounds. Jaccard overlap with the middle third [1/3, 2/3].
    let rank_band = |q: &Query| -> (f64, f64) {
        let sel = ex.selection(q).unwrap();
        let (lo, hi) = ex.backend().min_max("size", &sel).unwrap().unwrap();
        let below = |v: &Value| {
            let p = charles_sdl::Constraint::range_with(
                Value::Float(f64::NEG_INFINITY),
                v.clone(),
                false,
            )
            .unwrap();
            let q = ex.context().refined("size", p).unwrap();
            ex.count(&q).unwrap() as f64 / n
        };
        (below(&lo), below(&hi))
    };
    let jaccard_middle = |band: (f64, f64)| -> f64 {
        let (a, b) = band;
        let (lo, hi) = (1.0 / 3.0, 2.0 / 3.0);
        let inter = (b.min(hi) - a.max(lo)).max(0.0);
        let union = (b.max(hi) - a.min(lo)).max(1e-12);
        inter / union
    };
    let piece_width = |q: &Query| -> f64 {
        let sel = ex.selection(q).unwrap();
        let (lo, hi) = ex.backend().min_max("size", &sel).unwrap().unwrap();
        hi.as_f64().unwrap() - lo.as_f64().unwrap()
    };

    header(&["method", "pieces", "best Jaccard", "piece width", "entropy"]);
    // Median route: iterated binary cuts to 4 pieces — bands are the
    // quartiles; the best match of [1/3,2/3] is [1/4,1/2] or [1/2,3/4].
    let mut med = Segmentation::singleton(ex.context().clone());
    for _ in 0..2 {
        med = cut_segmentation(&ex, &med, "size").unwrap().unwrap();
    }
    let (best_j_med, width_med) = med
        .queries()
        .iter()
        .map(|q| (jaccard_middle(rank_band(q)), piece_width(q)))
        .fold((0.0f64, 0.0f64), |acc, x| if x.0 > acc.0 { x } else { acc });
    row(&[
        "median cuts".into(),
        format!("{}", med.depth()),
        format!("{best_j_med:.3}"),
        format!("{width_med:.1}"),
        format!("{:.3}", charles_core::entropy(&ex, &med).unwrap()),
    ]);
    // Quantile route: terciles isolate the band exactly.
    let terciles = Segmentation::new(
        quantile_cut_query(&ex, ex.context(), "size", 3)
            .unwrap()
            .expect("cuttable"),
    );
    let (best_j_q, width_q) = terciles
        .queries()
        .iter()
        .map(|q| (jaccard_middle(rank_band(q)), piece_width(q)))
        .fold((0.0f64, 0.0f64), |acc, x| if x.0 > acc.0 { x } else { acc });
    row(&[
        "terciles".into(),
        format!("{}", terciles.depth()),
        format!("{best_j_q:.3}"),
        format!("{width_q:.1}"),
        format!("{:.3}", charles_core::entropy(&ex, &terciles).unwrap()),
    ]);

    println!("\nGaussian terciles (the paper's dense second third):");
    for q in terciles.queries() {
        println!(
            "  {:>6} rows  width {:>6.1}  {}",
            ex.count(q).unwrap(),
            piece_width(q),
            q
        );
    }
    println!(
        "\nmedian cuts put a boundary at rank 0.50 — inside the middle third —\n\
         so no median-route piece can reach Jaccard 1.0; terciles do."
    );

    // Discrete skew: on weblog.hour the diurnal mass makes equal-width
    // facet bins lopsided while equi-depth quantiles stay balanced.
    let weblog = weblog_table(50_000, 31);
    let exw = Explorer::new(&weblog, Config::default(), Query::wildcard(&["hour"])).unwrap();
    let quart = Segmentation::new(
        quantile_cut_query(&exw, exw.context(), "hour", 4)
            .unwrap()
            .expect("cuttable"),
    );
    println!(
        "\nweblog.hour 4-quantiles: E = {:.3} over {} pieces (ln 4 = {:.3})",
        charles_core::entropy(&exw, &quart).unwrap(),
        quart.depth(),
        4f64.ln()
    );
}

/// E12 — the measures the paper left open: homogeneity (§3's deliberate
/// gap) and surprise (§5.2's "interestingness"). Checks the paper's bet
/// that dependency-directed cuts create "good enough" groups without a
/// clustering objective: HB-cuts must beat random splits on homogeneity.
fn e12_homogeneity_surprise() {
    banner(
        "E12",
        "homogeneity & surprise: scoring the paper's structural bet",
    );
    let datasets: Vec<(&str, Table, usize)> = vec![
        ("voc", voc_table(20_000, 41), 5),
        ("astro", astro_table(20_000, 42), 5),
        ("weblog", weblog_table(20_000, 43), 5),
    ];
    header(&["dataset", "method", "homogeneity", "surprise", "entropy"]);
    for (name, t, k) in &datasets {
        let ex = explorer_over(t, Config::default(), *k);
        let hb = hb_cuts(&ex).unwrap();
        let best = &hb.ranked[0];
        let h = charles_core::homogeneity(&ex, &best.segmentation).unwrap();
        let s = charles_core::surprise(&ex, &best.segmentation).unwrap();
        row(&[
            name.to_string(),
            "hb-cuts".into(),
            format!("{:.3}", h.mean_gain),
            format!("{:.3}", s.weighted),
            format!("{:.3}", best.score.entropy),
        ]);
        let rand = random_segmentations(
            &ex,
            RandomOptions {
                count: 6,
                target_depth: best.segmentation.depth().max(2),
                seed: 13,
            },
        )
        .unwrap();
        let mut h_sum = 0.0;
        let mut s_sum = 0.0;
        let mut e_sum = 0.0;
        for r in &rand {
            h_sum += charles_core::homogeneity(&ex, &r.segmentation)
                .unwrap()
                .mean_gain;
            s_sum += charles_core::surprise(&ex, &r.segmentation)
                .unwrap()
                .weighted;
            e_sum += r.score.entropy;
        }
        let m = rand.len() as f64;
        row(&[
            name.to_string(),
            "random".into(),
            format!("{:.3}", h_sum / m),
            format!("{:.3}", s_sum / m),
            format!("{:.3}", e_sum / m),
        ]);
    }

    // Surprise as an alternative ranking lens on the VOC data.
    let t = voc_table(20_000, 41);
    let ex = explorer_over(&t, Config::default(), 5);
    let hb = hb_cuts(&ex).unwrap();
    let reordered = charles_core::rank_by_surprise(&ex, hb.ranked.clone()).unwrap();
    println!("\nVOC answers re-ranked by surprise (top 3):");
    for (score, r) in reordered.iter().take(3) {
        println!(
            "  surprise={score:.3} E={:.3} attrs={:?}",
            r.score.entropy,
            r.segmentation.attributes()
        );
    }
}

/// E13 — incremental vs naive HB-cuts pair argmin: wall time and INDEP
/// memo probes as the candidate count grows (the `hbcuts_scaling`
/// criterion bench times the same sweep; this one also counts probes
/// and can emit a machine-readable baseline with `--json <path>`).
fn e13_hbcuts_scaling(json: Option<&Path>) {
    banner(
        "E13",
        "HB-cuts argmin scaling: incremental vs naive (10k rows, deep runs)",
    );
    // max_indep = 1.0 keeps the loop composing to the depth bound — the
    // worst case for the pair argmin.
    let cfg = Config::default().with_max_indep(1.0).with_max_depth(48);
    header(&[
        "candidates",
        "incremental",
        "naive",
        "inc probes",
        "naive probes",
        "probe ratio",
    ]);
    let mut rows_json: Vec<String> = Vec::new();
    for k in [4usize, 8, 12, 16] {
        let table = sweep_table(10_000, k, 11);
        let ctx = charles_bench::context_over(&table, k);
        let run = |naive: bool| {
            let ex = Explorer::new(&table, cfg.clone(), ctx.clone()).unwrap();
            let (d, out) = time_once(|| {
                if naive {
                    hb_cuts_naive(&ex).unwrap()
                } else {
                    hb_cuts(&ex).unwrap()
                }
            });
            (d, out, ex.cache_stats().indep_probes())
        };
        let (d_inc, out_inc, probes_inc) = run(false);
        let (d_naive, out_naive, probes_naive) = run(true);
        // The two paths must agree — this harness double-checks the
        // equivalence contract on every baseline it emits.
        assert_eq!(
            out_inc.ranked.len(),
            out_naive.ranked.len(),
            "naive and incremental disagreed at k = {k}"
        );
        let ratio = probes_naive as f64 / probes_inc.max(1) as f64;
        row(&[
            format!("{k}"),
            fmt_duration(d_inc),
            fmt_duration(d_naive),
            format!("{probes_inc}"),
            format!("{probes_naive}"),
            format!("{ratio:.2}x"),
        ]);
        rows_json.push(format!(
            "{{\"candidates\":{k},\"incremental_us\":{},\"naive_us\":{},\"incremental_probes\":{probes_inc},\"naive_probes\":{probes_naive},\"probe_ratio\":{ratio:.4}}}",
            d_inc.as_micros(),
            d_naive.as_micros()
        ));
    }
    if let Some(path) = json {
        let payload = format!(
            "{{\"bench\":\"hbcuts_scaling\",\"rows\":10000,\"config\":{{\"max_indep\":1.0,\"max_depth\":48}},\"series\":[{}]}}\n",
            rows_json.join(",")
        );
        std::fs::write(path, payload).unwrap_or_else(|e| {
            eprintln!("cannot write {path:?}: {e}");
            std::process::exit(1);
        });
        println!("\nwrote {}", path.display());
    }
}

/// E14 — store scaling: resident bytes and op throughput of dense vs
/// Roaring-compressed selection bitmaps at 10⁷ rows. The JSON artefact
/// (`charles-store-scaling/v1`, committed as `BENCH_store.json`) is the
/// evidence behind the scaling claim: sparse drill-down selections cost
/// ≥ 4× less resident memory compressed — `load check` gates exactly
/// that on every CI run.
fn e14_store_scaling(json: Option<&Path>) {
    banner(
        "E14",
        "store scaling: dense vs compressed selection bitmaps (10M rows)",
    );
    const ROWS: usize = 10_000_000;
    const REPS: u32 = 10;
    header(&[
        "selection",
        "selectivity",
        "dense",
        "compressed",
        "bytes ratio",
        "and d/c",
        "count d/c",
    ]);
    let strided = |stride: usize| Bitmap::from_indices(ROWS, (0..ROWS).step_by(stride)).to_dense();
    let time_us = |f: &mut dyn FnMut()| {
        let (d, ()) = time_once(|| {
            for _ in 0..REPS {
                f();
            }
        });
        d.as_secs_f64() * 1e6 / REPS as f64
    };
    let mut rows_json: Vec<String> = Vec::new();
    // Strides: 50% scan, 1% filter, 0.1% and 0.01% drill-downs.
    for (label, stride) in [
        ("half", 2usize),
        ("percent", 100),
        ("permille", 1000),
        ("permyriad", 10_000),
    ] {
        let a = strided(stride);
        let b = strided(stride + 1);
        let (ac, bc) = (a.compress(), b.compress());
        // Differential double-check on the exact bitmaps being timed.
        assert_eq!(a.and(&b), ac.and(&bc), "and diverged at stride {stride}");
        assert_eq!(a.and_count(&b), ac.and_count(&bc));
        let (db, cb) = (
            a.resident_bytes() + b.resident_bytes(),
            ac.resident_bytes() + bc.resident_bytes(),
        );
        let ratio = db as f64 / cb as f64;
        let selectivity = 1.0 / stride as f64;
        let d_and = time_us(&mut || {
            std::hint::black_box(a.and(&b).count_ones());
        });
        let c_and = time_us(&mut || {
            std::hint::black_box(ac.and(&bc).count_ones());
        });
        let d_cnt = time_us(&mut || {
            std::hint::black_box(a.and_count(&b));
        });
        let c_cnt = time_us(&mut || {
            std::hint::black_box(ac.and_count(&bc));
        });
        row(&[
            label.to_string(),
            format!("{selectivity:.4}"),
            format!("{} KiB", db / 1024),
            format!("{} KiB", cb / 1024),
            format!("{ratio:.1}x"),
            format!("{:.2}x", d_and / c_and.max(1e-9)),
            format!("{:.2}x", d_cnt / c_cnt.max(1e-9)),
        ]);
        rows_json.push(format!(
            "{{\"label\":\"{label}\",\"stride\":{stride},\"selectivity\":{selectivity:.6},\"dense_bytes\":{db},\"compressed_bytes\":{cb},\"bytes_ratio\":{ratio:.4},\"dense_and_us\":{d_and:.2},\"compressed_and_us\":{c_and:.2},\"dense_and_count_us\":{d_cnt:.2},\"compressed_and_count_us\":{c_cnt:.2}}}"
        ));
    }
    if let Some(path) = json {
        let payload = format!(
            "{{\"schema\":\"charles-store-scaling/v1\",\"rows\":{ROWS},\"series\":[{}]}}\n",
            rows_json.join(",")
        );
        std::fs::write(path, payload).unwrap_or_else(|e| {
            eprintln!("cannot write {path:?}: {e}");
            std::process::exit(1);
        });
        println!("\nwrote {}", path.display());
    }
}

/// E11 — §5.2 lazy generation: time-to-first-answer.
fn e11_lazy() {
    banner("E11", "lazy generation: time-to-first vs full enumeration");
    header(&["attrs", "first answer", "full run", "answers", "speedup"]);
    for k in [4usize, 6, 8, 10] {
        let t = sweep_table(50_000, k, 8);
        let ex = Explorer::new(&t, Config::default(), charles_bench::context_over(&t, k)).unwrap();
        let (d_first, _) = time_once(|| {
            let mut gen = LazyGenerator::new(&ex);
            gen.next_segmentation().unwrap()
        });
        let ex2 = Explorer::new(&t, Config::default(), charles_bench::context_over(&t, k)).unwrap();
        let (d_full, out) = time_once(|| hb_cuts(&ex2).unwrap());
        row(&[
            format!("{k}"),
            fmt_duration(d_first),
            fmt_duration(d_full),
            format!("{}", out.ranked.len()),
            format!(
                "{:.0}x",
                d_full.as_secs_f64() / d_first.as_secs_f64().max(1e-9)
            ),
        ]);
    }
}
