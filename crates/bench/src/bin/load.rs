//! `charles-load` — drive load scenarios against `charles-serve`.
//!
//! ```text
//! cargo run --release -p charles-bench --bin load -- <mode> [options]
//!
//! Modes:
//!   smoke [--json PATH] [--addr HOST:PORT] [--proto http|binary]
//!       The pinned CI scenario. Boots an in-process server (or targets
//!       a live one via --addr — it must serve the VOC schema; with
//!       --proto binary the address is the wire listener's), prints
//!       the report, optionally writes the charles-load/v1 artefact.
//!       Exits non-zero on ANY error, non-2xx response or error frame.
//!   grid [--results PATH] [--rerun]
//!       Sweep shards × cache capacity × server workers. Completed
//!       configs are read from the results cache instead of re-run
//!       (--rerun ignores the cache).
//!   ab [--dim cutoff|proto] [--results PATH] [--rerun] [--json PATH]
//!       A/B one dimension, same workload otherwise:
//!         cutoff (default) — the charles-parallel dispatch cutoff:
//!             library default vs threshold 1 (every par_map forks).
//!         proto — HTTP/JSON vs the pipelined binary wire protocol on
//!             the saturation scenario; prints the cached-advice
//!             speedup, fails unless it clears the 5× bar, and with
//!             --json writes the charles-wire-ab/v1 artefact
//!             (committed as BENCH_wire.json).
//!   check PATH
//!       Validate a result artefact (CI gate for the committed
//!       BENCH_serve.json / BENCH_wire.json), dispatching on the
//!       schema tag: charles-load/v1 — field presence, percentile
//!       monotonicity, op accounting, clean-run invariants;
//!       charles-wire-ab/v1 — both embedded legs plus the ≥5×
//!       speedup gate; charles-store-scaling/v1 (BENCH_store.json) —
//!       byte accounting plus the ≥4× sparse resident-bytes gate.
//! ```

use charles_bench::load::{
    comparison_table, run_against, run_in_process, validate, validate_store_scaling,
    validate_wire_ab, wire_ab_speedup, wire_ab_to_json, LoadResult, Proto, ResultsCache,
    ScenarioConfig, STORE_SCALING_SCHEMA, WIRE_AB_MIN_SPEEDUP, WIRE_AB_SCHEMA,
};
use charles_bench::mini_json;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("smoke") => smoke(&args[1..]),
        Some("grid") => grid(&args[1..]),
        Some("ab") => ab(&args[1..]),
        Some("check") => check(&args[1..]),
        _ => {
            eprintln!("usage: load <smoke|grid|ab|check> [options] (see --help in the source)");
            2
        }
    };
    std::process::exit(code);
}

/// Pull `--flag VALUE` out of an option list.
fn opt_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn report(result: &LoadResult) {
    print!("{}", comparison_table(std::slice::from_ref(result)));
    println!(
        "  ops: {} total = {} measured + {} warmup + {} errors | mean {}µs | {} client connects | server: {} conns, {} reqs ({} 2xx / {} 4xx / {} 5xx) | cache: {} hits / {} misses / {} runs / {} evictions",
        result.ops_total,
        result.ops_measured,
        result.ops_warmup,
        result.errors,
        result.latency.mean,
        result.client_connects,
        result.server.connections,
        result.server.requests,
        result.server.responses_2xx,
        result.server.responses_4xx,
        result.server.responses_5xx,
        result.cache.hits,
        result.cache.misses,
        result.cache.runs,
        result.cache.evictions,
    );
    if let Some(err) = &result.first_error {
        println!("  first error: {err}");
    }
}

fn parse_proto(args: &[String]) -> Result<Proto, String> {
    match opt_value(args, "--proto") {
        None => Ok(Proto::Http),
        Some(v) => Proto::parse(&v).ok_or(v),
    }
    .map_err(|v| format!("bad --proto {v:?} (want http or binary)"))
}

fn smoke(args: &[String]) -> i32 {
    let proto = match parse_proto(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("smoke: {e}");
            return 2;
        }
    };
    let cfg = ScenarioConfig {
        proto,
        ..ScenarioConfig::smoke()
    };
    println!(
        "smoke: {} ops at {} ops/s over {} connections (warmup {}ms, proto {})",
        cfg.total_ops(),
        cfg.target_rps,
        cfg.connections,
        cfg.warmup.as_millis(),
        cfg.proto.as_str(),
    );
    let run = match opt_value(args, "--addr") {
        Some(addr) => match addr.parse() {
            Ok(addr) => run_against(addr, &cfg),
            Err(e) => {
                eprintln!("smoke: bad --addr {addr:?}: {e}");
                return 2;
            }
        },
        None => run_in_process(&cfg),
    };
    let result = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("smoke: harness failed: {e}");
            return 1;
        }
    };
    report(&result);
    if let Some(path) = opt_value(args, "--json") {
        if let Err(e) = std::fs::write(&path, result.to_json() + "\n") {
            eprintln!("smoke: writing {path}: {e}");
            return 1;
        }
        println!("  wrote {path}");
    }
    let non_2xx = result.server.responses_4xx + result.server.responses_5xx;
    if result.errors > 0 || non_2xx > 0 {
        eprintln!(
            "smoke: FAILED — {} client errors, {} non-2xx responses",
            result.errors, non_2xx
        );
        return 1;
    }
    println!("smoke: OK");
    0
}

/// The grid and A/B modes share one cached-run executor.
fn run_cached(cfg: &ScenarioConfig, cache: &mut ResultsCache, rerun: bool) -> Option<LoadResult> {
    if !rerun {
        if let Some(result) = cache.get(&cfg.fingerprint()) {
            println!("  {} — cached, skipping", cfg.name);
            return Some(result);
        }
    }
    println!("  {} — running ({} ops)…", cfg.name, cfg.total_ops());
    match run_in_process(cfg) {
        Ok(result) => {
            if let Err(e) = cache.put(&result) {
                eprintln!("  {}: could not persist result: {e}", cfg.name);
            }
            Some(result)
        }
        Err(e) => {
            eprintln!("  {}: harness failed: {e}", cfg.name);
            None
        }
    }
}

fn results_cache(args: &[String]) -> ResultsCache {
    let path = opt_value(args, "--results")
        .unwrap_or_else(|| "target/charles-load-results.tsv".to_string());
    let cache = ResultsCache::load(path);
    if !cache.is_empty() {
        println!(
            "{} completed config(s) in {} (pass --rerun to ignore)",
            cache.len(),
            cache.path().display()
        );
    }
    cache
}

fn grid(args: &[String]) -> i32 {
    let mut cache = results_cache(args);
    let rerun = has_flag(args, "--rerun");
    // A shorter, grid-sized variant of the smoke shape.
    let base = ScenarioConfig {
        duration: Duration::from_millis(2_000),
        warmup: Duration::from_millis(400),
        target_rps: 120.0,
        ..ScenarioConfig::smoke()
    };
    let mut results = Vec::new();
    let mut failed = false;
    for shards in [1usize, 4] {
        for cache_capacity in [0usize, 1024] {
            for server_workers in [2usize, 8] {
                let cfg = ScenarioConfig {
                    name: format!("grid-s{shards}-c{cache_capacity}-w{server_workers}"),
                    shards,
                    cache_capacity,
                    server_workers,
                    ..base.clone()
                };
                match run_cached(&cfg, &mut cache, rerun) {
                    Some(r) => results.push(r),
                    None => failed = true,
                }
            }
        }
    }
    println!("\n{}", comparison_table(&results));
    if failed {
        1
    } else {
        0
    }
}

fn ab(args: &[String]) -> i32 {
    match opt_value(args, "--dim").as_deref() {
        None | Some("cutoff") => ab_cutoff(args),
        Some("proto") => ab_proto(args),
        Some(other) => {
            eprintln!("ab: bad --dim {other:?} (want cutoff or proto)");
            2
        }
    }
}

fn ab_cutoff(args: &[String]) -> i32 {
    let mut cache = results_cache(args);
    let rerun = has_flag(args, "--rerun");
    // Hot-heavy and drill-dense: the advise path runs par_map over
    // small fan-outs constantly, which is exactly where the dispatch
    // cutoff pays (threshold 1 forks a worker pool for 2–3 items).
    let base = ScenarioConfig {
        duration: Duration::from_millis(2_500),
        warmup: Duration::from_millis(500),
        target_rps: 120.0,
        hot_percent: 50,
        ..ScenarioConfig::smoke()
    };
    let variants = [("ab-cutoff-default", 0usize), ("ab-cutoff-off", 1usize)];
    let mut results = Vec::new();
    for (name, par_threshold) in variants {
        let cfg = ScenarioConfig {
            name: name.to_string(),
            par_threshold,
            ..base.clone()
        };
        match run_cached(&cfg, &mut cache, rerun) {
            Some(r) => results.push(r),
            None => return 1,
        }
    }
    println!("\n{}", comparison_table(&results));
    if let [with_cutoff, without_cutoff] = results.as_slice() {
        let delta = |a: u64, b: u64| -> String {
            if b == 0 {
                "n/a".to_string()
            } else {
                format!("{:+.1}%", 100.0 * (a as f64 - b as f64) / b as f64)
            }
        };
        println!(
            "cutoff-default vs cutoff-off: p50 {} | p95 {} | p99 {}",
            delta(with_cutoff.latency.p50, without_cutoff.latency.p50),
            delta(with_cutoff.latency.p95, without_cutoff.latency.p95),
            delta(with_cutoff.latency.p99, without_cutoff.latency.p99),
        );
    }
    0
}

/// A/B the two listeners on the saturation scenario: same workload,
/// same box, run serially — the achieved-rate ratio IS the per-core
/// cached-advice speedup the binary protocol must prove.
fn ab_proto(args: &[String]) -> i32 {
    let mut cache = results_cache(args);
    let rerun = has_flag(args, "--rerun");
    let mut results = Vec::new();
    for proto in [Proto::Http, Proto::Binary] {
        let cfg = ScenarioConfig::throughput(proto);
        match run_cached(&cfg, &mut cache, rerun) {
            Some(r) => results.push(r),
            None => return 1,
        }
    }
    println!("\n{}", comparison_table(&results));
    let [http, binary] = results.as_slice() else {
        return 1;
    };
    let speedup = wire_ab_speedup(http, binary);
    println!(
        "binary vs http: {:.1} vs {:.1} cached-advice ops/s → {speedup:.2}× (bar: {WIRE_AB_MIN_SPEEDUP}×)",
        binary.achieved_rps, http.achieved_rps,
    );
    if let Some(path) = opt_value(args, "--json") {
        if let Err(e) = std::fs::write(&path, wire_ab_to_json(http, binary) + "\n") {
            eprintln!("ab: writing {path}: {e}");
            return 1;
        }
        println!("  wrote {path}");
    }
    let errors = http.errors + binary.errors;
    let non_2xx = http.server.responses_4xx
        + http.server.responses_5xx
        + binary.server.responses_4xx
        + binary.server.responses_5xx;
    if errors > 0 || non_2xx > 0 {
        eprintln!("ab: FAILED — {errors} client errors, {non_2xx} non-2xx responses");
        return 1;
    }
    if speedup < WIRE_AB_MIN_SPEEDUP {
        eprintln!(
            "ab: FAILED — binary speedup {speedup:.2}× is below the {WIRE_AB_MIN_SPEEDUP}× bar"
        );
        return 1;
    }
    println!("ab: OK");
    0
}

fn check(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: load check PATH");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check: reading {path}: {e}");
            return 1;
        }
    };
    let doc = match mini_json::parse(text.trim()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("check: {path} is not valid JSON: {e}");
            return 1;
        }
    };
    let (schema, result) = match doc.get("schema").and_then(mini_json::Json::as_str) {
        Some(WIRE_AB_SCHEMA) => (WIRE_AB_SCHEMA, validate_wire_ab(&doc)),
        Some(STORE_SCALING_SCHEMA) => (STORE_SCALING_SCHEMA, validate_store_scaling(&doc)),
        _ => ("charles-load/v1", validate(&doc)),
    };
    match result {
        Ok(()) => {
            println!("check: {path} is a valid {schema} artefact");
            0
        }
        Err(e) => {
            eprintln!("check: {path} FAILED validation: {e}");
            1
        }
    }
}
