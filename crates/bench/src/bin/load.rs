//! `charles-load` — drive load scenarios against `charles-serve`.
//!
//! ```text
//! cargo run --release -p charles-bench --bin load -- <mode> [options]
//!
//! Modes:
//!   smoke [--json PATH] [--addr HOST:PORT]
//!       The pinned CI scenario. Boots an in-process server (or targets
//!       a live one via --addr — it must serve the VOC schema), prints
//!       the report, optionally writes the charles-load/v1 artefact.
//!       Exits non-zero on ANY error or non-2xx response.
//!   grid [--results PATH] [--rerun]
//!       Sweep shards × cache capacity × server workers. Completed
//!       configs are read from the results cache instead of re-run
//!       (--rerun ignores the cache).
//!   ab [--results PATH] [--rerun]
//!       A/B the charles-parallel dispatch cutoff: library default vs
//!       threshold 1 (every par_map call forks, the pre-cutoff
//!       behaviour), same workload otherwise.
//!   check PATH
//!       Validate a charles-load/v1 artefact (CI gate for the
//!       committed BENCH_serve.json): schema, field presence,
//!       percentile monotonicity, op accounting, clean-run invariants.
//! ```

use charles_bench::load::{
    comparison_table, run_against, run_in_process, validate, LoadResult, ResultsCache,
    ScenarioConfig,
};
use charles_bench::mini_json;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("smoke") => smoke(&args[1..]),
        Some("grid") => grid(&args[1..]),
        Some("ab") => ab(&args[1..]),
        Some("check") => check(&args[1..]),
        _ => {
            eprintln!("usage: load <smoke|grid|ab|check> [options] (see --help in the source)");
            2
        }
    };
    std::process::exit(code);
}

/// Pull `--flag VALUE` out of an option list.
fn opt_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn report(result: &LoadResult) {
    print!("{}", comparison_table(std::slice::from_ref(result)));
    println!(
        "  ops: {} total = {} measured + {} warmup + {} errors | mean {}µs | {} client connects | server: {} conns, {} reqs ({} 2xx / {} 4xx / {} 5xx) | cache: {} hits / {} misses / {} runs / {} evictions",
        result.ops_total,
        result.ops_measured,
        result.ops_warmup,
        result.errors,
        result.latency.mean,
        result.client_connects,
        result.server.connections,
        result.server.requests,
        result.server.responses_2xx,
        result.server.responses_4xx,
        result.server.responses_5xx,
        result.cache.hits,
        result.cache.misses,
        result.cache.runs,
        result.cache.evictions,
    );
    if let Some(err) = &result.first_error {
        println!("  first error: {err}");
    }
}

fn smoke(args: &[String]) -> i32 {
    let cfg = ScenarioConfig::smoke();
    println!(
        "smoke: {} ops at {} ops/s over {} connections (warmup {}ms)",
        cfg.total_ops(),
        cfg.target_rps,
        cfg.connections,
        cfg.warmup.as_millis()
    );
    let run = match opt_value(args, "--addr") {
        Some(addr) => match addr.parse() {
            Ok(addr) => run_against(addr, &cfg),
            Err(e) => {
                eprintln!("smoke: bad --addr {addr:?}: {e}");
                return 2;
            }
        },
        None => run_in_process(&cfg),
    };
    let result = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("smoke: harness failed: {e}");
            return 1;
        }
    };
    report(&result);
    if let Some(path) = opt_value(args, "--json") {
        if let Err(e) = std::fs::write(&path, result.to_json() + "\n") {
            eprintln!("smoke: writing {path}: {e}");
            return 1;
        }
        println!("  wrote {path}");
    }
    let non_2xx = result.server.responses_4xx + result.server.responses_5xx;
    if result.errors > 0 || non_2xx > 0 {
        eprintln!(
            "smoke: FAILED — {} client errors, {} non-2xx responses",
            result.errors, non_2xx
        );
        return 1;
    }
    println!("smoke: OK");
    0
}

/// The grid and A/B modes share one cached-run executor.
fn run_cached(cfg: &ScenarioConfig, cache: &mut ResultsCache, rerun: bool) -> Option<LoadResult> {
    if !rerun {
        if let Some(result) = cache.get(&cfg.fingerprint()) {
            println!("  {} — cached, skipping", cfg.name);
            return Some(result);
        }
    }
    println!("  {} — running ({} ops)…", cfg.name, cfg.total_ops());
    match run_in_process(cfg) {
        Ok(result) => {
            if let Err(e) = cache.put(&result) {
                eprintln!("  {}: could not persist result: {e}", cfg.name);
            }
            Some(result)
        }
        Err(e) => {
            eprintln!("  {}: harness failed: {e}", cfg.name);
            None
        }
    }
}

fn results_cache(args: &[String]) -> ResultsCache {
    let path = opt_value(args, "--results")
        .unwrap_or_else(|| "target/charles-load-results.tsv".to_string());
    let cache = ResultsCache::load(path);
    if !cache.is_empty() {
        println!(
            "{} completed config(s) in {} (pass --rerun to ignore)",
            cache.len(),
            cache.path().display()
        );
    }
    cache
}

fn grid(args: &[String]) -> i32 {
    let mut cache = results_cache(args);
    let rerun = has_flag(args, "--rerun");
    // A shorter, grid-sized variant of the smoke shape.
    let base = ScenarioConfig {
        duration: Duration::from_millis(2_000),
        warmup: Duration::from_millis(400),
        target_rps: 120.0,
        ..ScenarioConfig::smoke()
    };
    let mut results = Vec::new();
    let mut failed = false;
    for shards in [1usize, 4] {
        for cache_capacity in [0usize, 1024] {
            for server_workers in [2usize, 8] {
                let cfg = ScenarioConfig {
                    name: format!("grid-s{shards}-c{cache_capacity}-w{server_workers}"),
                    shards,
                    cache_capacity,
                    server_workers,
                    ..base.clone()
                };
                match run_cached(&cfg, &mut cache, rerun) {
                    Some(r) => results.push(r),
                    None => failed = true,
                }
            }
        }
    }
    println!("\n{}", comparison_table(&results));
    if failed {
        1
    } else {
        0
    }
}

fn ab(args: &[String]) -> i32 {
    let mut cache = results_cache(args);
    let rerun = has_flag(args, "--rerun");
    // Hot-heavy and drill-dense: the advise path runs par_map over
    // small fan-outs constantly, which is exactly where the dispatch
    // cutoff pays (threshold 1 forks a worker pool for 2–3 items).
    let base = ScenarioConfig {
        duration: Duration::from_millis(2_500),
        warmup: Duration::from_millis(500),
        target_rps: 120.0,
        hot_percent: 50,
        ..ScenarioConfig::smoke()
    };
    let variants = [("ab-cutoff-default", 0usize), ("ab-cutoff-off", 1usize)];
    let mut results = Vec::new();
    for (name, par_threshold) in variants {
        let cfg = ScenarioConfig {
            name: name.to_string(),
            par_threshold,
            ..base.clone()
        };
        match run_cached(&cfg, &mut cache, rerun) {
            Some(r) => results.push(r),
            None => return 1,
        }
    }
    println!("\n{}", comparison_table(&results));
    if let [with_cutoff, without_cutoff] = results.as_slice() {
        let delta = |a: u64, b: u64| -> String {
            if b == 0 {
                "n/a".to_string()
            } else {
                format!("{:+.1}%", 100.0 * (a as f64 - b as f64) / b as f64)
            }
        };
        println!(
            "cutoff-default vs cutoff-off: p50 {} | p95 {} | p99 {}",
            delta(with_cutoff.latency.p50, without_cutoff.latency.p50),
            delta(with_cutoff.latency.p95, without_cutoff.latency.p95),
            delta(with_cutoff.latency.p99, without_cutoff.latency.p99),
        );
    }
    0
}

fn check(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: load check PATH");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check: reading {path}: {e}");
            return 1;
        }
    };
    let doc = match mini_json::parse(text.trim()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("check: {path} is not valid JSON: {e}");
            return 1;
        }
    };
    match validate(&doc) {
        Ok(()) => {
            println!("check: {path} is a valid charles-load/v1 artefact");
            0
        }
        Err(e) => {
            eprintln!("check: {path} FAILED validation: {e}");
            1
        }
    }
}
