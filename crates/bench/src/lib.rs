//! Shared plumbing for the Charles experiment harness.
//!
//! The paper is a vision paper: its evaluation artefacts are Figures 1–4
//! plus the scalability analysis of §5.1 and the extensions of §5.2
//! (see DESIGN.md §4 for the experiment index E1–E12). This crate
//! regenerates all of them:
//!
//! * `cargo bench -p charles-bench` — Criterion micro/meso benchmarks,
//!   one bench target per timed experiment;
//! * `cargo run -p charles-bench --bin experiments [--release]` — the
//!   one-shot harness that prints every experiment's table (the rows
//!   recorded in EXPERIMENTS.md).

pub mod load;
pub mod mini_json;

use charles_core::{Config, Explorer};
use charles_sdl::Query;
use charles_store::Backend;
use std::time::{Duration, Instant};

/// Build a wildcard context over the first `k` columns of a backend.
pub fn context_over(backend: &dyn Backend, k: usize) -> Query {
    let names = backend.schema().names();
    let take: Vec<&str> = names.into_iter().take(k).collect();
    Query::wildcard(&take)
}

/// Build an explorer over the first `k` columns.
pub fn explorer_over<'a>(backend: &'a dyn Backend, config: Config, k: usize) -> Explorer<'a> {
    Explorer::new(backend, config, context_over(backend, k)).expect("non-empty context")
}

/// Time a closure once, returning (elapsed, result).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Time a closure over `reps` repetitions and report the mean duration.
pub fn time_mean<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(reps > 0);
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed() / reps as u32
}

/// Format a duration in adaptive units for table rows.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{:.2}s", us as f64 / 1e6)
    }
}

/// Print a fixed-width table row.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join("  "));
}

/// Print a header row followed by a separator.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(16 * cells.len()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_datagen::sweep_table;

    #[test]
    fn context_over_takes_prefix() {
        let t = sweep_table(100, 5, 1);
        let q = context_over(&t, 3);
        assert_eq!(q.attributes(), vec!["c0", "c1", "c2"]);
    }

    #[test]
    fn explorer_over_builds() {
        let t = sweep_table(100, 4, 2);
        let ex = explorer_over(&t, Config::default(), 2);
        assert_eq!(ex.context_size(), 100);
    }

    #[test]
    fn timing_helpers() {
        let (d, v) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
        let mean = time_mean(3, || 1 + 1);
        assert!(mean < Duration::from_secs(1));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5µs");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
