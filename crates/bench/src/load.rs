//! `charles-load` — the production load harness for `charles-serve`.
//!
//! An **open-loop** driver: operation *i* of a scenario is scheduled at
//! `start + i / target_rps` regardless of how long earlier operations
//! took, and each operation's latency is measured **from its scheduled
//! start**, not from when a connection finally got around to sending
//! it. A closed-loop driver (send, wait, send) silently absorbs server
//! stalls into a lower offered rate — the coordinated-omission trap —
//! whereas this schedule bills every stall to the requests queued
//! behind it, which is what a production client would experience.
//!
//! The workload is the paper's interactive loop at scale: N keep-alive
//! connections each replay drill/back sessions against a live server —
//! `POST /session`, then `drill "0 0"` / `back` pairs, then `DELETE`.
//! A [`Proto`] switch picks the listener: the HTTP/JSON one (one
//! [`charles_serve::Client`] request per round trip) or the binary
//! wire-protocol one (a pipelined [`WireConn`], whole session bursts
//! staged per write). Session contexts are
//! drawn **hot** (a small fixed pool of canonical contexts, so repeat
//! sessions hit the shared [`charles_core::AdviceCache`]) or **cold**
//! (a never-repeating range predicate, so every advise runs HB-cuts)
//! with a configurable ratio — the cache-hit split is the single
//! biggest driver of tail latency, so scenarios pin it explicitly.
//!
//! Results ([`LoadResult`]) carry warmup-excluded p50/p95/p99/p999
//! from a dependency-free HDR-style [`Histogram`], achieved vs target
//! rate, error counts, and both ends' counters (client connects,
//! server `/metrics`, shared-cache `/cache/stats`). They serialize to
//! the committed `BENCH_serve.json` artefact (schema
//! `charles-load/v1`, validated by [`validate`]) and to a
//! [`ResultsCache`] so a grid sweep never re-runs a completed
//! configuration.

use crate::mini_json::{self, Json};
use charles_datagen::voc_table;
use charles_serve::{
    http_request, wire_request, Client, ClientConfig, ServeConfig, Server, ServerHandle, WireConn,
    WireError, WireRequest, WireResponse,
};
use charles_store::{Backend, ShardedTable};
use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema tag stamped into every emitted result document.
pub const RESULT_SCHEMA: &str = "charles-load/v1";

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Values below this are counted exactly (one bucket per microsecond).
const LINEAR_MAX: u64 = 64;
/// Sub-buckets per power-of-two group above the linear range: 32 sub-
/// buckets bound the relative quantization error at 1/32 ≈ 3.1%.
const SUB_BUCKETS: usize = 32;
/// Power-of-two groups needed to cover the rest of the u64 range.
const GROUPS: usize = 58;
const SLOTS: usize = LINEAR_MAX as usize + GROUPS * SUB_BUCKETS;

/// A fixed-footprint log-linear latency histogram (HDR-histogram
/// style, dependency-free): microsecond-exact below `LINEAR_MAX`
/// (64), ≤ ~3.1% relative error above, covering the full `u64` range
/// in `SLOTS` (1920) counters. Recording is O(1); percentiles are one
/// cumulative walk. Per-worker histograms [`merge`](Histogram::merge)
/// into the scenario total, so the hot path never shares a counter.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; SLOTS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn slot(value: u64) -> usize {
        if value < LINEAR_MAX {
            return value as usize;
        }
        // value ∈ [2^(g+5), 2^(g+6)) maps into group g's 32 sub-buckets.
        let group = (63 - value.leading_zeros() as u64 - 5) as usize;
        let sub = ((value >> group) - SUB_BUCKETS as u64) as usize;
        LINEAR_MAX as usize + (group - 1) * SUB_BUCKETS + sub
    }

    /// The largest value a slot can hold (the bound percentiles report).
    fn slot_upper(slot: usize) -> u64 {
        if slot < LINEAR_MAX as usize {
            return slot as u64;
        }
        let group = (slot - LINEAR_MAX as usize) / SUB_BUCKETS + 1;
        let sub = ((slot - LINEAR_MAX as usize) % SUB_BUCKETS) as u64;
        ((sub + SUB_BUCKETS as u64 + 1) << group) - 1
    }

    /// Record one value (saturating on the u64 running sum).
    pub fn record(&mut self, value: u64) {
        self.counts[Histogram::slot(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded value (not bucket-quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.total).unwrap_or(0)
    }

    /// The value at or below which `p` percent of recordings fall
    /// (upper bucket bound; exact for the maximum). 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil() as u64;
        let target = target.clamp(1, self.total);
        let mut seen = 0u64;
        for (slot, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                // Never report past the true maximum.
                return Histogram::slot_upper(slot).min(self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------------
// Scenario configuration
// ---------------------------------------------------------------------------

/// Which listener a scenario drives: the JSON/HTTP one or the binary
/// wire-protocol one. Both dispatch through the same API layer on the
/// server, so a scenario measures pure framing + pipelining overhead
/// when only this knob changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Proto {
    /// HTTP/1.1 keep-alive, one request per round trip ([`Client`]).
    #[default]
    Http,
    /// Length-prefixed binary frames, pipelined ([`WireConn`]).
    Binary,
}

impl Proto {
    /// Stable lowercase name (fingerprints, flags, artefacts).
    pub fn as_str(self) -> &'static str {
        match self {
            Proto::Http => "http",
            Proto::Binary => "binary",
        }
    }

    /// Parse a `--proto` flag value.
    pub fn parse(s: &str) -> Option<Proto> {
        match s {
            "http" => Some(Proto::Http),
            "binary" => Some(Proto::Binary),
            _ => None,
        }
    }
}

/// One load scenario: dataset shape, server knobs and offered load.
/// [`fingerprint`](ScenarioConfig::fingerprint) is the identity the
/// [`ResultsCache`] keys on — every field that changes the measurement
/// is part of it.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Scenario label (shows up in tables and the result artefact).
    pub name: String,
    /// Rows in the synthetic VOC backend (in-process runs only).
    pub rows: usize,
    /// Store shards; 1 = plain single-shard table.
    pub shards: usize,
    /// Server worker threads.
    pub server_workers: usize,
    /// Advice-cache shard count.
    pub cache_shards: usize,
    /// Advice-cache entry bound (0 = unbounded).
    pub cache_capacity: usize,
    /// Client connections = concurrent load workers.
    pub connections: usize,
    /// Offered operation rate (ops/second, open-loop schedule).
    pub target_rps: f64,
    /// Measured window (after warmup).
    pub duration: Duration,
    /// Operations scheduled inside this initial window are excluded
    /// from the measured histogram (cold caches, first connects).
    pub warmup: Duration,
    /// Percentage (0–100) of sessions drawn from the hot context pool;
    /// the rest use never-repeating cold contexts.
    pub hot_percent: u32,
    /// Drill/back pairs per session between start and delete.
    pub drills_per_session: usize,
    /// `charles_parallel` dispatch cutoff forced for this run
    /// (0 = library default). The A/B mode flips this.
    pub par_threshold: usize,
    /// Which listener to drive (HTTP/JSON or the binary wire protocol).
    pub proto: Proto,
}

impl ScenarioConfig {
    /// The pinned smoke scenario CI runs on every push and whose result
    /// is committed as `BENCH_serve.json`. Small enough for a debug CI
    /// box (~3.5 s wall, ~500 ops), hot-heavy so the cache-hit path —
    /// the common production case — dominates the percentiles.
    pub fn smoke() -> ScenarioConfig {
        ScenarioConfig {
            name: "smoke".to_string(),
            rows: 4_000,
            shards: 1,
            server_workers: 8,
            cache_shards: 16,
            cache_capacity: 1024,
            connections: 4,
            target_rps: 150.0,
            duration: Duration::from_millis(3_000),
            warmup: Duration::from_millis(500),
            hot_percent: 90,
            drills_per_session: 2,
            par_threshold: 0,
            proto: Proto::Http,
        }
    }

    /// The saturation scenario the proto A/B runs on both listeners:
    /// 100% hot contexts (every advise is a cache hit), drill-dense
    /// sessions (long pipelinable bursts between session starts), and a
    /// target rate far past what either listener can serve — the
    /// open-loop schedule is permanently behind, so workers issue
    /// back-to-back and `achieved_rps` measures saturation throughput
    /// of cached-advice traffic.
    pub fn throughput(proto: Proto) -> ScenarioConfig {
        ScenarioConfig {
            name: format!("throughput-{}", proto.as_str()),
            target_rps: 1_000_000.0,
            duration: Duration::from_millis(48),
            warmup: Duration::from_millis(12),
            connections: 2,
            hot_percent: 100,
            drills_per_session: 16,
            proto,
            ..ScenarioConfig::smoke()
        }
    }

    /// Stable identity string: every measurement-relevant knob,
    /// pipe-joined. Cached results are keyed by this.
    pub fn fingerprint(&self) -> String {
        format!(
            "name={}|rows={}|shards={}|sworkers={}|cshards={}|ccap={}|conns={}|rate={:.3}|dur={}|warm={}|hot={}|drills={}|pth={}|proto={}",
            self.name,
            self.rows,
            self.shards,
            self.server_workers,
            self.cache_shards,
            self.cache_capacity,
            self.connections,
            self.target_rps,
            self.duration.as_millis(),
            self.warmup.as_millis(),
            self.hot_percent,
            self.drills_per_session,
            self.par_threshold,
            self.proto.as_str(),
        )
    }

    /// Total operations the open-loop schedule will offer.
    pub fn total_ops(&self) -> u64 {
        let window = (self.warmup + self.duration).as_secs_f64();
        ((self.target_rps * window).round() as u64).max(1)
    }
}

// ---------------------------------------------------------------------------
// Session script (one worker's request stream)
// ---------------------------------------------------------------------------

/// Canonical contexts for **hot** sessions: a fixed pool, so repeat
/// sessions resolve to the same cache keys (the same pool the
/// cross-session concurrency harness pins byte-equality on).
const HOT_CONTEXTS: [&str; 4] = [
    "(type_of_boat: , tonnage: , departure_harbour: )",
    "(tonnage: , trip: )",
    "(type_of_boat: , built: )",
    "(departure_harbour: , tonnage: , trip: )",
];

/// Context for session number `n`: drawn from the hot pool
/// `hot_percent`% of the time, otherwise a never-repeating cold
/// predicate. Shared by the HTTP and wire scripts so a proto A/B
/// offers byte-identical context streams.
fn choose_context(n: u64, hot_percent: u32) -> String {
    if (n % 100) < hot_percent as u64 {
        HOT_CONTEXTS[(n % HOT_CONTEXTS.len() as u64) as usize].to_string()
    } else {
        format!("(type_of_boat: , tonnage: [0, {}])", 100_000 + n)
    }
}

/// One planned request: method, path, body and the status a healthy
/// server must answer with.
struct PlannedOp {
    method: &'static str,
    path: String,
    body: String,
    expect: u16,
}

/// What happened to a planned op, from the script's point of view.
enum OpOutcome<'a> {
    /// Expected status; `body` is borrowed for id extraction.
    Ok(&'a str),
    /// Wrong status or transport error — abandon the current session.
    Failed,
}

/// The per-worker session state machine: `start → (drill "0 0" →
/// back) × drills → delete`, then a fresh session. Context choice is
/// driven by a process-wide session counter so the hot/cold ratio
/// holds across workers. Cold contexts embed that counter in a range
/// predicate — same rows selected every time (tonnage tops out well
/// below the bound), but a distinct canonical cache key per session.
struct SessionScript {
    session_seq: Arc<AtomicU64>,
    hot_percent: u32,
    drills_per_session: usize,
    session_id: Option<String>,
    context: String,
    /// Steps completed inside the current session (0 = next is start).
    step: usize,
}

impl SessionScript {
    fn new(session_seq: Arc<AtomicU64>, hot_percent: u32, drills_per_session: usize) -> Self {
        SessionScript {
            session_seq,
            hot_percent,
            drills_per_session,
            session_id: None,
            context: String::new(),
            step: 0,
        }
    }

    fn next_op(&mut self) -> PlannedOp {
        if self.session_id.is_none() {
            let n = self.session_seq.fetch_add(1, Ordering::Relaxed);
            self.context = choose_context(n, self.hot_percent);
            self.step = 0;
            return PlannedOp {
                method: "POST",
                path: "/session".to_string(),
                body: self.context.clone(),
                expect: 201,
            };
        }
        let id = self.session_id.as_deref().expect("session is live");
        // Steps after start: drill, back, drill, back, …, delete.
        if self.step < 2 * self.drills_per_session {
            let drilling = self.step.is_multiple_of(2);
            self.step += 1;
            if drilling {
                PlannedOp {
                    method: "POST",
                    path: format!("/session/{id}/drill"),
                    body: "0 0".to_string(),
                    expect: 200,
                }
            } else {
                PlannedOp {
                    method: "POST",
                    path: format!("/session/{id}/back"),
                    body: String::new(),
                    expect: 200,
                }
            }
        } else {
            PlannedOp {
                method: "DELETE",
                path: format!("/session/{id}"),
                body: String::new(),
                expect: 204,
            }
        }
    }

    fn observe(&mut self, op: &PlannedOp, outcome: OpOutcome) {
        match outcome {
            OpOutcome::Ok(body) => {
                if op.method == "POST" && op.path == "/session" {
                    self.session_id = extract_session_id(body);
                    if self.session_id.is_none() {
                        // 201 without an id would be a server bug; fall
                        // through to a fresh session rather than loop.
                        self.step = 0;
                    }
                } else if op.method == "DELETE" {
                    self.session_id = None;
                }
            }
            OpOutcome::Failed => {
                // Abandon the session; the server reaps it via the
                // registry (and the run ends with a bounded number of
                // live sessions either way).
                self.session_id = None;
            }
        }
    }
}

/// Pull `"s<N>"` out of a `{"session":"s<N>", …}` envelope without
/// paying for a full parse of the (large) advice payload.
fn extract_session_id(body: &str) -> Option<String> {
    let rest = body.split_once("\"session\":\"")?.1;
    let id = rest.split_once('"')?.0;
    (!id.is_empty()).then(|| id.to_string())
}

// ---------------------------------------------------------------------------
// Wire session script (the pipelined twin of SessionScript)
// ---------------------------------------------------------------------------

/// One planned wire operation (owned, so it can sit in the in-flight
/// queue while later frames are staged behind it).
enum WirePlan {
    Start(String),
    Drill(String),
    Back(String),
    Delete(String),
}

impl WirePlan {
    /// The status a healthy server must answer with (wire responses
    /// carry HTTP-equivalent statuses).
    fn expect(&self) -> u16 {
        match self {
            WirePlan::Start(_) => 201,
            WirePlan::Drill(_) | WirePlan::Back(_) => 200,
            WirePlan::Delete(_) => 204,
        }
    }
}

/// The same `start → (drill → back) × drills → delete` state machine
/// as [`SessionScript`], restructured for pipelining: every op after a
/// session's start depends only on the session **id**, so once the
/// `Started` response has resolved the id, the whole drill/back/delete
/// tail — plus the *next* session's start — can be staged back-to-back
/// without waiting for any response. The only pipeline bubble is
/// [`blocked`](WireScript::blocked): a start is in flight and its id
/// is not yet known.
struct WireScript {
    session_seq: Arc<AtomicU64>,
    hot_percent: u32,
    drills_per_session: usize,
    session_id: Option<String>,
    /// A start frame is in flight; ops that need its id must wait.
    start_pending: bool,
    step: usize,
}

impl WireScript {
    fn new(session_seq: Arc<AtomicU64>, hot_percent: u32, drills_per_session: usize) -> WireScript {
        WireScript {
            session_seq,
            hot_percent,
            drills_per_session,
            session_id: None,
            start_pending: false,
            step: 0,
        }
    }

    /// True while the next op cannot be planned yet (start in flight).
    fn blocked(&self) -> bool {
        self.start_pending
    }

    /// Plan the next op. Must not be called while [`blocked`](Self::blocked).
    fn next_op(&mut self) -> WirePlan {
        match self.session_id.clone() {
            None => {
                let n = self.session_seq.fetch_add(1, Ordering::Relaxed);
                self.start_pending = true;
                self.step = 0;
                WirePlan::Start(choose_context(n, self.hot_percent))
            }
            Some(id) => {
                if self.step < 2 * self.drills_per_session {
                    let drilling = self.step.is_multiple_of(2);
                    self.step += 1;
                    if drilling {
                        WirePlan::Drill(id)
                    } else {
                        WirePlan::Back(id)
                    }
                } else {
                    // The delete is staged, not answered — but nothing
                    // later references this session, so the next plan
                    // can start a fresh one immediately.
                    self.session_id = None;
                    WirePlan::Delete(id)
                }
            }
        }
    }

    /// The in-flight start resolved (id from the `Started` envelope;
    /// `None` — a protocol bug — falls through to a fresh session).
    fn started(&mut self, id: Option<String>) {
        self.start_pending = false;
        self.session_id = id;
    }

    /// The in-flight start failed; plan a fresh session next.
    fn start_failed(&mut self) {
        self.start_pending = false;
        self.session_id = None;
    }

    /// Transport loss: every in-flight op is gone, start over.
    fn reset(&mut self) {
        self.session_id = None;
        self.start_pending = false;
        self.step = 0;
    }
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// Warmup-excluded latency percentiles, microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub p999: u64,
    pub max: u64,
    pub mean: u64,
}

impl LatencySummary {
    fn from_histogram(h: &Histogram) -> LatencySummary {
        LatencySummary {
            p50: h.percentile(50.0),
            p95: h.percentile(95.0),
            p99: h.percentile(99.0),
            p999: h.percentile(99.9),
            max: h.max(),
            mean: h.mean(),
        }
    }
}

/// Shared advice-cache counters (`GET /cache/stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub runs: u64,
    pub evictions: u64,
    pub entries: u64,
}

/// Serving-layer counters (`GET /metrics`). Includes the harness's own
/// stat probes (one extra connection + request each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerCounters {
    pub connections: u64,
    pub requests: u64,
    pub responses_2xx: u64,
    pub responses_4xx: u64,
    pub responses_5xx: u64,
}

/// Everything one scenario run produced.
#[derive(Debug, Clone)]
pub struct LoadResult {
    pub name: String,
    pub fingerprint: String,
    /// Operations offered by the schedule (= warmup + measured + errors).
    pub ops_total: u64,
    /// Successful operations scheduled after the warmup window — the
    /// population of the latency histogram.
    pub ops_measured: u64,
    /// Successful operations scheduled inside the warmup window.
    pub ops_warmup: u64,
    /// Transport failures + unexpected statuses (any window).
    pub errors: u64,
    /// First error observed, for the post-mortem.
    pub first_error: Option<String>,
    pub target_rps: f64,
    /// Measured-window completions / measured wall time.
    pub achieved_rps: f64,
    pub elapsed_ms: u64,
    pub latency: LatencySummary,
    pub cache: CacheCounters,
    pub server: ServerCounters,
    /// TCP connections the load clients opened in total.
    pub client_connects: u64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl LoadResult {
    /// The `charles-load/v1` artefact (committed as `BENCH_serve.json`
    /// for the smoke scenario). Single line, stable key order.
    pub fn to_json(&self) -> String {
        let first_error = match &self.first_error {
            Some(e) => format!("\"{}\"", json_escape(e)),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"schema\":\"{schema}\",\"name\":\"{name}\",\"fingerprint\":\"{fp}\",",
                "\"ops\":{{\"total\":{total},\"measured\":{measured},\"warmup\":{warmup},\"errors\":{errors}}},",
                "\"target_rps\":{target:.3},\"achieved_rps\":{achieved:.3},\"elapsed_ms\":{elapsed},",
                "\"latency_us\":{{\"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"p999\":{p999},\"max\":{max},\"mean\":{mean}}},",
                "\"cache\":{{\"hits\":{hits},\"misses\":{misses},\"runs\":{runs},\"evictions\":{evictions},\"entries\":{entries}}},",
                "\"server\":{{\"connections\":{sconn},\"requests\":{sreq},\"responses_2xx\":{s2},\"responses_4xx\":{s4},\"responses_5xx\":{s5}}},",
                "\"client_connects\":{connects},\"first_error\":{first_error}}}"
            ),
            schema = RESULT_SCHEMA,
            name = json_escape(&self.name),
            fp = json_escape(&self.fingerprint),
            total = self.ops_total,
            measured = self.ops_measured,
            warmup = self.ops_warmup,
            errors = self.errors,
            target = self.target_rps,
            achieved = self.achieved_rps,
            elapsed = self.elapsed_ms,
            p50 = self.latency.p50,
            p95 = self.latency.p95,
            p99 = self.latency.p99,
            p999 = self.latency.p999,
            max = self.latency.max,
            mean = self.latency.mean,
            hits = self.cache.hits,
            misses = self.cache.misses,
            runs = self.cache.runs,
            evictions = self.cache.evictions,
            entries = self.cache.entries,
            sconn = self.server.connections,
            sreq = self.server.requests,
            s2 = self.server.responses_2xx,
            s4 = self.server.responses_4xx,
            s5 = self.server.responses_5xx,
            connects = self.client_connects,
            first_error = first_error,
        )
    }

    /// Rebuild a result from its artefact (the [`ResultsCache`] read
    /// path). Inverse of [`to_json`](LoadResult::to_json).
    pub fn from_json(text: &str) -> Result<LoadResult, String> {
        let doc = mini_json::parse(text)?;
        validate(&doc)?;
        let num = |path: &str| -> u64 { doc.path(path).and_then(Json::as_u64).unwrap_or_default() };
        let float = |path: &str| doc.path(path).and_then(Json::as_f64).unwrap_or_default();
        Ok(LoadResult {
            name: doc
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            fingerprint: doc
                .get("fingerprint")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            ops_total: num("ops.total"),
            ops_measured: num("ops.measured"),
            ops_warmup: num("ops.warmup"),
            errors: num("ops.errors"),
            first_error: doc
                .get("first_error")
                .and_then(Json::as_str)
                .map(str::to_string),
            target_rps: float("target_rps"),
            achieved_rps: float("achieved_rps"),
            elapsed_ms: num("elapsed_ms"),
            latency: LatencySummary {
                p50: num("latency_us.p50"),
                p95: num("latency_us.p95"),
                p99: num("latency_us.p99"),
                p999: num("latency_us.p999"),
                max: num("latency_us.max"),
                mean: num("latency_us.mean"),
            },
            cache: CacheCounters {
                hits: num("cache.hits"),
                misses: num("cache.misses"),
                runs: num("cache.runs"),
                evictions: num("cache.evictions"),
                entries: num("cache.entries"),
            },
            server: ServerCounters {
                connections: num("server.connections"),
                requests: num("server.requests"),
                responses_2xx: num("server.responses_2xx"),
                responses_4xx: num("server.responses_4xx"),
                responses_5xx: num("server.responses_5xx"),
            },
            client_connects: num("client_connects"),
        })
    }
}

/// Validate a parsed `charles-load/v1` document: schema tag, every
/// required field, percentile monotonicity, op accounting, and a clean
/// run (no client errors, no non-2xx server responses) — the contract
/// CI holds the committed `BENCH_serve.json` to.
pub fn validate(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(RESULT_SCHEMA) => {}
        other => return Err(format!("schema is {other:?}, want {RESULT_SCHEMA:?}")),
    }
    for key in ["name", "fingerprint"] {
        if doc
            .get(key)
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            return Err(format!("missing or empty string field {key:?}"));
        }
    }
    let need = |path: &str| -> Result<u64, String> {
        doc.path(path)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing numeric field {path:?}"))
    };
    for path in ["target_rps", "achieved_rps"] {
        let v = doc
            .path(path)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field {path:?}"))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!("{path} must be positive, got {v}"));
        }
    }
    need("elapsed_ms")?;
    need("client_connects")?;
    for path in [
        "cache.hits",
        "cache.misses",
        "cache.runs",
        "cache.evictions",
        "cache.entries",
        "server.connections",
        "server.requests",
    ] {
        need(path)?;
    }
    let (total, measured, warmup, errors) = (
        need("ops.total")?,
        need("ops.measured")?,
        need("ops.warmup")?,
        need("ops.errors")?,
    );
    if total != measured + warmup + errors {
        return Err(format!(
            "op accounting is off: total {total} != measured {measured} + warmup {warmup} + errors {errors}"
        ));
    }
    if measured == 0 {
        return Err("no measured operations (duration shorter than warmup?)".to_string());
    }
    let (p50, p95, p99, p999, max) = (
        need("latency_us.p50")?,
        need("latency_us.p95")?,
        need("latency_us.p99")?,
        need("latency_us.p999")?,
        need("latency_us.max")?,
    );
    need("latency_us.mean")?;
    if !(p50 <= p95 && p95 <= p99 && p99 <= p999 && p999 <= max) {
        return Err(format!(
            "percentiles are not monotone: p50 {p50} p95 {p95} p99 {p99} p999 {p999} max {max}"
        ));
    }
    if errors > 0 {
        return Err(format!("run recorded {errors} client-side errors"));
    }
    let (s4, s5) = (need("server.responses_4xx")?, need("server.responses_5xx")?);
    if s4 + s5 > 0 {
        return Err(format!(
            "server answered non-2xx during the run: {s4} 4xx, {s5} 5xx"
        ));
    }
    need("server.responses_2xx")?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Proto A/B artefact (BENCH_wire.json)
// ---------------------------------------------------------------------------

/// Schema tag of the proto A/B artefact committed as `BENCH_wire.json`.
pub const WIRE_AB_SCHEMA: &str = "charles-wire-ab/v1";

/// Cached-advice throughput multiple the binary listener must prove
/// over the JSON/HTTP path (per core; both legs run on the same box).
pub const WIRE_AB_MIN_SPEEDUP: f64 = 5.0;

/// Render the proto A/B artefact: both legs' full `charles-load/v1`
/// documents plus the headline speedup and the core count they shared
/// (the legs run serially on the same machine, so requests/sec-per-core
/// divides out to the plain `achieved_rps` ratio).
pub fn wire_ab_to_json(http: &LoadResult, binary: &LoadResult) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "{{\"schema\":\"{WIRE_AB_SCHEMA}\",\"cores\":{cores},\"speedup\":{:.3},\"http\":{},\"binary\":{}}}",
        wire_ab_speedup(http, binary),
        http.to_json(),
        binary.to_json(),
    )
}

/// Binary-over-HTTP throughput ratio (0 when the HTTP leg recorded no
/// throughput — a failed run, caught by validation).
pub fn wire_ab_speedup(http: &LoadResult, binary: &LoadResult) -> f64 {
    if http.achieved_rps > 0.0 {
        binary.achieved_rps / http.achieved_rps
    } else {
        0.0
    }
}

/// Validate a parsed `charles-wire-ab/v1` document — the CI gate for
/// the committed `BENCH_wire.json`. Both embedded legs must pass the
/// full [`validate`] clean-run contract (zero client errors, zero
/// non-2xx / error frames), they must describe the *same* workload
/// apart from name and proto, the headline speedup must match the
/// legs' achieved rates, and it must clear [`WIRE_AB_MIN_SPEEDUP`].
pub fn validate_wire_ab(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(WIRE_AB_SCHEMA) => {}
        other => return Err(format!("schema is {other:?}, want {WIRE_AB_SCHEMA:?}")),
    }
    match doc.get("cores").and_then(Json::as_u64) {
        Some(n) if n >= 1 => {}
        other => return Err(format!("cores must be a positive integer, got {other:?}")),
    }
    let mut fingerprints = Vec::new();
    let mut rates = Vec::new();
    for key in ["http", "binary"] {
        let leg = doc.get(key).ok_or_else(|| format!("missing {key:?} leg"))?;
        validate(leg).map_err(|e| format!("{key} leg: {e}"))?;
        let fp = leg.get("fingerprint").and_then(Json::as_str).unwrap_or("");
        if !fp.ends_with(&format!("|proto={key}")) {
            return Err(format!("{key} leg fingerprint {fp:?} ran proto != {key}"));
        }
        fingerprints.push(fp.to_string());
        rates.push(
            leg.get("achieved_rps")
                .and_then(Json::as_f64)
                .unwrap_or_default(),
        );
    }
    let workload = |fp: &str| -> String {
        fp.split('|')
            .filter(|kv| !kv.starts_with("name=") && !kv.starts_with("proto="))
            .collect::<Vec<_>>()
            .join("|")
    };
    if workload(&fingerprints[0]) != workload(&fingerprints[1]) {
        return Err(format!(
            "legs ran different workloads: {:?} vs {:?}",
            fingerprints[0], fingerprints[1]
        ));
    }
    let speedup = doc
        .get("speedup")
        .and_then(Json::as_f64)
        .ok_or_else(|| "missing numeric field \"speedup\"".to_string())?;
    let recomputed = if rates[0] > 0.0 {
        rates[1] / rates[0]
    } else {
        0.0
    };
    // The artefact rounds to 3 decimals; allow that much slack.
    if (speedup - recomputed).abs() > 0.002 + 1e-6 * recomputed.abs() {
        return Err(format!(
            "speedup {speedup} does not match achieved rates ({:.3} binary / {:.3} http = {recomputed:.3})",
            rates[1], rates[0]
        ));
    }
    if speedup < WIRE_AB_MIN_SPEEDUP {
        return Err(format!(
            "binary listener is only {speedup:.2}× the HTTP path (must be ≥ {WIRE_AB_MIN_SPEEDUP}×)"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Store-scaling artefact (BENCH_store.json)
// ---------------------------------------------------------------------------

/// Schema tag of the store-scaling artefact committed as
/// `BENCH_store.json` (emitted by `experiments -- e14 --json`).
pub const STORE_SCALING_SCHEMA: &str = "charles-store-scaling/v1";

/// The resident-bytes multiple compressed selection bitmaps must prove
/// over the dense layout on the sparsest drill-down series.
pub const STORE_MIN_SPARSE_RATIO: f64 = 4.0;

/// Validate a parsed `charles-store-scaling/v1` document — the CI gate
/// for the committed `BENCH_store.json`. Every series entry must carry
/// consistent byte counts (the recorded ratio must match the raw
/// numbers), and at least one sparse entry (selectivity ≤ 0.1%) must
/// clear [`STORE_MIN_SPARSE_RATIO`] — the scaling claim itself.
pub fn validate_store_scaling(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(STORE_SCALING_SCHEMA) => {}
        other => {
            return Err(format!(
                "schema is {other:?}, want {STORE_SCALING_SCHEMA:?}"
            ))
        }
    }
    match doc.get("rows").and_then(Json::as_u64) {
        Some(n) if n >= 1_000_000 => {}
        other => {
            return Err(format!(
                "rows must be ≥ 1e6 for the claim to mean anything, got {other:?}"
            ))
        }
    }
    let series = doc
        .get("series")
        .and_then(Json::as_arr)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| "missing or empty \"series\" array".to_string())?;
    let mut sparse_ok = false;
    for (i, entry) in series.iter().enumerate() {
        let label = entry
            .get("label")
            .and_then(Json::as_str)
            .filter(|l| !l.is_empty())
            .ok_or_else(|| format!("series[{i}]: missing string field \"label\""))?;
        let num = |key: &str| -> Result<f64, String> {
            entry
                .get(key)
                .and_then(Json::as_f64)
                .filter(|v| v.is_finite() && *v > 0.0)
                .ok_or_else(|| format!("series[{i}] ({label}): missing positive field {key:?}"))
        };
        let selectivity = num("selectivity")?;
        if selectivity > 1.0 {
            return Err(format!(
                "series[{i}] ({label}): selectivity {selectivity} > 1"
            ));
        }
        let (dense, compressed) = (num("dense_bytes")?, num("compressed_bytes")?);
        let ratio = num("bytes_ratio")?;
        let recomputed = dense / compressed;
        if (ratio - recomputed).abs() > 0.01 + 1e-4 * recomputed {
            return Err(format!(
                "series[{i}] ({label}): bytes_ratio {ratio} does not match {dense} / {compressed} = {recomputed:.4}"
            ));
        }
        for key in [
            "dense_and_us",
            "compressed_and_us",
            "dense_and_count_us",
            "compressed_and_count_us",
        ] {
            num(key)?;
        }
        if selectivity <= 0.001 && ratio >= STORE_MIN_SPARSE_RATIO {
            sparse_ok = true;
        }
    }
    if !sparse_ok {
        return Err(format!(
            "no sparse series (selectivity ≤ 0.001) reached the {STORE_MIN_SPARSE_RATIO}× resident-bytes win"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

struct WorkerOutcome {
    warm: Histogram,
    measured: Histogram,
    errors: u64,
    first_error: Option<String>,
    connects: u64,
}

impl WorkerOutcome {
    fn new() -> WorkerOutcome {
        WorkerOutcome {
            warm: Histogram::new(),
            measured: Histogram::new(),
            errors: 0,
            first_error: None,
            connects: 0,
        }
    }
}

/// Everything one worker thread needs: the target, the shared op
/// schedule, and the scenario knobs that shape its session stream.
struct WorkerCtx {
    addr: std::net::SocketAddr,
    next_op: Arc<AtomicU64>,
    session_seq: Arc<AtomicU64>,
    start: Instant,
    total_ops: u64,
    warmup_ops: u64,
    rate: f64,
    hot_percent: u32,
    drills_per_session: usize,
}

/// The HTTP worker: one keep-alive [`Client`], one request per round
/// trip, latency billed from each op's scheduled start.
fn http_worker(ctx: WorkerCtx) -> WorkerOutcome {
    let mut outcome = WorkerOutcome::new();
    let mut client = match Client::new(ctx.addr, ClientConfig::default()) {
        Ok(c) => c,
        Err(e) => {
            outcome.errors += 1;
            outcome.first_error = Some(format!("client setup: {e}"));
            return outcome;
        }
    };
    let mut script = SessionScript::new(
        Arc::clone(&ctx.session_seq),
        ctx.hot_percent,
        ctx.drills_per_session,
    );
    loop {
        let i = ctx.next_op.fetch_add(1, Ordering::Relaxed);
        if i >= ctx.total_ops {
            break;
        }
        let sched = ctx.start + Duration::from_secs_f64(i as f64 / ctx.rate);
        let now = Instant::now();
        if sched > now {
            std::thread::sleep(sched - now);
        }
        let op = script.next_op();
        let result = client.request(op.method, &op.path, &op.body);
        let latency_us = Instant::now()
            .saturating_duration_since(sched)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        match &result {
            Ok(resp) if resp.status == op.expect => {
                if i < ctx.warmup_ops {
                    outcome.warm.record(latency_us);
                } else {
                    outcome.measured.record(latency_us);
                }
                script.observe(&op, OpOutcome::Ok(&resp.body));
            }
            Ok(resp) => {
                outcome.errors += 1;
                outcome.first_error.get_or_insert_with(|| {
                    format!(
                        "{} {} → {} (want {}): {}",
                        op.method,
                        op.path,
                        resp.status,
                        op.expect,
                        &resp.body[..resp.body.len().min(200)]
                    )
                });
                script.observe(&op, OpOutcome::Failed);
            }
            Err(e) => {
                outcome.errors += 1;
                outcome
                    .first_error
                    .get_or_insert_with(|| format!("{} {} → {e}", op.method, op.path));
                script.observe(&op, OpOutcome::Failed);
            }
        }
    }
    outcome.connects = client.connects();
    outcome
}

/// Frames the wire worker keeps in flight ahead of the oldest
/// unanswered response. Deep enough to amortize syscalls over a whole
/// session burst (`2 × drills + 2` frames), comfortably under the
/// server's own bounded response queue.
const WIRE_PIPELINE_WINDOW: usize = 16;

/// The binary-protocol worker: one [`WireConn`], pipelined. Frames are
/// staged while the schedule is behind and the script can plan (the
/// only stall is an unresolved session start), flushed as one write,
/// and responses settle FIFO against the in-flight queue — each op's
/// latency still billed from its open-loop scheduled start. Under an
/// under-offered schedule the queue drains before each send, so pacing
/// is honoured exactly like the HTTP worker's; at saturation the
/// window fills and throughput comes from batched syscalls.
fn wire_worker(ctx: WorkerCtx) -> WorkerOutcome {
    struct InFlight {
        index: u64,
        sched: Instant,
        expect: u16,
        is_start: bool,
    }
    let mut outcome = WorkerOutcome::new();
    let mut conn = match WireConn::connect(&ctx.addr, &ClientConfig::default()) {
        Ok(c) => {
            outcome.connects += 1;
            c
        }
        Err(e) => {
            outcome.errors += 1;
            outcome.first_error = Some(format!("client setup: {e}"));
            return outcome;
        }
    };
    let mut script = WireScript::new(
        Arc::clone(&ctx.session_seq),
        ctx.hot_percent,
        ctx.drills_per_session,
    );
    let mut inflight: VecDeque<InFlight> = VecDeque::new();
    // An op index claimed from the shared schedule whose time hasn't
    // come yet (claims are not returnable; it is staged next round).
    let mut carry: Option<u64> = None;
    let mut done = false;
    loop {
        // Stage phase: fill the window as far as the schedule and the
        // script allow.
        while !done && inflight.len() < WIRE_PIPELINE_WINDOW && !script.blocked() {
            let i = match carry.take() {
                Some(i) => i,
                None => ctx.next_op.fetch_add(1, Ordering::Relaxed),
            };
            if i >= ctx.total_ops {
                done = true;
                break;
            }
            let sched = ctx.start + Duration::from_secs_f64(i as f64 / ctx.rate);
            let now = Instant::now();
            if sched > now {
                if inflight.is_empty() && conn.staged_bytes() == 0 {
                    std::thread::sleep(sched - now);
                } else {
                    // Not due yet — drain in-flight work first so the
                    // open-loop schedule is never sent ahead of plan.
                    carry = Some(i);
                    break;
                }
            }
            let plan = script.next_op();
            match &plan {
                WirePlan::Start(context) => conn.stage(&WireRequest::Start { body: context }),
                WirePlan::Drill(id) => conn.stage(&WireRequest::Drill {
                    id,
                    rank: 0,
                    seg: 0,
                }),
                WirePlan::Back(id) => conn.stage(&WireRequest::Back { id }),
                WirePlan::Delete(id) => conn.stage(&WireRequest::Delete { id }),
            }
            inflight.push_back(InFlight {
                index: i,
                sched,
                expect: plan.expect(),
                is_start: matches!(plan, WirePlan::Start(_)),
            });
        }
        // One write for the whole staged burst.
        let flush_err = conn.flush().err();
        if inflight.is_empty() && flush_err.is_none() {
            if done {
                break;
            }
            continue;
        }
        // Settle the oldest response, freeing a window slot (and, after
        // a start, unblocking the script).
        let step = match flush_err {
            Some(e) => Err(WireError::from(e)),
            None => conn.recv_summary(),
        };
        match step {
            Ok(summary) => match inflight.pop_front() {
                Some(inf) => {
                    let latency_us = Instant::now()
                        .saturating_duration_since(inf.sched)
                        .as_micros()
                        .min(u64::MAX as u128) as u64;
                    if summary.status == inf.expect {
                        if inf.index < ctx.warmup_ops {
                            outcome.warm.record(latency_us);
                        } else {
                            outcome.measured.record(latency_us);
                        }
                        if inf.is_start {
                            script.started(summary.session_id);
                        }
                    } else {
                        outcome.errors += 1;
                        outcome.first_error.get_or_insert_with(|| {
                            let detail =
                                summary.error.map(|e| format!(": {e}")).unwrap_or_default();
                            format!("wire op → {} (want {}){detail}", summary.status, inf.expect)
                        });
                        if inf.is_start {
                            script.start_failed();
                        }
                        // Later frames of a failed session fail on
                        // their own and are counted as they settle.
                    }
                }
                None => {
                    // A response with nothing in flight: frame desync,
                    // a can't-happen server bug. Abandon the run.
                    outcome.errors += 1 + carry.is_some() as u64;
                    outcome
                        .first_error
                        .get_or_insert_with(|| "unsolicited wire response frame".to_string());
                    break;
                }
            },
            Err(e) => {
                // Transport loss: every in-flight op fails. Reconnect
                // once and continue with the remaining schedule.
                outcome.errors += inflight.len().max(1) as u64;
                outcome
                    .first_error
                    .get_or_insert_with(|| format!("wire transport: {e}"));
                inflight.clear();
                script.reset();
                match WireConn::connect(&ctx.addr, &ClientConfig::default()) {
                    Ok(c) => {
                        outcome.connects += 1;
                        conn = c;
                    }
                    Err(_) => {
                        outcome.errors += carry.is_some() as u64;
                        break;
                    }
                }
            }
        }
    }
    outcome
}

/// Drive one scenario against a live server at `addr`.
///
/// The target may be external (`charles-load smoke --addr …`) — it must
/// serve the VOC schema — or the in-process server
/// [`run_in_process`] boots. Returns an error only when the harness
/// itself cannot run (no connection at all, stats endpoints
/// unreachable); request-level failures are *data* (`errors`,
/// `first_error`), not early exits.
pub fn run_against(
    addr: std::net::SocketAddr,
    cfg: &ScenarioConfig,
) -> std::io::Result<LoadResult> {
    let total_ops = cfg.total_ops();
    let warmup_ops = (cfg.target_rps * cfg.warmup.as_secs_f64()).floor() as u64;
    let next_op = Arc::new(AtomicU64::new(0));
    let session_seq = Arc::new(AtomicU64::new(0));
    let rate = cfg.target_rps.max(1e-9);
    let start = Instant::now();

    let workers: Vec<std::thread::JoinHandle<WorkerOutcome>> = (0..cfg.connections.max(1))
        .map(|_| {
            let ctx = WorkerCtx {
                addr,
                next_op: Arc::clone(&next_op),
                session_seq: Arc::clone(&session_seq),
                start,
                total_ops,
                warmup_ops,
                rate,
                hot_percent: cfg.hot_percent,
                drills_per_session: cfg.drills_per_session,
            };
            let proto = cfg.proto;
            std::thread::spawn(move || match proto {
                Proto::Http => http_worker(ctx),
                Proto::Binary => wire_worker(ctx),
            })
        })
        .collect();

    let mut warm = Histogram::new();
    let mut measured = Histogram::new();
    let mut errors = 0u64;
    let mut first_error: Option<String> = None;
    let mut client_connects = 0u64;
    for handle in workers {
        let outcome = handle.join().expect("load worker panicked");
        warm.merge(&outcome.warm);
        measured.merge(&outcome.measured);
        errors += outcome.errors;
        if first_error.is_none() {
            first_error = outcome.first_error;
        }
        client_connects += outcome.connects;
    }
    let elapsed = start.elapsed();
    let measured_window = elapsed
        .checked_sub(cfg.warmup)
        .unwrap_or(Duration::from_millis(1))
        .as_secs_f64()
        .max(1e-9);

    // Fetch both ends' counters over the same listener the run used —
    // a binary run must not require the HTTP port to be reachable.
    let (cache, server) = match cfg.proto {
        Proto::Http => (fetch_cache_counters(addr)?, fetch_server_counters(addr)?),
        Proto::Binary => (
            fetch_cache_counters_wire(addr)?,
            fetch_server_counters_wire(addr)?,
        ),
    };

    Ok(LoadResult {
        name: cfg.name.clone(),
        fingerprint: cfg.fingerprint(),
        ops_total: total_ops,
        ops_measured: measured.count(),
        ops_warmup: warm.count(),
        errors,
        first_error,
        target_rps: cfg.target_rps,
        achieved_rps: measured.count() as f64 / measured_window,
        elapsed_ms: elapsed.as_millis() as u64,
        latency: LatencySummary::from_histogram(&measured),
        cache,
        server,
        client_connects,
    })
}

fn stats_error(what: &str, detail: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{what}: {detail}"))
}

fn fetch_cache_counters(addr: std::net::SocketAddr) -> std::io::Result<CacheCounters> {
    let (status, body) = http_request(addr, "GET", "/cache/stats", "")?;
    if status != 200 {
        return Err(stats_error("GET /cache/stats", format!("status {status}")));
    }
    let doc = mini_json::parse(&body).map_err(|e| stats_error("GET /cache/stats", e))?;
    let num = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or_default();
    Ok(CacheCounters {
        hits: num("hits"),
        misses: num("misses"),
        runs: num("runs"),
        evictions: num("evictions"),
        entries: num("entries"),
    })
}

fn fetch_server_counters(addr: std::net::SocketAddr) -> std::io::Result<ServerCounters> {
    let (status, body) = http_request(addr, "GET", "/metrics", "")?;
    if status != 200 {
        return Err(stats_error("GET /metrics", format!("status {status}")));
    }
    let doc = mini_json::parse(&body).map_err(|e| stats_error("GET /metrics", e))?;
    let num = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or_default();
    Ok(ServerCounters {
        connections: num("connections"),
        requests: num("requests"),
        responses_2xx: num("responses_2xx"),
        responses_4xx: num("responses_4xx"),
        responses_5xx: num("responses_5xx"),
    })
}

fn fetch_cache_counters_wire(addr: std::net::SocketAddr) -> std::io::Result<CacheCounters> {
    match wire_request(addr, &WireRequest::CacheStats) {
        Ok(WireResponse::CacheStats(s)) => Ok(CacheCounters {
            hits: s.hits,
            misses: s.misses,
            runs: s.runs,
            evictions: s.evictions,
            entries: s.entries,
        }),
        Ok(other) => Err(stats_error(
            "wire cache-stats",
            format!("unexpected response (status {})", other.status()),
        )),
        Err(e) => Err(stats_error("wire cache-stats", e.to_string())),
    }
}

fn fetch_server_counters_wire(addr: std::net::SocketAddr) -> std::io::Result<ServerCounters> {
    match wire_request(addr, &WireRequest::Metrics) {
        Ok(WireResponse::Metrics(m)) => Ok(ServerCounters {
            connections: m.connections,
            requests: m.requests,
            responses_2xx: m.responses_2xx,
            responses_4xx: m.responses_4xx,
            responses_5xx: m.responses_5xx,
        }),
        Ok(other) => Err(stats_error(
            "wire metrics",
            format!("unexpected response (status {})", other.status()),
        )),
        Err(e) => Err(stats_error("wire metrics", e.to_string())),
    }
}

/// Boot an in-process server over a synthetic VOC backend shaped by
/// the scenario (rows, shards, worker and cache knobs). Both listeners
/// are always bound (the wire one on its own ephemeral port), so one
/// booted server can serve either protocol's scenarios.
pub fn boot(cfg: &ScenarioConfig) -> std::io::Result<ServerHandle> {
    let table = voc_table(cfg.rows, 0xC1DA);
    let backend: Arc<dyn Backend> = if cfg.shards <= 1 {
        Arc::new(table)
    } else {
        Arc::new(ShardedTable::from_table(&table, cfg.shards))
    };
    Server::bind(
        "127.0.0.1:0",
        backend,
        ServeConfig {
            workers: cfg.server_workers,
            cache_shards: cfg.cache_shards,
            cache_capacity: cfg.cache_capacity,
            ..ServeConfig::default()
        },
    )?
    .with_wire_listener("127.0.0.1:0")?
    .spawn()
}

/// Boot, drive, shut down. Applies the scenario's `par_threshold`
/// override for the duration of the run (0 restores the library
/// default — [`charles_parallel::set_par_threshold`] treats 0 as
/// "no override").
pub fn run_in_process(cfg: &ScenarioConfig) -> std::io::Result<LoadResult> {
    if cfg.par_threshold != 0 {
        charles_parallel::set_par_threshold(cfg.par_threshold);
    }
    let handle = boot(cfg)?;
    let target = match cfg.proto {
        Proto::Http => handle.addr(),
        Proto::Binary => handle.wire_addr().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "booted server has no wire listener",
            )
        })?,
    };
    let result = run_against(target, cfg);
    handle.shutdown();
    if cfg.par_threshold != 0 {
        charles_parallel::set_par_threshold(0);
    }
    result
}

// ---------------------------------------------------------------------------
// Results cache
// ---------------------------------------------------------------------------

/// A don't-rerun-completed-configs store: one line per finished
/// scenario, `fingerprint \t result-json`, rewritten atomically-enough
/// for a single-driver harness. Lines that no longer parse (schema
/// bump, hand edits) are dropped on load — the scenario just re-runs.
pub struct ResultsCache {
    path: PathBuf,
    entries: HashMap<String, String>,
}

impl ResultsCache {
    /// Load the cache at `path` (missing file = empty cache).
    pub fn load(path: impl Into<PathBuf>) -> ResultsCache {
        let path = path.into();
        let mut entries = HashMap::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            for line in text.lines() {
                if let Some((fp, json)) = line.split_once('\t') {
                    if LoadResult::from_json(json).is_ok() {
                        entries.insert(fp.to_string(), json.to_string());
                    }
                }
            }
        }
        ResultsCache { path, entries }
    }

    /// Completed scenarios on record.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached result for a fingerprint, if that config already ran.
    pub fn get(&self, fingerprint: &str) -> Option<LoadResult> {
        let json = self.entries.get(fingerprint)?;
        LoadResult::from_json(json).ok()
    }

    /// Record a finished run and persist the whole cache (sorted by
    /// fingerprint, so the file is diff-stable).
    pub fn put(&mut self, result: &LoadResult) -> std::io::Result<()> {
        self.entries
            .insert(result.fingerprint.clone(), result.to_json());
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut lines: Vec<(&String, &String)> = self.entries.iter().collect();
        lines.sort();
        let mut out = std::fs::File::create(&self.path)?;
        for (fp, json) in lines {
            writeln!(out, "{fp}\t{json}")?;
        }
        Ok(())
    }

    /// Where this cache persists.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

/// Render results as an aligned comparison table (grid sweeps, A/B
/// runs, the smoke report).
pub fn comparison_table(results: &[LoadResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>9} {:>6} {:>6}\n",
        "scenario",
        "target/s",
        "achieved",
        "p50µs",
        "p95µs",
        "p99µs",
        "p999µs",
        "maxµs",
        "err",
        "hit%"
    ));
    for r in results {
        let lookups = r.cache.hits + r.cache.misses;
        let hit_pct = if lookups == 0 {
            0.0
        } else {
            100.0 * r.cache.hits as f64 / lookups as f64
        };
        out.push_str(&format!(
            "{:<28} {:>9.1} {:>9.1} {:>8} {:>8} {:>8} {:>8} {:>9} {:>6} {:>5.1}%\n",
            r.name,
            r.target_rps,
            r.achieved_rps,
            r.latency.p50,
            r.latency.p95,
            r.latency.p99,
            r.latency.p999,
            r.latency.max,
            r.errors,
            hit_pct,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_contexts_pass_admission_analysis() {
        // The server now statically analyzes contexts at admission: a
        // harness context that failed analysis would 422 and poison the
        // whole run's expectations. Pin every hot context and a sample
        // of cold ones as valid + satisfiable against the VOC schema.
        let t = charles_datagen::voc_table(16, 1);
        let schema = charles_store::Backend::schema(&t);
        let mut contexts: Vec<String> = HOT_CONTEXTS.iter().map(|s| s.to_string()).collect();
        for n in 0..5u64 {
            // The cold-context shape from `SessionScript::next_op`.
            contexts.push(format!("(type_of_boat: , tonnage: [0, {}])", 100_000 + n));
        }
        for (i, ctx) in contexts.iter().enumerate() {
            let q = charles_sdl::parse_query(ctx, schema).unwrap_or_else(|e| {
                panic!("context {i} {ctx:?} does not parse: {e}");
            });
            let report = charles_sdl::analyze(&q, schema);
            assert!(
                report.is_valid(),
                "context {i} {ctx:?}: {:?}",
                report.diagnostics
            );
            assert!(
                report.is_satisfiable(),
                "context {i} {ctx:?} is provably empty"
            );
        }
    }

    #[test]
    fn histogram_is_exact_below_the_linear_range() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 5, 63] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.percentile(50.0), 5);
        assert_eq!(h.percentile(100.0), 63);
        assert_eq!(h.max(), 63);
        assert_eq!(h.mean(), (1 + 5 + 5 + 63) / 5);
    }

    #[test]
    fn histogram_error_is_bounded_above_the_linear_range() {
        for v in [64u64, 100, 1_000, 4_097, 65_535, 1 << 20, (1 << 40) + 12345] {
            let mut h = Histogram::new();
            h.record(v);
            let reported = h.percentile(50.0);
            assert!(reported >= v || reported == h.max(), "{v} → {reported}");
            assert!(
                (reported as f64) <= v as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64) + 1.0,
                "{v} → {reported} exceeds the error bound"
            );
        }
    }

    #[test]
    fn histogram_percentiles_are_monotone_and_bounded_by_max() {
        let mut h = Histogram::new();
        // Deterministic LCG spread over ~6 decades.
        let mut x = 12345u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(x % 1_000_000);
        }
        let ps: Vec<u64> = [10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0]
            .iter()
            .map(|&p| h.percentile(p))
            .collect();
        assert!(ps.windows(2).all(|w| w[0] <= w[1]), "{ps:?}");
        assert!(*ps.last().unwrap() <= h.max());
    }

    #[test]
    fn histogram_merge_equals_single_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..5_000u64 {
            let v = v * 37 % 100_000;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for p in [50.0, 95.0, 99.9] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }

    #[test]
    fn session_script_replays_start_drill_back_delete() {
        let seq = Arc::new(AtomicU64::new(0));
        let mut script = SessionScript::new(seq, 100, 2);
        let start = script.next_op();
        assert_eq!(
            (start.method, start.path.as_str(), start.expect),
            ("POST", "/session", 201)
        );
        script.observe(&start, OpOutcome::Ok("{\"session\":\"s7\",\"advice\":{}}"));
        let expected = [
            ("POST", "/session/s7/drill", 200),
            ("POST", "/session/s7/back", 200),
            ("POST", "/session/s7/drill", 200),
            ("POST", "/session/s7/back", 200),
            ("DELETE", "/session/s7", 204),
        ];
        for (method, path, status) in expected {
            let op = script.next_op();
            assert_eq!(
                (op.method, op.path.as_str(), op.expect),
                (method, path, status)
            );
            script.observe(&op, OpOutcome::Ok(""));
        }
        // Deleted → the next op starts a fresh session.
        assert_eq!(script.next_op().path, "/session");
    }

    #[test]
    fn session_script_abandons_a_failed_session() {
        let seq = Arc::new(AtomicU64::new(0));
        let mut script = SessionScript::new(seq, 0, 3);
        let start = script.next_op();
        // Cold contexts embed the session counter → distinct keys.
        assert!(
            start.body.contains("tonnage: [0, 100000]"),
            "{}",
            start.body
        );
        script.observe(&start, OpOutcome::Ok("{\"session\":\"s1\",\"advice\":{}}"));
        let drill = script.next_op();
        script.observe(&drill, OpOutcome::Failed);
        let next = script.next_op();
        assert_eq!(next.path, "/session", "failure must reset to a new session");
        assert!(next.body.contains("tonnage: [0, 100001]"), "{}", next.body);
    }

    #[test]
    fn fingerprints_differ_per_knob_and_are_stable() {
        let base = ScenarioConfig::smoke();
        let fp = base.fingerprint();
        assert_eq!(fp, base.fingerprint());
        for (label, tweaked) in [
            (
                "shards",
                ScenarioConfig {
                    shards: 4,
                    ..base.clone()
                },
            ),
            (
                "cache",
                ScenarioConfig {
                    cache_capacity: 0,
                    ..base.clone()
                },
            ),
            (
                "rate",
                ScenarioConfig {
                    target_rps: 151.0,
                    ..base.clone()
                },
            ),
            (
                "threshold",
                ScenarioConfig {
                    par_threshold: 1,
                    ..base.clone()
                },
            ),
            (
                "proto",
                ScenarioConfig {
                    proto: Proto::Binary,
                    ..base.clone()
                },
            ),
        ] {
            assert_ne!(
                fp,
                tweaked.fingerprint(),
                "{label} must change the fingerprint"
            );
        }
    }

    fn sample_result() -> LoadResult {
        LoadResult {
            name: "unit".to_string(),
            fingerprint: ScenarioConfig::smoke().fingerprint(),
            ops_total: 100,
            ops_measured: 80,
            ops_warmup: 20,
            errors: 0,
            first_error: None,
            target_rps: 50.0,
            achieved_rps: 49.5,
            elapsed_ms: 2_000,
            latency: LatencySummary {
                p50: 100,
                p95: 200,
                p99: 300,
                p999: 400,
                max: 500,
                mean: 120,
            },
            cache: CacheCounters {
                hits: 60,
                misses: 20,
                runs: 20,
                evictions: 0,
                entries: 20,
            },
            server: ServerCounters {
                connections: 4,
                requests: 101,
                responses_2xx: 101,
                responses_4xx: 0,
                responses_5xx: 0,
            },
            client_connects: 4,
        }
    }

    #[test]
    fn result_json_round_trips_and_validates() {
        let result = sample_result();
        let json = result.to_json();
        let doc = mini_json::parse(&json).expect("emitted JSON parses");
        validate(&doc).expect("emitted JSON validates");
        let back = LoadResult::from_json(&json).unwrap();
        assert_eq!(back.fingerprint, result.fingerprint);
        assert_eq!(back.latency, result.latency);
        assert_eq!(back.cache, result.cache);
        assert_eq!(back.server, result.server);
        assert_eq!(back.ops_measured, result.ops_measured);
        assert!((back.achieved_rps - result.achieved_rps).abs() < 1e-6);
    }

    #[test]
    fn validation_rejects_dirty_or_inconsistent_runs() {
        let mut dirty = sample_result();
        dirty.errors = 1;
        dirty.ops_measured -= 1; // keep the accounting consistent
        let err = LoadResult::from_json(&dirty.to_json()).unwrap_err();
        assert!(err.contains("errors"), "{err}");

        let mut non2xx = sample_result();
        non2xx.server.responses_5xx = 2;
        let err = LoadResult::from_json(&non2xx.to_json()).unwrap_err();
        assert!(err.contains("non-2xx"), "{err}");

        let mut off = sample_result();
        off.ops_total += 7;
        let err = LoadResult::from_json(&off.to_json()).unwrap_err();
        assert!(err.contains("accounting"), "{err}");

        let mut swapped = sample_result();
        swapped.latency.p95 = swapped.latency.p999 + 1_000_000;
        let err = LoadResult::from_json(&swapped.to_json()).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
    }

    #[test]
    fn results_cache_skips_completed_configs() {
        let dir = std::env::temp_dir().join(format!(
            "charles-load-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("results.tsv");
        let _ = std::fs::remove_dir_all(&dir);

        let mut cache = ResultsCache::load(&path);
        assert!(cache.is_empty());
        let result = sample_result();
        assert!(cache.get(&result.fingerprint).is_none());
        cache.put(&result).unwrap();

        // A fresh load sees the completed config; an unknown one misses.
        let reloaded = ResultsCache::load(&path);
        assert_eq!(reloaded.len(), 1);
        let hit = reloaded.get(&result.fingerprint).expect("cache hit");
        assert_eq!(hit.latency, result.latency);
        assert!(reloaded.get("name=other|rows=1").is_none());

        // Corrupt lines are dropped, not fatal.
        std::fs::write(&path, "garbage-fingerprint\t{not json}\n").unwrap();
        assert!(ResultsCache::load(&path).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wire_script_stages_whole_sessions_between_starts() {
        let seq = Arc::new(AtomicU64::new(0));
        let mut script = WireScript::new(seq, 100, 2);
        assert!(!script.blocked());
        let start = script.next_op();
        assert!(matches!(&start, WirePlan::Start(ctx) if ctx == HOT_CONTEXTS[0]));
        assert_eq!(start.expect(), 201);
        // The start is unresolved: nothing further can be planned.
        assert!(script.blocked());
        script.started(Some("s9".to_string()));
        assert!(!script.blocked());
        // The whole tail — and the next session's start — plan without
        // any interleaved responses.
        type PlanCheck<'a> = (&'a dyn Fn(&WirePlan) -> bool, u16);
        let expected: [PlanCheck; 6] = [
            (&|p| matches!(p, WirePlan::Drill(id) if id == "s9"), 200),
            (&|p| matches!(p, WirePlan::Back(id) if id == "s9"), 200),
            (&|p| matches!(p, WirePlan::Drill(id) if id == "s9"), 200),
            (&|p| matches!(p, WirePlan::Back(id) if id == "s9"), 200),
            (&|p| matches!(p, WirePlan::Delete(id) if id == "s9"), 204),
            (&|p| matches!(p, WirePlan::Start(_)), 201),
        ];
        for (i, (matcher, status)) in expected.iter().enumerate() {
            assert!(!script.blocked(), "blocked before step {i}");
            let plan = script.next_op();
            assert!(matcher(&plan), "step {i} planned the wrong op");
            assert_eq!(plan.expect(), *status, "step {i}");
        }
        assert!(script.blocked(), "second start must block until resolved");
        // A failed start falls through to a fresh session, not a hang.
        script.start_failed();
        assert!(!script.blocked());
        assert!(matches!(script.next_op(), WirePlan::Start(_)));
    }

    #[test]
    fn wire_ab_artefact_validates_and_gates_the_speedup() {
        let mut http = sample_result();
        http.fingerprint = ScenarioConfig::throughput(Proto::Http).fingerprint();
        http.achieved_rps = 100.0;
        let mut binary = sample_result();
        binary.fingerprint = ScenarioConfig::throughput(Proto::Binary).fingerprint();
        binary.achieved_rps = 612.5;

        let json = wire_ab_to_json(&http, &binary);
        let doc = mini_json::parse(&json).expect("artefact parses");
        validate_wire_ab(&doc).expect("clean 6.1× artefact validates");

        // Below the 5× bar → rejected.
        let mut slow = binary.clone();
        slow.achieved_rps = 499.0;
        let doc = mini_json::parse(&wire_ab_to_json(&http, &slow)).unwrap();
        let err = validate_wire_ab(&doc).unwrap_err();
        assert!(err.contains("must be ≥"), "{err}");

        // A dirty leg fails the embedded clean-run contract.
        let mut dirty = binary.clone();
        dirty.server.responses_5xx = 1;
        let doc = mini_json::parse(&wire_ab_to_json(&http, &dirty)).unwrap();
        let err = validate_wire_ab(&doc).unwrap_err();
        assert!(err.starts_with("binary leg:"), "{err}");

        // Legs must be the same workload apart from name and proto.
        let mut other = binary.clone();
        other.fingerprint = ScenarioConfig {
            rows: 1,
            ..ScenarioConfig::throughput(Proto::Binary)
        }
        .fingerprint();
        let doc = mini_json::parse(&wire_ab_to_json(&http, &other)).unwrap();
        let err = validate_wire_ab(&doc).unwrap_err();
        assert!(err.contains("different workloads"), "{err}");

        // Legs must actually be the protos they claim.
        let doc = mini_json::parse(&wire_ab_to_json(&http, &http)).unwrap();
        let err = validate_wire_ab(&doc).unwrap_err();
        assert!(err.contains("proto"), "{err}");

        // A tampered headline speedup is caught.
        let forged =
            wire_ab_to_json(&http, &binary).replace("\"speedup\":6.125", "\"speedup\":9.000");
        let doc = mini_json::parse(&forged).unwrap();
        let err = validate_wire_ab(&doc).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn store_scaling_artefact_validates_and_gates_the_sparse_ratio() {
        let entry = |label: &str, selectivity: f64, dense: u64, compressed: u64| {
            format!(
                "{{\"label\":\"{label}\",\"stride\":7,\"selectivity\":{selectivity},\
                 \"dense_bytes\":{dense},\"compressed_bytes\":{compressed},\
                 \"bytes_ratio\":{:.4},\"dense_and_us\":10.0,\"compressed_and_us\":2.0,\
                 \"dense_and_count_us\":5.0,\"compressed_and_count_us\":1.0}}",
                dense as f64 / compressed as f64
            )
        };
        let doc = |series: &[String]| {
            mini_json::parse(&format!(
                "{{\"schema\":\"{STORE_SCALING_SCHEMA}\",\"rows\":10000000,\"series\":[{}]}}",
                series.join(",")
            ))
            .unwrap()
        };

        // A sparse series clearing the 4× gate validates.
        let good = doc(&[
            entry("half", 0.5, 2_500_000, 2_500_000),
            entry("permille", 0.001, 2_500_000, 50_000),
        ]);
        validate_store_scaling(&good).expect("50× sparse artefact validates");

        // No sparse series at all: rejected.
        let dense_only = doc(&[entry("half", 0.5, 2_500_000, 2_400_000)]);
        let err = validate_store_scaling(&dense_only).unwrap_err();
        assert!(err.contains("sparse"), "{err}");

        // A sparse series below the gate: rejected.
        let weak = doc(&[entry("permille", 0.001, 2_500_000, 1_000_000)]);
        let err = validate_store_scaling(&weak).unwrap_err();
        assert!(err.contains("4"), "{err}");

        // A forged ratio that disagrees with the byte counts is caught.
        let forged_text = format!(
            "{{\"schema\":\"{STORE_SCALING_SCHEMA}\",\"rows\":10000000,\"series\":[{}]}}",
            entry("permille", 0.001, 2_500_000, 50_000).replace("50.0000", "80.0000")
        );
        let err = validate_store_scaling(&mini_json::parse(&forged_text).unwrap()).unwrap_err();
        assert!(err.contains("does not match"), "{err}");

        // Wrong schema tag and tiny row counts are rejected.
        let wrong_tag = mini_json::parse("{\"schema\":\"nope/v1\"}").unwrap();
        assert!(validate_store_scaling(&wrong_tag).is_err());
        let tiny = mini_json::parse(&format!(
            "{{\"schema\":\"{STORE_SCALING_SCHEMA}\",\"rows\":1000,\"series\":[{}]}}",
            entry("permille", 0.001, 2_500_000, 50_000)
        ))
        .unwrap();
        let err = validate_store_scaling(&tiny).unwrap_err();
        assert!(err.contains("rows"), "{err}");
    }

    #[test]
    fn extracts_session_ids_from_envelopes() {
        assert_eq!(
            extract_session_id("{\"session\":\"s42\",\"advice\":{}}").as_deref(),
            Some("s42")
        );
        assert_eq!(extract_session_id("{\"error\":\"nope\"}"), None);
        assert_eq!(extract_session_id("{\"session\":\"\"}"), None);
    }
}
