//! A minimal JSON parser, just big enough to *validate and read back*
//! the machine-readable artefacts this harness emits (`BENCH_serve.json`,
//! cached scenario results). The serving stack hand-rolls its JSON
//! *encoders*; this is the matching decoder side, dependency-free by
//! the same necessity (crates.io is unreachable in this build
//! environment). Strict where it matters for round-tripping our own
//! output: no trailing garbage, no unbalanced structure, real string
//! escape handling.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (decoded as f64, which covers every value we emit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (keys may repeat; lookups take the
    /// first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walk a `.`-separated path of object keys.
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        dotted.split('.').try_fold(self, |node, key| node.get(key))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64, if whole and in range.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one complete JSON document (rejecting trailing non-space).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at offset {pos}, found {:?}",
            byte as char,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-UTF-8 number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("malformed number {text:?} at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "non-UTF-8 \\u escape")?,
                            16,
                        )
                        .map_err(|_| "malformed \\u escape")?;
                        // Lone surrogates decode to the replacement
                        // character — our encoders never emit them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "non-UTF-8 string")?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        let doc = parse(r#"{"a":1,"b":[true,false,null,"x\n\"y\""],"c":{"d":-2.5e2}}"#).unwrap();
        assert_eq!(doc.path("a").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.path("c.d").and_then(Json::as_f64), Some(-250.0));
        let arr = doc.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0], Json::Bool(true));
        assert_eq!(arr[3].as_str(), Some("x\n\"y\""));
    }

    #[test]
    fn round_trips_the_serve_stats_shape() {
        let body = r#"{"hits":12,"misses":3,"runs":3,"evictions":0,"entries":3,"capacity":null}"#;
        let doc = parse(body).unwrap();
        assert_eq!(doc.get("hits").and_then(Json::as_u64), Some(12));
        assert_eq!(doc.get("capacity"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,2",
            "{\"a\":}",
            "{\"a\":1} trailing",
            "{\"a\" 1}",
            "nul",
            "\"unterminated",
            "{\"a\":01x}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_and_escapes() {
        let doc = parse(r#""café → ok""#).unwrap();
        assert_eq!(doc.as_str(), Some("café → ok"));
    }
}
