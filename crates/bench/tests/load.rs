//! End-to-end pin of the load harness against a live in-process
//! server: op accounting (histogram totals match the offered schedule),
//! deterministic warmup exclusion, monotone percentiles, cache traffic
//! in both hot and cold regimes, and an emitted artefact that passes
//! the same validation CI applies to the committed `BENCH_serve.json`.

use charles_bench::load::{run_in_process, validate, Proto, ScenarioConfig};
use charles_bench::mini_json;
use std::time::Duration;

/// Small enough for a debug test run, big enough to cycle several
/// sessions per worker.
fn tiny(name: &str) -> ScenarioConfig {
    ScenarioConfig {
        name: name.to_string(),
        rows: 400,
        shards: 1,
        server_workers: 4,
        cache_shards: 4,
        cache_capacity: 256,
        connections: 2,
        target_rps: 60.0,
        duration: Duration::from_millis(1_200),
        warmup: Duration::from_millis(300),
        hot_percent: 100,
        drills_per_session: 1,
        par_threshold: 0,
        proto: Proto::Http,
    }
}

#[test]
fn hot_run_accounts_for_every_op_and_validates() {
    let cfg = tiny("it-hot");
    let result = run_in_process(&cfg).expect("harness runs");

    // Every scheduled op lands in exactly one bucket: warmup histogram,
    // measured histogram, or the error count.
    assert_eq!(result.errors, 0, "first error: {:?}", result.first_error);
    assert_eq!(
        result.ops_total,
        result.ops_measured + result.ops_warmup + result.errors
    );
    assert_eq!(result.ops_total, cfg.total_ops());

    // Warmup exclusion is deterministic: ops are classified by their
    // *scheduled* time, so exactly floor(rate × warmup) ops warm up.
    let expected_warmup = (cfg.target_rps * cfg.warmup.as_secs_f64()).floor() as u64;
    assert_eq!(result.ops_warmup, expected_warmup);
    assert!(result.ops_measured > 0);

    // Percentiles are monotone and bounded by the exact max.
    let l = &result.latency;
    assert!(
        l.p50 <= l.p95 && l.p95 <= l.p99 && l.p99 <= l.p999 && l.p999 <= l.max,
        "{l:?}"
    );
    assert!(result.achieved_rps > 0.0);

    // 100% hot traffic over a 4-context pool: the shared cache must
    // take real traffic and almost all of it must hit.
    assert!(result.cache.runs >= 1);
    assert!(
        result.cache.hits > result.cache.misses,
        "hot traffic should be hit-dominated: {:?}",
        result.cache
    );

    // The server saw only well-formed requests.
    assert_eq!(result.server.responses_4xx, 0);
    assert_eq!(result.server.responses_5xx, 0);
    assert!(result.server.requests >= result.ops_total);
    assert!(result.client_connects >= cfg.connections as u64);

    // The emitted artefact passes the CI gate's validation.
    let doc = mini_json::parse(&result.to_json()).expect("artefact parses");
    validate(&doc).expect("artefact validates");
}

#[test]
fn cold_traffic_runs_the_advisor_instead_of_hitting() {
    // 0% hot: every session uses a fresh canonical context, so runs
    // grow with sessions instead of flatlining at the pool size.
    let cfg = ScenarioConfig {
        hot_percent: 0,
        target_rps: 40.0,
        duration: Duration::from_millis(1_000),
        warmup: Duration::from_millis(250),
        ..tiny("it-cold")
    };
    let result = run_in_process(&cfg).expect("harness runs");
    assert_eq!(result.errors, 0, "first error: {:?}", result.first_error);
    // A 4-entry hot pool would cap runs at ~8 (roots + drills); a cold
    // stream must advise far more often than that.
    assert!(
        result.cache.runs > 8,
        "cold traffic barely ran the advisor: {:?}",
        result.cache
    );
    let doc = mini_json::parse(&result.to_json()).expect("artefact parses");
    validate(&doc).expect("artefact validates");
}

#[test]
fn binary_proto_run_accounts_for_every_op_and_validates() {
    // The same pinned accounting invariants over the wire listener:
    // the pipelined worker must settle every claimed op exactly once
    // and produce an artefact that passes the same CI validation.
    let cfg = ScenarioConfig {
        proto: Proto::Binary,
        ..tiny("it-wire")
    };
    let result = run_in_process(&cfg).expect("harness runs");
    assert_eq!(result.errors, 0, "first error: {:?}", result.first_error);
    assert_eq!(
        result.ops_total,
        result.ops_measured + result.ops_warmup + result.errors
    );
    assert_eq!(result.ops_total, cfg.total_ops());
    assert_eq!(result.server.responses_4xx, 0);
    assert_eq!(result.server.responses_5xx, 0);
    assert!(
        result.cache.hits > result.cache.misses,
        "hot traffic should be hit-dominated: {:?}",
        result.cache
    );
    let doc = mini_json::parse(&result.to_json()).expect("artefact parses");
    validate(&doc).expect("artefact validates");
}
