//! Per-piece adaptive cuts (§5.2).
//!
//! "Our heuristic relies on a heavy restriction: all queries in a
//! segmentation are based on the same attributes. It would be interesting
//! to consider other options. For instance, we could cut each piece of a
//! segmentation on a potentially different attribute. The main issue with
//! this approach is the explosion of the search space. This may be tackled
//! with randomized algorithms."
//!
//! [`adaptive_segmentations`] implements that idea as randomized greedy
//! search: starting from the context, repeatedly pick the segment with the
//! largest cover and cut it on an attribute chosen at random among the
//! best-balancing candidates for *that piece*. Several restarts produce a
//! pool of heterogeneous segmentations, ranked by the usual metrics.

use crate::engine::Explorer;
use crate::error::CoreResult;
use crate::metrics::score;
use crate::primitives::cut_query;
use crate::ranking::{rank, Ranked};
use charles_sdl::{Query, Segmentation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for the randomized search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// Number of random restarts (each yields one segmentation).
    pub restarts: usize,
    /// Target number of pieces per segmentation.
    pub target_depth: usize,
    /// Among attributes whose cut balance is within this factor of the
    /// best, one is picked uniformly at random (1.0 = always the best,
    /// i.e. deterministic greedy).
    pub exploration: f64,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
}

impl Default for AdaptiveOptions {
    fn default() -> AdaptiveOptions {
        AdaptiveOptions {
            restarts: 8,
            target_depth: 8,
            exploration: 0.9,
            seed: 0x5eed,
        }
    }
}

/// Run the randomized per-piece search; returns ranked segmentations
/// (deduplicated across restarts).
pub fn adaptive_segmentations(ex: &Explorer<'_>, opts: AdaptiveOptions) -> CoreResult<Vec<Ranked>> {
    // Derive one sub-seed per restart from the master seed up front.
    // Restarts then consume independent RNG streams, which makes each
    // run a pure function of (data, opts, sub-seed) — that is what lets
    // them fan out across threads with output identical to running them
    // one after another.
    let mut master = StdRng::seed_from_u64(opts.seed);
    let seeds: Vec<u64> = (0..opts.restarts.max(1)).map(|_| master.gen()).collect();
    let runs = crate::par::try_map(&seeds, |&seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        one_run(ex, opts, &mut rng)
    })?;

    // Dedupe and score in restart order (first occurrence wins).
    let mut pool: Vec<(Segmentation, crate::metrics::Score)> = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    for seg in runs {
        let fp = crate::engine::fingerprint(&seg);
        if !seen.contains(&fp) {
            seen.push(fp);
            let s = score(ex, &seg)?;
            pool.push((seg, s));
        }
    }
    Ok(rank(pool))
}

/// One greedy run: grow a segmentation piece by piece.
fn one_run(ex: &Explorer<'_>, opts: AdaptiveOptions, rng: &mut StdRng) -> CoreResult<Segmentation> {
    let attrs: Vec<String> = ex.attributes().iter().map(|s| s.to_string()).collect();
    let mut pieces: Vec<Query> = vec![ex.context().clone()];
    while pieces.len() < opts.target_depth.max(2) {
        // Pick the fattest piece — the user is "primarily interested in the
        // most significant parts of the data".
        let mut order: Vec<usize> = (0..pieces.len()).collect();
        let covers: Vec<f64> = pieces
            .iter()
            .map(|p| ex.cover(p))
            .collect::<CoreResult<_>>()?;
        order.sort_by(|&a, &b| {
            covers[b]
                .partial_cmp(&covers[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // Try pieces fattest-first until one can be cut.
        let mut cut_made: Option<(usize, Query, Query)> = None;
        'pieces: for &pi in &order {
            // Evaluate every attribute's cut balance on this piece.
            let mut options: Vec<(f64, Query, Query)> = Vec::new();
            for attr in &attrs {
                if let Some((l, r)) = cut_query(ex, &pieces[pi], attr)? {
                    let cl = ex.count(&l)? as f64;
                    let cr = ex.count(&r)? as f64;
                    let balance = cl.min(cr) / cl.max(cr).max(1.0);
                    options.push((balance, l, r));
                }
            }
            if options.is_empty() {
                continue 'pieces;
            }
            options.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            let best = options[0].0;
            // exploration = 1.0 degenerates to pure greedy: always take the
            // first-best option (deterministic even under balance ties).
            let pick = if opts.exploration >= 1.0 {
                0
            } else {
                let eligible: Vec<usize> = options
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.0 >= best * opts.exploration)
                    .map(|(i, _)| i)
                    .collect();
                eligible[rng.gen_range(0..eligible.len())]
            };
            let (_, l, r) = options.swap_remove(pick);
            cut_made = Some((pi, l, r));
            break 'pieces;
        }
        match cut_made {
            Some((pi, l, r)) => {
                pieces.swap_remove(pi);
                pieces.push(l);
                pieces.push(r);
            }
            None => break, // nothing cuttable anywhere
        }
    }
    Ok(Segmentation::new(pieces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use charles_store::{DataType, TableBuilder, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn table() -> charles_store::Table {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int)
            .add_column("y", DataType::Int)
            .add_column("k", DataType::Str);
        for _ in 0..800 {
            let x: i64 = rng.gen_range(0..100);
            let y: i64 = rng.gen_range(0..100);
            let k = ["a", "b", "c"][rng.gen_range(0usize..3)];
            b.push_row(vec![Value::Int(x), Value::Int(y), Value::str(k)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn produces_partitions_of_target_depth() {
        let t = table();
        let ex = Explorer::new(
            &t,
            Config::default(),
            charles_sdl::Query::wildcard(&["x", "y", "k"]),
        )
        .unwrap();
        let opts = AdaptiveOptions {
            restarts: 4,
            target_depth: 6,
            ..AdaptiveOptions::default()
        };
        let ranked = adaptive_segmentations(&ex, opts).unwrap();
        assert!(!ranked.is_empty());
        for r in &ranked {
            assert_eq!(r.segmentation.depth(), 6);
            assert!(r
                .segmentation
                .check_partition(ex.backend(), ex.context_selection())
                .unwrap()
                .is_partition());
        }
    }

    #[test]
    fn pieces_may_differ_in_attributes() {
        // The whole point of the extension: heterogeneous queries. With
        // several restarts over three attributes at least one produced
        // segmentation should mix attributes across queries.
        let t = table();
        let ex = Explorer::new(
            &t,
            Config::default(),
            charles_sdl::Query::wildcard(&["x", "y", "k"]),
        )
        .unwrap();
        let ranked = adaptive_segmentations(&ex, AdaptiveOptions::default()).unwrap();
        let heterogeneous = ranked.iter().any(|r| {
            let sets: Vec<Vec<&str>> = r
                .segmentation
                .queries()
                .iter()
                .map(|q| q.constrained_attributes())
                .collect();
            sets.windows(2).any(|w| w[0] != w[1])
        });
        assert!(heterogeneous, "no heterogeneous segmentation found");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t = table();
        let ctx = charles_sdl::Query::wildcard(&["x", "y", "k"]);
        let run = || {
            let ex = Explorer::new(&t, Config::default(), ctx.clone()).unwrap();
            adaptive_segmentations(&ex, AdaptiveOptions::default())
                .unwrap()
                .iter()
                .map(|r| r.segmentation.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn greedy_mode_is_deterministic_single_result() {
        let t = table();
        let ex = Explorer::new(
            &t,
            Config::default(),
            charles_sdl::Query::wildcard(&["x", "y", "k"]),
        )
        .unwrap();
        let opts = AdaptiveOptions {
            restarts: 5,
            exploration: 1.0, // pure greedy → every restart identical
            ..AdaptiveOptions::default()
        };
        let ranked = adaptive_segmentations(&ex, opts).unwrap();
        assert_eq!(ranked.len(), 1, "greedy restarts must dedupe to one");
    }

    #[test]
    fn uncuttable_context_stops_early() {
        let mut b = TableBuilder::new("t");
        b.add_column("c", DataType::Int);
        for _ in 0..10 {
            b.push_row(vec![Value::Int(1)]).unwrap();
        }
        let t = b.finish();
        let ex =
            Explorer::new(&t, Config::default(), charles_sdl::Query::wildcard(&["c"])).unwrap();
        let ranked = adaptive_segmentations(&ex, AdaptiveOptions::default()).unwrap();
        // Only the trivial single-piece segmentation comes back.
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].segmentation.depth(), 1);
    }
}
