//! The user-facing facade: ask Charles for advice.
//!
//! An [`Advisor`] wraps a backend plus a [`Config`]; each call to
//! [`Advisor::advise`] pins a context, runs HB-cuts and returns the ranked
//! answer list of Figure 1's top panel together with the execution trace
//! and backend operation counts.

use crate::config::Config;
use crate::engine::{CacheStats, Explorer};
use crate::error::CoreResult;
use crate::hbcuts::{hb_cuts, Trace};
use crate::ranking::Ranked;
use charles_sdl::{parse_query, Query};
use charles_store::{Backend, BackendStats};

/// The advisor: owns nothing but a reference to the data and the tuning.
pub struct Advisor<'a> {
    backend: &'a dyn Backend,
    config: Config,
}

/// A full answer to one context query.
#[derive(Debug, Clone)]
pub struct Advice {
    /// The context that was advised on.
    pub context: Query,
    /// Number of rows in the context extent.
    pub context_size: usize,
    /// Ranked segmentations, best first.
    pub ranked: Vec<Ranked>,
    /// HB-cuts execution trace (the Figure 3 tree).
    pub trace: Trace,
    /// Backend operations performed while answering.
    ///
    /// Diagnostics, not part of the deterministic output: under the
    /// `parallel` feature two workers can miss the selection cache on
    /// the same query concurrently and both evaluate it, so exact
    /// counts vary run to run (the ranked answers and trace do not).
    pub backend_ops: BackendStats,
    /// Cache effectiveness while answering. Diagnostics — see
    /// [`Advice::backend_ops`] for why counts may vary under threads.
    pub cache: CacheStats,
}

impl<'a> Advisor<'a> {
    /// Advisor with the paper-default configuration.
    pub fn new(backend: &'a dyn Backend) -> Advisor<'a> {
        Advisor {
            backend,
            config: Config::default(),
        }
    }

    /// Advisor with an explicit configuration.
    pub fn with_config(backend: &'a dyn Backend, config: Config) -> Advisor<'a> {
        Advisor { backend, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The backend this advisor consults.
    pub fn backend(&self) -> &'a dyn Backend {
        self.backend
    }

    /// Advise on a context given as an SDL query.
    ///
    /// A context whose rows are uniform in every attribute (nothing is
    /// cuttable) is a legitimate leaf of the exploration, not a failure:
    /// it yields an `Advice` with an empty `ranked` list. Other errors
    /// (bad config, empty context, backend failures) propagate.
    pub fn advise(&self, context: Query) -> CoreResult<Advice> {
        self.backend.reset_stats();
        let ex = Explorer::new(self.backend, self.config.clone(), context.clone())?;
        let (ranked, trace) = match hb_cuts(&ex) {
            Ok(out) => (out.ranked, out.trace),
            Err(crate::error::CoreError::NoCuttableAttribute) => {
                // Leaf trace: every attribute was constant (skipped), no
                // pair ever existed to compose. Keeps the "why zero
                // answers" question answerable from the trace alone.
                let trace = Trace {
                    seeds: Vec::new(),
                    skipped: ex.attributes().iter().map(|s| s.to_string()).collect(),
                    steps: Vec::new(),
                    skipped_pairs: Vec::new(),
                    stop: Some(crate::hbcuts::StopReason::ExhaustedCandidates),
                };
                (Vec::new(), trace)
            }
            Err(other) => return Err(other),
        };
        Ok(Advice {
            context,
            context_size: ex.context_size(),
            ranked,
            trace,
            backend_ops: self.backend.stats(),
            cache: ex.cache_stats(),
        })
    }

    /// Advise on a context given in SDL's textual syntax, e.g.
    /// `"(type: , tonnage: [1000,5000])"`.
    pub fn advise_str(&self, sdl: &str) -> CoreResult<Advice> {
        let context = parse_query(sdl, self.backend.schema())?;
        self.advise(context)
    }
}

impl Advice {
    /// The query of segment `seg_idx` of answer `rank_idx` — what the user
    /// clicks to drill down.
    pub fn segment(&self, rank_idx: usize, seg_idx: usize) -> Option<&Query> {
        self.ranked
            .get(rank_idx)
            .and_then(|r| r.segmentation.queries().get(seg_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_store::{DataType, TableBuilder, Value};

    fn voc_like() -> charles_store::Table {
        let mut b = TableBuilder::new("boats");
        b.add_column("type", DataType::Str)
            .add_column("tonnage", DataType::Int)
            .add_column("harbour", DataType::Str);
        let rows = [
            ("fluit", 1000, "Bantam"),
            ("fluit", 1050, "Bantam"),
            ("fluit", 1100, "Rammekens"),
            ("fluit", 1150, "Rammekens"),
            ("jacht", 2400, "Surat"),
            ("jacht", 2500, "Surat"),
            ("jacht", 2600, "Zeeland"),
            ("jacht", 2700, "Zeeland"),
        ];
        for (ty, t, h) in rows {
            b.push_row(vec![Value::str(ty), Value::Int(t), Value::str(h)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn advise_returns_ranked_answers() {
        let t = voc_like();
        let advisor = Advisor::new(&t);
        let advice = advisor
            .advise_str("(type: , tonnage: , harbour: )")
            .unwrap();
        assert_eq!(advice.context_size, 8);
        assert!(!advice.ranked.is_empty());
        // Entropy-descending order.
        for w in advice.ranked.windows(2) {
            assert!(w[0].score.entropy >= w[1].score.entropy - 1e-12);
        }
        // Backend actually worked.
        assert!(advice.backend_ops.scans > 0);
        assert!(advice.backend_ops.medians > 0);
    }

    #[test]
    fn advise_with_constrained_context() {
        let t = voc_like();
        let advisor = Advisor::new(&t);
        let advice = advisor.advise_str("(type: {fluit}, tonnage: )").unwrap();
        assert_eq!(advice.context_size, 4);
        // All proposed segments stay within the fluit context.
        for r in &advice.ranked {
            for q in r.segmentation.queries() {
                let p = q.constraint("type");
                assert!(p.is_some(), "{q} lost the context constraint");
            }
        }
    }

    #[test]
    fn advise_bad_sdl_errors() {
        let t = voc_like();
        let advisor = Advisor::new(&t);
        assert!(advisor.advise_str("(nope: )").is_err());
        assert!(advisor.advise_str("garbage").is_err());
    }

    #[test]
    fn segment_accessor() {
        let t = voc_like();
        let advisor = Advisor::new(&t);
        let advice = advisor.advise_str("(type: , tonnage: )").unwrap();
        assert!(advice.segment(0, 0).is_some());
        assert!(advice.segment(999, 0).is_none());
    }

    #[test]
    fn config_flows_through() {
        let t = voc_like();
        let advisor = Advisor::with_config(&t, Config::default().with_max_results(1));
        let advice = advisor.advise_str("(type: , tonnage: )").unwrap();
        assert_eq!(advice.ranked.len(), 1);
        assert_eq!(advisor.config().max_results, 1);
    }
}
