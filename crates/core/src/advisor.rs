//! The user-facing facade: ask Charles for advice.
//!
//! An [`Advisor`] wraps a backend plus a [`Config`]; each call to
//! [`Advisor::advise`] pins a context, runs HB-cuts and returns the ranked
//! answer list of Figure 1's top panel together with the execution trace
//! and backend operation counts.

use crate::config::Config;
use crate::engine::{CacheStats, Explorer};
use crate::error::{CoreError, CoreResult};
use crate::hbcuts::{hb_cuts, Trace};
use crate::ranking::Ranked;
use charles_sdl::{parse_query, Query, QueryReport};
use charles_store::{Backend, BackendStats};

/// The advisor: owns nothing but a reference to the data and the tuning.
pub struct Advisor<'a> {
    backend: &'a dyn Backend,
    config: Config,
}

/// A full answer to one context query.
#[derive(Debug, Clone)]
pub struct Advice {
    /// The context that was advised on.
    pub context: Query,
    /// Number of rows in the context extent.
    pub context_size: usize,
    /// Ranked segmentations, best first.
    pub ranked: Vec<Ranked>,
    /// HB-cuts execution trace (the Figure 3 tree).
    pub trace: Trace,
    /// Backend operations performed while answering.
    ///
    /// Diagnostics, not part of the deterministic output: under the
    /// `parallel` feature two workers can miss the selection cache on
    /// the same query concurrently and both evaluate it, so exact
    /// counts vary run to run (the ranked answers and trace do not).
    pub backend_ops: BackendStats,
    /// Cache effectiveness while answering. Diagnostics — see
    /// [`Advice::backend_ops`] for why counts may vary under threads.
    pub cache: CacheStats,
}

impl<'a> Advisor<'a> {
    /// Advisor with the paper-default configuration.
    pub fn new(backend: &'a dyn Backend) -> Advisor<'a> {
        Advisor {
            backend,
            config: Config::default(),
        }
    }

    /// Advisor with an explicit configuration.
    pub fn with_config(backend: &'a dyn Backend, config: Config) -> Advisor<'a> {
        Advisor { backend, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The backend this advisor consults.
    pub fn backend(&self) -> &'a dyn Backend {
        self.backend
    }

    /// Statically analyze a context against this advisor's backend
    /// schema, without advising on it. Pure and row-free; see
    /// [`charles_sdl::analyze()`] for the report's contents.
    pub fn analyze(&self, context: &Query) -> QueryReport {
        charles_sdl::analyze(context, self.backend.schema())
    }

    /// Admission gate shared by [`Advisor::advise`] and the advice
    /// cache: analyze the context and decide what (if anything) the
    /// expensive machinery should see.
    ///
    /// * ill-typed → [`CoreError::InvalidContext`] with the diagnostics;
    /// * provably empty → [`CoreError::UnsatisfiableContext`], before
    ///   any backend operation;
    /// * repeated attributes → the normalized (merged) query;
    /// * otherwise → the context untouched, so analysis is invisible on
    ///   every context the parser accepted before analysis existed.
    ///
    /// With `config.analysis` off, every context passes through verbatim.
    pub(crate) fn admit(&self, context: Query) -> CoreResult<Query> {
        if !self.config.analysis {
            return Ok(context);
        }
        let report = self.analyze(&context);
        if !report.is_valid() {
            return Err(CoreError::InvalidContext(report.into_errors()));
        }
        if !report.is_satisfiable() {
            return Err(CoreError::UnsatisfiableContext);
        }
        if context.has_repeated_attributes() {
            return Ok(report
                .into_normalized()
                .expect("valid satisfiable reports carry a normalized query"));
        }
        Ok(context)
    }

    /// Advise on a context given as an SDL query.
    ///
    /// The context is statically analyzed first (unless disabled via
    /// [`Config::analysis`]): ill-typed or provably-empty contexts
    /// error out with zero backend operations, and repeated-attribute
    /// conjunctions are merged before advising.
    ///
    /// A context whose rows are uniform in every attribute (nothing is
    /// cuttable) is a legitimate leaf of the exploration, not a failure:
    /// it yields an `Advice` with an empty `ranked` list. Other errors
    /// (bad config, empty context, backend failures) propagate.
    pub fn advise(&self, context: Query) -> CoreResult<Advice> {
        let context = self.admit(context)?;
        self.backend.reset_stats();
        let ex = Explorer::new(self.backend, self.config.clone(), context.clone())?;
        let (ranked, trace) = match hb_cuts(&ex) {
            Ok(out) => (out.ranked, out.trace),
            Err(crate::error::CoreError::NoCuttableAttribute) => {
                // Leaf trace: every attribute was constant (skipped), no
                // pair ever existed to compose. Keeps the "why zero
                // answers" question answerable from the trace alone.
                let trace = Trace {
                    seeds: Vec::new(),
                    skipped: ex.attributes().iter().map(|s| s.to_string()).collect(),
                    steps: Vec::new(),
                    skipped_pairs: Vec::new(),
                    stop: Some(crate::hbcuts::StopReason::ExhaustedCandidates),
                };
                (Vec::new(), trace)
            }
            Err(other) => return Err(other),
        };
        Ok(Advice {
            context,
            context_size: ex.context_size(),
            ranked,
            trace,
            backend_ops: self.backend.stats(),
            cache: ex.cache_stats(),
        })
    }

    /// Advise on a context given in SDL's textual syntax, e.g.
    /// `"(type: , tonnage: [1000,5000])"`.
    pub fn advise_str(&self, sdl: &str) -> CoreResult<Advice> {
        let context = parse_query(sdl, self.backend.schema())?;
        self.advise(context)
    }
}

impl Advice {
    /// The query of segment `seg_idx` of answer `rank_idx` — what the user
    /// clicks to drill down.
    pub fn segment(&self, rank_idx: usize, seg_idx: usize) -> Option<&Query> {
        self.ranked
            .get(rank_idx)
            .and_then(|r| r.segmentation.queries().get(seg_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_store::{DataType, TableBuilder, Value};

    fn voc_like() -> charles_store::Table {
        let mut b = TableBuilder::new("boats");
        b.add_column("type", DataType::Str)
            .add_column("tonnage", DataType::Int)
            .add_column("harbour", DataType::Str);
        let rows = [
            ("fluit", 1000, "Bantam"),
            ("fluit", 1050, "Bantam"),
            ("fluit", 1100, "Rammekens"),
            ("fluit", 1150, "Rammekens"),
            ("jacht", 2400, "Surat"),
            ("jacht", 2500, "Surat"),
            ("jacht", 2600, "Zeeland"),
            ("jacht", 2700, "Zeeland"),
        ];
        for (ty, t, h) in rows {
            b.push_row(vec![Value::str(ty), Value::Int(t), Value::str(h)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn advise_returns_ranked_answers() {
        let t = voc_like();
        let advisor = Advisor::new(&t);
        let advice = advisor
            .advise_str("(type: , tonnage: , harbour: )")
            .unwrap();
        assert_eq!(advice.context_size, 8);
        assert!(!advice.ranked.is_empty());
        // Entropy-descending order.
        for w in advice.ranked.windows(2) {
            assert!(w[0].score.entropy >= w[1].score.entropy - 1e-12);
        }
        // Backend actually worked.
        assert!(advice.backend_ops.scans > 0);
        assert!(advice.backend_ops.medians > 0);
    }

    #[test]
    fn advise_with_constrained_context() {
        let t = voc_like();
        let advisor = Advisor::new(&t);
        let advice = advisor.advise_str("(type: {fluit}, tonnage: )").unwrap();
        assert_eq!(advice.context_size, 4);
        // All proposed segments stay within the fluit context.
        for r in &advice.ranked {
            for q in r.segmentation.queries() {
                let p = q.constraint("type");
                assert!(p.is_some(), "{q} lost the context constraint");
            }
        }
    }

    #[test]
    fn advise_bad_sdl_errors() {
        let t = voc_like();
        let advisor = Advisor::new(&t);
        assert!(advisor.advise_str("(nope: )").is_err());
        assert!(advisor.advise_str("garbage").is_err());
    }

    #[test]
    fn segment_accessor() {
        let t = voc_like();
        let advisor = Advisor::new(&t);
        let advice = advisor.advise_str("(type: , tonnage: )").unwrap();
        assert!(advice.segment(0, 0).is_some());
        assert!(advice.segment(999, 0).is_none());
    }

    #[test]
    fn config_flows_through() {
        let t = voc_like();
        let advisor = Advisor::with_config(&t, Config::default().with_max_results(1));
        let advice = advisor.advise_str("(type: , tonnage: )").unwrap();
        assert_eq!(advice.ranked.len(), 1);
        assert_eq!(advisor.config().max_results, 1);
    }

    #[test]
    fn ill_typed_contexts_are_rejected_with_diagnostics() {
        use charles_sdl::DiagnosticCode;
        use charles_sdl::{Constraint, Predicate};
        let t = voc_like();
        let advisor = Advisor::new(&t);
        // A quoted literal on an int column is the one ill-typed form
        // the parser lets through (a quoted literal is always a string).
        match advisor.advise_str("(tonnage: {'abc'})") {
            Err(CoreError::InvalidContext(diags)) => {
                assert_eq!(diags.len(), 1);
                assert_eq!(diags[0].code, DiagnosticCode::TypeMismatch);
                assert_eq!(diags[0].attr, "tonnage");
            }
            other => panic!("expected InvalidContext, got {other:?}"),
        }
        // The other error codes need hand-built queries (the parser's
        // validating constructors reject them textually); `advise` must
        // still catch them for programmatic callers.
        let cases: [(Query, DiagnosticCode); 4] = [
            (Query::wildcard(&["nope"]), DiagnosticCode::UnknownAttribute),
            (
                Query::conjunction(vec![Predicate::new(
                    "tonnage",
                    Constraint::Range {
                        lo: Value::Int(9),
                        hi: Value::Int(1),
                        hi_inclusive: true,
                    },
                )]),
                DiagnosticCode::EmptyRange,
            ),
            (
                Query::conjunction(vec![Predicate::new("type", Constraint::Set(vec![]))]),
                DiagnosticCode::EmptySet,
            ),
            (
                Query::conjunction(vec![Predicate::new(
                    "tonnage",
                    Constraint::Set(vec![Value::Int(1), Value::str("abc")]),
                )]),
                DiagnosticCode::MixedTypeSet,
            ),
        ];
        for (q, code) in cases {
            match advisor.advise(q.clone()) {
                Err(CoreError::InvalidContext(diags)) => {
                    assert_eq!(diags[0].code, code, "{q}");
                }
                other => panic!("{q}: expected InvalidContext, got {other:?}"),
            }
        }
        assert_eq!(
            t.stats(),
            BackendStats::default(),
            "rejection reads no rows"
        );
    }

    #[test]
    fn unsatisfiable_context_costs_zero_backend_ops() {
        let t = voc_like();
        // Warm the stats with a real run so the test proves `advise`
        // resets nothing and reads nothing on the pruned path.
        let advisor = Advisor::new(&t);
        advisor.advise_str("(type: , tonnage: )").unwrap();
        let before = t.stats();
        assert!(before.scans > 0);
        let err = advisor
            .advise_str("(tonnage: [0,100], tonnage: [200,300])")
            .unwrap_err();
        assert_eq!(err, CoreError::UnsatisfiableContext);
        assert_eq!(t.stats(), before, "pruning must not touch the backend");
    }

    #[test]
    fn redundant_conjuncts_merge_before_advising() {
        let t = voc_like();
        let advisor = Advisor::new(&t);
        let merged = advisor
            .advise_str("(tonnage: [0,2000], tonnage: [500,9999], type: )")
            .unwrap();
        let plain = advisor.advise_str("(tonnage: [500,2000], type: )").unwrap();
        assert_eq!(merged.context, plain.context.canonicalized());
        assert_eq!(merged.context_size, plain.context_size);
        assert_eq!(
            format!("{:?}", merged.ranked),
            format!("{:?}", plain.ranked)
        );
    }

    #[test]
    fn analysis_off_feeds_contexts_verbatim() {
        let t = voc_like();
        let advisor = Advisor::with_config(&t, Config::default().with_analysis(false));
        // Unsatisfiable conjunction now reaches evaluation and selects
        // zero rows — the pre-analysis behavior.
        let err = advisor
            .advise_str("(tonnage: [0,100], tonnage: [200,300])")
            .unwrap_err();
        assert_eq!(err, CoreError::EmptyContext);
        assert!(t.stats().scans > 0, "backend was consulted");
    }

    #[test]
    fn analyze_is_pure_reporting() {
        let t = voc_like();
        let advisor = Advisor::new(&t);
        let q = parse_query("(tonnage: [0,100])", t.schema()).unwrap();
        let report = advisor.analyze(&q);
        assert!(report.is_valid() && report.is_satisfiable());
        assert_eq!(t.stats(), BackendStats::default());
    }
}
