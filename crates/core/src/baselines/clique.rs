//! CLIQUE-style subspace clustering baseline (§6.4).
//!
//! "The first algorithm of this field is CLIQUE. It splits each dimension
//! in bins and detects the densest. Then, it explores all the possible
//! combinations of bins. This creates cells of higher dimension, that can
//! also be combined."
//!
//! This is a faithful small-scale CLIQUE: ξ equal-width bins per
//! dimension, a density threshold τ (fraction of the context), bottom-up
//! apriori growth of dense cells (a k-dimensional cell can only be dense
//! if all its (k−1)-dimensional projections are). Dense cells are reported
//! as SDL queries. Unlike Charles' output these are *not* partitions —
//! they are high-density regions — which is exactly the contrast the
//! related-work section draws ("CLIQUE aims at discovering high density
//! sub-spaces. We generate instant and general hints about the content of
//! the data"). For experiment E9 the cells are wrapped into a partition by
//! adding a rest-bucket.

use crate::engine::Explorer;
use crate::error::CoreResult;
use charles_sdl::{Constraint, Query};
use charles_store::{Bitmap, Value};

/// CLIQUE parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CliqueOptions {
    /// Number of equal-width bins per dimension (ξ).
    pub xi: usize,
    /// Density threshold as a fraction of the context size (τ).
    pub tau: f64,
    /// Maximum subspace dimensionality to explore.
    pub max_dims: usize,
}

impl Default for CliqueOptions {
    fn default() -> CliqueOptions {
        CliqueOptions {
            xi: 8,
            tau: 0.05,
            max_dims: 3,
        }
    }
}

/// A dense cell: an axis-aligned hyper-rectangle with its support.
#[derive(Debug, Clone)]
pub struct DenseCell {
    /// The SDL query describing the cell.
    pub query: Query,
    /// Number of context rows inside.
    pub support: usize,
    /// Subspace dimensionality (number of constrained attributes).
    pub dims: usize,
}

/// Run the CLIQUE-style search over the explorer's numeric attributes.
/// Returns all dense cells, highest-dimensional first, then by support.
pub fn clique_clusters(ex: &Explorer<'_>, opts: CliqueOptions) -> CoreResult<Vec<DenseCell>> {
    let n = ex.context_size();
    let min_support = ((n as f64) * opts.tau).ceil().max(1.0) as usize;
    let ctx = ex.context().clone();

    // 1-dimensional pass: dense bins per numeric attribute.
    let mut frontier: Vec<(Query, Bitmap)> = Vec::new();
    let mut all: Vec<DenseCell> = Vec::new();
    for attr in ex.attributes() {
        let ty = ex.backend().schema().type_of(attr)?;
        if !ty.is_numeric() {
            continue; // original CLIQUE is numeric-only
        }
        let sel = ex.selection(&ctx)?;
        let Some((min, max)) = ex.backend().min_max(attr, &sel)? else {
            continue;
        };
        let (lo, hi) = (min.as_f64().expect("num"), max.as_f64().expect("num"));
        if lo >= hi {
            continue;
        }
        let width = (hi - lo) / opts.xi as f64;
        for i in 0..opts.xi {
            let a = lo + width * i as f64;
            let b = if i == opts.xi - 1 {
                hi
            } else {
                lo + width * (i + 1) as f64
            };
            let Ok(c) = Constraint::range_with(Value::Float(a), Value::Float(b), i == opts.xi - 1)
            else {
                continue;
            };
            let Some(q) = ctx.refined(attr, c) else {
                continue;
            };
            let bm = ex.selection(&q)?;
            let support = bm.count_ones();
            if support >= min_support {
                frontier.push((q.clone(), (*bm).clone()));
                all.push(DenseCell {
                    query: q,
                    support,
                    dims: 1,
                });
            }
        }
    }

    // Bottom-up growth: join cells whose constrained attribute sets differ
    // in exactly one attribute (apriori candidate generation).
    let mut dims = 1usize;
    while dims < opts.max_dims && !frontier.is_empty() {
        let mut next: Vec<(Query, Bitmap)> = Vec::new();
        let mut seen: Vec<String> = Vec::new();
        for i in 0..frontier.len() {
            for j in (i + 1)..frontier.len() {
                let (qi, bi) = &frontier[i];
                let (qj, bj) = &frontier[j];
                // Quick support upper bound before building the query.
                if bi.and_count(bj) < min_support {
                    continue;
                }
                let Some(cell) = qi.conjoin(qj) else { continue };
                if cell.constrained_attributes().len() != dims + 1 {
                    continue; // same subspace or incompatible overlap
                }
                let key = cell.to_string();
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
                let bm = bi.and(bj);
                let support = bm.count_ones();
                if support >= min_support {
                    next.push((cell.clone(), bm));
                    all.push(DenseCell {
                        query: cell,
                        support,
                        dims: dims + 1,
                    });
                }
            }
        }
        frontier = next;
        dims += 1;
    }

    all.sort_by(|a, b| b.dims.cmp(&a.dims).then(b.support.cmp(&a.support)));
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use charles_store::{DataType, TableBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two well-separated 2-d blobs plus uniform background noise.
    fn blobs() -> charles_store::Table {
        let mut rng = StdRng::seed_from_u64(17);
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Float)
            .add_column("y", DataType::Float);
        let mut push = |cx: f64, cy: f64, spread: f64, n: usize, rng: &mut StdRng| {
            for _ in 0..n {
                let x = cx + (rng.gen::<f64>() - 0.5) * spread;
                let y = cy + (rng.gen::<f64>() - 0.5) * spread;
                b.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
            }
        };
        push(10.0, 10.0, 4.0, 400, &mut rng);
        push(80.0, 80.0, 4.0, 400, &mut rng);
        for _ in 0..200 {
            let x = rng.gen::<f64>() * 100.0;
            let y = rng.gen::<f64>() * 100.0;
            b.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn finds_two_dimensional_dense_cells_at_the_blobs() {
        let t = blobs();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "y"])).unwrap();
        let cells = clique_clusters(
            &ex,
            CliqueOptions {
                xi: 10,
                tau: 0.08,
                max_dims: 2,
            },
        )
        .unwrap();
        let two_d: Vec<&DenseCell> = cells.iter().filter(|c| c.dims == 2).collect();
        assert!(!two_d.is_empty(), "no 2-d dense cell found");
        // The densest 2-d cell must sit on one of the blobs: check that its
        // query contains the blob centre (10,10) or (80,80).
        let best = two_d[0];
        let on_blob = [(10.0, 10.0), (80.0, 80.0)].iter().any(|&(cx, cy)| {
            best.query.matches_row(|attr| match attr {
                "x" => Some(Value::Float(cx)),
                "y" => Some(Value::Float(cy)),
                _ => None,
            })
        });
        assert!(on_blob, "densest cell {} misses both blobs", best.query);
    }

    #[test]
    fn apriori_monotonicity_holds() {
        // Every 2-d dense cell's 1-d projections must also be dense.
        let t = blobs();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "y"])).unwrap();
        let opts = CliqueOptions {
            xi: 10,
            tau: 0.08,
            max_dims: 2,
        };
        let cells = clique_clusters(&ex, opts).unwrap();
        let one_d: Vec<&DenseCell> = cells.iter().filter(|c| c.dims == 1).collect();
        for cell in cells.iter().filter(|c| c.dims == 2) {
            for attr in cell.query.constrained_attributes() {
                let projected = one_d.iter().any(|c1| {
                    c1.query.constrained_attributes() == vec![attr]
                        && c1.query.constraint(attr).is_some()
                        && cell.support <= c1.support
                });
                assert!(projected, "2-d cell without dense 1-d parent on {attr}");
            }
        }
    }

    #[test]
    fn higher_tau_finds_fewer_cells() {
        let t = blobs();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "y"])).unwrap();
        let loose = clique_clusters(
            &ex,
            CliqueOptions {
                xi: 10,
                tau: 0.02,
                max_dims: 2,
            },
        )
        .unwrap();
        let strict = clique_clusters(
            &ex,
            CliqueOptions {
                xi: 10,
                tau: 0.20,
                max_dims: 2,
            },
        )
        .unwrap();
        assert!(strict.len() <= loose.len());
    }

    #[test]
    fn nominal_only_context_yields_nothing() {
        let mut b = TableBuilder::new("t");
        b.add_column("k", DataType::Str);
        for s in ["a", "b", "a", "c"] {
            b.push_row(vec![Value::str(s)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["k"])).unwrap();
        let cells = clique_clusters(&ex, CliqueOptions::default()).unwrap();
        assert!(cells.is_empty());
    }
}
