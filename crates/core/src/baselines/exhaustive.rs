//! Exhaustive enumeration baseline: the quality ceiling and the cost wall.
//!
//! §5.1: "the search space grows exponentially [with the number of
//! attributes]". This baseline makes that explosion concrete: it
//! enumerates **every non-empty attribute subset** (up to a dimensionality
//! cap), builds the product of binary cuts over each subset, and ranks all
//! of them. Its output contains everything HB-cuts could ever reach with
//! whole-set cuts, so its best entropy bounds HB-cuts' best entropy from
//! above — at 2^N cost instead of HB-cuts' quadratic-in-N iterations.

use crate::engine::Explorer;
use crate::error::{CoreError, CoreResult};
use crate::metrics::score;
use crate::primitives::cut_segmentation;
use crate::ranking::{rank, Ranked};
use charles_sdl::Segmentation;

/// Options for exhaustive enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExhaustiveOptions {
    /// Maximum attribute-subset size (caps the 2^N blow-up).
    pub max_subset: usize,
    /// Skip subsets whose segmentation would exceed this many pieces.
    pub max_depth: usize,
}

impl Default for ExhaustiveOptions {
    fn default() -> ExhaustiveOptions {
        ExhaustiveOptions {
            max_subset: 4,
            max_depth: 16,
        }
    }
}

/// Enumerate segmentations for every attribute subset of size
/// `1..=max_subset`, ranked. Each subset's segmentation is built by
/// successive whole-set cuts (so pieces adapt per segment, like COMPOSE).
pub fn exhaustive_segmentations(
    ex: &Explorer<'_>,
    opts: ExhaustiveOptions,
) -> CoreResult<Vec<Ranked>> {
    let attrs: Vec<String> = ex.attributes().iter().map(|s| s.to_string()).collect();
    if attrs.is_empty() {
        return Err(CoreError::NoCuttableAttribute);
    }
    let n = attrs.len();
    let mut pool = Vec::new();
    // Every non-empty subset, encoded as a bitmask over attrs.
    for mask in 1u64..(1u64 << n.min(63)) {
        let size = mask.count_ones() as usize;
        if size > opts.max_subset {
            continue;
        }
        if 1usize << size > opts.max_depth {
            continue; // would exceed the piece budget even if all cuts work
        }
        let mut seg = Segmentation::singleton(ex.context().clone());
        let mut cut_any = false;
        for (i, attr) in attrs.iter().enumerate() {
            if mask >> i & 1 == 1 {
                if let Some(next) = cut_segmentation(ex, &seg, attr)? {
                    seg = next;
                    cut_any = true;
                }
            }
        }
        if !cut_any {
            continue;
        }
        let sc = score(ex, &seg)?;
        pool.push((seg, sc));
    }
    Ok(rank(pool))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::hbcuts::hb_cuts;
    use charles_sdl::Query;
    use charles_store::{DataType, TableBuilder, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn table(cols: usize, rows: usize, seed: u64) -> charles_store::Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = TableBuilder::new("t");
        let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
        for n in &names {
            b.add_column(n, DataType::Int);
        }
        for _ in 0..rows {
            let row: Vec<Value> = (0..cols)
                .map(|_| Value::Int(rng.gen_range(0..1000)))
                .collect();
            b.push_row(row).unwrap();
        }
        b.finish()
    }

    fn ctx(cols: usize) -> Query {
        let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        Query::wildcard(&refs)
    }

    #[test]
    fn enumerates_all_subsets_within_caps() {
        let t = table(3, 400, 1);
        let ex = Explorer::new(&t, Config::default(), ctx(3)).unwrap();
        let ranked = exhaustive_segmentations(&ex, ExhaustiveOptions::default()).unwrap();
        // 2^3 − 1 = 7 subsets, all within max_subset=4 and depth 16.
        assert_eq!(ranked.len(), 7);
        for r in &ranked {
            assert!(r
                .segmentation
                .check_partition(ex.backend(), ex.context_selection())
                .unwrap()
                .is_partition());
        }
    }

    #[test]
    fn subset_cap_prunes() {
        let t = table(4, 300, 2);
        let ex = Explorer::new(&t, Config::default(), ctx(4)).unwrap();
        let ranked = exhaustive_segmentations(
            &ex,
            ExhaustiveOptions {
                max_subset: 1,
                max_depth: 16,
            },
        )
        .unwrap();
        assert_eq!(ranked.len(), 4); // singletons only
    }

    #[test]
    fn exhaustive_best_entropy_bounds_hbcuts() {
        // On independent data HB-cuts stops early; exhaustive keeps going
        // and must reach at least the same best entropy.
        let t = table(3, 600, 3);
        let ex1 = Explorer::new(&t, Config::default(), ctx(3)).unwrap();
        let hb = hb_cuts(&ex1).unwrap();
        let ex2 = Explorer::new(&t, Config::default(), ctx(3)).unwrap();
        let full = exhaustive_segmentations(
            &ex2,
            ExhaustiveOptions {
                max_subset: 3,
                max_depth: 16,
            },
        )
        .unwrap();
        let hb_best = hb.ranked[0].score.entropy;
        let full_best = full[0].score.entropy;
        assert!(
            full_best >= hb_best - 1e-9,
            "exhaustive {full_best} < hb-cuts {hb_best}"
        );
    }

    #[test]
    fn depth_cap_skips_large_subsets() {
        let t = table(4, 300, 4);
        let ex = Explorer::new(&t, Config::default(), ctx(4)).unwrap();
        let ranked = exhaustive_segmentations(
            &ex,
            ExhaustiveOptions {
                max_subset: 4,
                max_depth: 4, // only subsets of ≤2 attributes fit
            },
        )
        .unwrap();
        for r in &ranked {
            assert!(r.segmentation.attributes().len() <= 2);
        }
    }
}
