//! Faceted-search baseline: single-attribute value partitions.
//!
//! Classic faceted engines (Flamenco & descendants, §6.2) present one
//! facet per attribute; each facet enumerates values (nominal) or fixed
//! value ranges (numeric). This is precisely the segmentation family with
//! breadth 1 — the foil for Charles' breadth principle.

use crate::engine::Explorer;
use crate::error::CoreResult;
use crate::metrics::score;
use crate::ranking::{rank, Ranked};
use charles_sdl::{Constraint, Segmentation};
use charles_store::Value;

/// Build one facet (segmentation) per context attribute.
///
/// Nominal attributes produce one segment per distinct value, most
/// frequent first, capped at `max_depth − 1` values plus a catch-all
/// bucket for the tail. Numeric attributes produce `bins` equal-width
/// ranges (the classic price-slider facet).
pub fn facet_segmentations(ex: &Explorer<'_>, bins: usize) -> CoreResult<Vec<Ranked>> {
    let bins = bins.max(2);
    let mut out = Vec::new();
    for attr in ex.attributes() {
        let seg = match facet_for(ex, attr, bins)? {
            Some(s) => s,
            None => continue,
        };
        let sc = score(ex, &seg)?;
        out.push((seg, sc));
    }
    Ok(rank(out))
}

fn facet_for(ex: &Explorer<'_>, attr: &str, bins: usize) -> CoreResult<Option<Segmentation>> {
    let ty = ex.backend().schema().type_of(attr)?;
    let ctx = ex.context().clone();
    let sel = ex.selection(&ctx)?;
    if ty.is_numeric() {
        let Some((min, max)) = ex.backend().min_max(attr, &sel)? else {
            return Ok(None);
        };
        let (lo, hi) = (
            min.as_f64().expect("numeric"),
            max.as_f64().expect("numeric"),
        );
        if lo == hi {
            return Ok(None);
        }
        // Equal-width bins over [lo, hi]; the classic facet slider does
        // not adapt to density (that is Charles' job).
        let width = (hi - lo) / bins as f64;
        let mut pieces = Vec::with_capacity(bins);
        for i in 0..bins {
            let a = lo + width * i as f64;
            let b = if i == bins - 1 {
                hi
            } else {
                lo + width * (i + 1) as f64
            };
            let c = match Constraint::range_with(Value::Float(a), Value::Float(b), i == bins - 1) {
                Ok(c) => c,
                Err(_) => continue,
            };
            if let Some(p) = ctx.refined(attr, c) {
                pieces.push(p);
            }
        }
        if pieces.len() < 2 {
            return Ok(None);
        }
        Ok(Some(Segmentation::new(pieces)))
    } else {
        let (ft, dict) = ex.backend().frequencies(attr, &sel)?;
        if ft.cardinality() < 2 {
            return Ok(None);
        }
        let ordered = ft.by_frequency();
        let head_len = ordered
            .len()
            .min(ex.config().max_depth.saturating_sub(1).max(1));
        let decode = |code: u32| -> Value {
            let s = &dict[code as usize];
            match ty {
                charles_store::DataType::Bool => Value::Bool(s == "true"),
                _ => Value::str(s.clone()),
            }
        };
        let mut pieces = Vec::new();
        for &(code, _) in &ordered[..head_len] {
            let c = Constraint::set(vec![decode(code)]).expect("non-empty");
            if let Some(p) = ctx.refined(attr, c) {
                pieces.push(p);
            }
        }
        // Tail bucket keeps the partition property.
        if head_len < ordered.len() {
            let tail: Vec<Value> = ordered[head_len..]
                .iter()
                .map(|&(c, _)| decode(c))
                .collect();
            let c = Constraint::set(tail).expect("non-empty");
            if let Some(p) = ctx.refined(attr, c) {
                pieces.push(p);
            }
        }
        if pieces.len() < 2 {
            return Ok(None);
        }
        Ok(Some(Segmentation::new(pieces)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::metrics::breadth;
    use charles_sdl::Query;
    use charles_store::{DataType, TableBuilder};

    fn table() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int)
            .add_column("k", DataType::Str);
        for i in 0..100i64 {
            let k = ["a", "b", "c", "d"][(i % 4) as usize];
            b.push_row(vec![Value::Int(i), Value::str(k)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn one_facet_per_attribute_breadth_one() {
        let t = table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "k"])).unwrap();
        let facets = facet_segmentations(&ex, 4).unwrap();
        assert_eq!(facets.len(), 2);
        for f in &facets {
            assert_eq!(breadth(&f.segmentation), 1, "facets are single-attribute");
            assert!(f
                .segmentation
                .check_partition(ex.backend(), ex.context_selection())
                .unwrap()
                .is_partition());
        }
    }

    #[test]
    fn nominal_facet_enumerates_values() {
        let t = table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["k"])).unwrap();
        let facets = facet_segmentations(&ex, 4).unwrap();
        assert_eq!(facets.len(), 1);
        // 4 categories, all under the cap → 4 singleton segments.
        assert_eq!(facets[0].segmentation.depth(), 4);
    }

    #[test]
    fn nominal_facet_caps_with_tail_bucket() {
        let mut b = TableBuilder::new("t");
        b.add_column("k", DataType::Str);
        for i in 0..40 {
            b.push_row(vec![Value::str(format!("v{i}"))]).unwrap();
        }
        let t = b.finish();
        let cfg = Config::default().with_max_depth(6);
        let ex = Explorer::new(&t, cfg, Query::wildcard(&["k"])).unwrap();
        let facets = facet_segmentations(&ex, 4).unwrap();
        // 5 head values + 1 tail bucket = 6 segments.
        assert_eq!(facets[0].segmentation.depth(), 6);
        assert!(facets[0]
            .segmentation
            .check_partition(ex.backend(), ex.context_selection())
            .unwrap()
            .is_partition());
    }

    #[test]
    fn constant_attribute_yields_no_facet() {
        let mut b = TableBuilder::new("t");
        b.add_column("c", DataType::Int)
            .add_column("x", DataType::Int);
        for i in 0..10 {
            b.push_row(vec![Value::Int(5), Value::Int(i)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["c", "x"])).unwrap();
        let facets = facet_segmentations(&ex, 4).unwrap();
        assert_eq!(facets.len(), 1); // only x
    }

    #[test]
    fn equal_width_bins_are_unbalanced_on_skew() {
        // Exponential-ish skew: equal-width facet bins end up lopsided —
        // the contrast with Charles' equi-depth cuts that E9 quantifies.
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Float);
        for i in 0..1000 {
            let v = (i as f64 / 1000.0f64).powi(4) * 100.0;
            b.push_row(vec![Value::Float(v)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x"])).unwrap();
        let facets = facet_segmentations(&ex, 4).unwrap();
        let s = &facets[0];
        assert!(
            s.score.balance() < 0.9,
            "equal-width bins should be unbalanced here, balance = {}",
            s.score.balance()
        );
    }
}
