//! Baseline segmentation strategies drawn from the paper's related work
//! (§6), used by the quality-comparison experiment (E9).
//!
//! * [`facets`] — faceted search: one facet per attribute, every facet on
//!   a single attribute ("as in most faceted search applications, all the
//!   facets are based on one attribute only" — the opposite of Charles'
//!   breadth maximisation);
//! * [`clique`] — a CLIQUE-style grid/density subspace search (Agrawal et
//!   al., SIGMOD 1998), the paper's closest algorithmic relative;
//! * [`random`] — random recursive splits, the sanity-check floor;
//! * [`exhaustive`] — full product enumeration over attribute subsets,
//!   the quality ceiling that HB-cuts approximates at a fraction of the
//!   cost (the §5.1 "search space explosion" made concrete).

pub mod clique;
pub mod exhaustive;
pub mod facets;
pub mod random;

pub use clique::{clique_clusters, CliqueOptions, DenseCell};
pub use exhaustive::{exhaustive_segmentations, ExhaustiveOptions};
pub use facets::facet_segmentations;
pub use random::{random_segmentations, RandomOptions};
