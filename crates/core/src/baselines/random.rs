//! Random segmentation baseline: the floor any informed method must beat.
//!
//! Performs recursive binary splits like HB-cuts, but picks the piece, the
//! attribute *and the split point* uniformly at random — no medians, no
//! dependence detection, no ranking signal.

use crate::engine::Explorer;
use crate::error::CoreResult;
use crate::metrics::score;
use crate::ranking::{rank, Ranked};
use charles_sdl::{Constraint, Query, Segmentation};
use charles_store::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for random segmentation generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomOptions {
    /// Number of segmentations to generate.
    pub count: usize,
    /// Pieces per segmentation.
    pub target_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomOptions {
    fn default() -> RandomOptions {
        RandomOptions {
            count: 8,
            target_depth: 8,
            seed: 0xace,
        }
    }
}

/// Generate random segmentations (each still a true partition).
pub fn random_segmentations(ex: &Explorer<'_>, opts: RandomOptions) -> CoreResult<Vec<Ranked>> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut pool = Vec::new();
    for _ in 0..opts.count.max(1) {
        let seg = one_random(ex, opts.target_depth.max(2), &mut rng)?;
        let sc = score(ex, &seg)?;
        pool.push((seg, sc));
    }
    Ok(rank(pool))
}

fn one_random(
    ex: &Explorer<'_>,
    target_depth: usize,
    rng: &mut StdRng,
) -> CoreResult<Segmentation> {
    let attrs: Vec<String> = ex.attributes().iter().map(|s| s.to_string()).collect();
    let mut pieces: Vec<Query> = vec![ex.context().clone()];
    let mut stall = 0usize;
    while pieces.len() < target_depth && stall < 16 {
        let pi = rng.gen_range(0..pieces.len());
        let attr = &attrs[rng.gen_range(0..attrs.len())];
        match random_split(ex, &pieces[pi], attr, rng)? {
            Some((l, r)) => {
                pieces.swap_remove(pi);
                pieces.push(l);
                pieces.push(r);
                stall = 0;
            }
            None => stall += 1,
        }
    }
    Ok(Segmentation::new(pieces))
}

/// Split a piece at a uniformly random point of the attribute's observed
/// range (numeric) or a random subset boundary (nominal).
fn random_split(
    ex: &Explorer<'_>,
    q: &Query,
    attr: &str,
    rng: &mut StdRng,
) -> CoreResult<Option<(Query, Query)>> {
    let sel = ex.selection(q)?;
    if sel.none() {
        return Ok(None);
    }
    let ty = ex.backend().schema().type_of(attr)?;
    if ty.is_numeric() {
        let Some((min, max)) = ex.backend().min_max(attr, &sel)? else {
            return Ok(None);
        };
        let (lo, hi) = (min.as_f64().expect("num"), max.as_f64().expect("num"));
        if lo >= hi {
            return Ok(None);
        }
        let split = lo + rng.gen::<f64>() * (hi - lo);
        // Snap to the value domain: integer columns get integer pivots.
        let (left_c, right_c) = match (&min, &max) {
            (Value::Int(a), Value::Int(b)) => {
                let s = (split.floor() as i64).clamp(*a, *b - 1);
                (
                    Constraint::range(Value::Int(*a), Value::Int(s)),
                    Constraint::range(Value::Int(s + 1), Value::Int(*b)),
                )
            }
            (Value::Date(a), Value::Date(b)) => {
                let s = (split.floor() as i64).clamp(*a, *b - 1);
                (
                    Constraint::range(Value::Date(*a), Value::Date(s)),
                    Constraint::range(Value::Date(s + 1), Value::Date(*b)),
                )
            }
            _ => {
                let s = Value::Float(split);
                (
                    Constraint::range_with(min.clone(), s.clone(), false),
                    Constraint::range_with(s, max.clone(), true),
                )
            }
        };
        let (Ok(lc), Ok(rc)) = (left_c, right_c) else {
            return Ok(None);
        };
        match (q.refined(attr, lc), q.refined(attr, rc)) {
            (Some(l), Some(r)) => {
                // Random pivots can land outside the data: reject empties.
                if ex.count(&l)? == 0 || ex.count(&r)? == 0 {
                    Ok(None)
                } else {
                    Ok(Some((l, r)))
                }
            }
            _ => Ok(None),
        }
    } else {
        let (ft, dict) = ex.backend().frequencies(attr, &sel)?;
        if ft.cardinality() < 2 {
            return Ok(None);
        }
        let mut values: Vec<Value> = ft
            .entries()
            .iter()
            .map(|&(code, _)| {
                let s = &dict[code as usize];
                match ty {
                    charles_store::DataType::Bool => Value::Bool(s == "true"),
                    _ => Value::str(s.clone()),
                }
            })
            .collect();
        // Random split position in a random shuffle.
        for i in (1..values.len()).rev() {
            values.swap(i, rng.gen_range(0..=i));
        }
        let cut = rng.gen_range(1..values.len());
        let right = values.split_off(cut);
        let (Ok(lc), Ok(rc)) = (Constraint::set(values), Constraint::set(right)) else {
            return Ok(None);
        };
        match (q.refined(attr, lc), q.refined(attr, rc)) {
            (Some(l), Some(r)) => Ok(Some((l, r))),
            _ => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use charles_store::{DataType, TableBuilder};

    fn table() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int)
            .add_column("k", DataType::Str);
        for i in 0..200i64 {
            let k = ["a", "b", "c"][(i % 3) as usize];
            b.push_row(vec![Value::Int(i), Value::str(k)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn random_segmentations_are_partitions() {
        let t = table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "k"])).unwrap();
        let ranked = random_segmentations(&ex, RandomOptions::default()).unwrap();
        assert_eq!(ranked.len(), 8);
        for r in &ranked {
            assert!(r
                .segmentation
                .check_partition(ex.backend(), ex.context_selection())
                .unwrap()
                .is_partition());
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let t = table();
        let ctx = Query::wildcard(&["x", "k"]);
        let run = |seed| {
            let ex = Explorer::new(&t, Config::default(), ctx.clone()).unwrap();
            random_segmentations(
                &ex,
                RandomOptions {
                    seed,
                    ..RandomOptions::default()
                },
            )
            .unwrap()
            .iter()
            .map(|r| r.segmentation.to_string())
            .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn random_balance_is_typically_below_median_cuts() {
        // Statistical sanity check: average random balance over several
        // segmentations must trail the perfectly balanced ln(depth).
        let t = table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "k"])).unwrap();
        let ranked = random_segmentations(
            &ex,
            RandomOptions {
                count: 16,
                target_depth: 8,
                seed: 99,
            },
        )
        .unwrap();
        let mean_balance: f64 =
            ranked.iter().map(|r| r.score.balance()).sum::<f64>() / ranked.len() as f64;
        assert!(mean_balance < 0.995, "random splits suspiciously balanced");
    }

    #[test]
    fn uncuttable_yields_trivial_segmentation() {
        let mut b = TableBuilder::new("t");
        b.add_column("c", DataType::Int);
        for _ in 0..5 {
            b.push_row(vec![Value::Int(1)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["c"])).unwrap();
        let ranked = random_segmentations(
            &ex,
            RandomOptions {
                count: 2,
                ..RandomOptions::default()
            },
        )
        .unwrap();
        for r in &ranked {
            assert_eq!(r.segmentation.depth(), 1);
        }
    }
}
