//! Cross-session advice cache.
//!
//! The serving layer's contexts are cache keys shared across users: N
//! concurrent sessions drilling into the same region of the data should
//! pay for **one** HB-cuts run. [`AdviceCache`] provides that sharing as
//! a sharded map in front of [`Advisor::advise`], keyed by the
//! *canonical* context ([`charles_sdl::Query::cache_key`]) so contexts
//! that differ only in conjunct order, set-literal order or surface
//! whitespace hit the same entry.
//!
//! Two properties matter for serving:
//!
//! * **Single-flight** — concurrent requests for the same key block on
//!   one advisor run instead of racing N identical computations (each
//!   entry is a [`OnceLock`]; the map shard lock is only held for the
//!   entry lookup, never across the advisor run).
//! * **Determinism** — the cache advises on the canonicalized query, so
//!   a cached answer is byte-identical to what a direct
//!   `advisor.advise(context.canonicalized())` call would produce;
//!   sharing never changes payloads, only who computes them.
//!
//! Errors are cached too: the advisor is a deterministic function of
//! (backend, config, context), so a failed context keeps failing and
//! re-running it would only burn backend operations.
//!
//! A cache built with [`AdviceCache::bounded`] additionally enforces a
//! capacity: once a shard is full, inserting a new context evicts its
//! least-recently-used **settled** entry (in-flight computations are
//! never evicted, so single-flight semantics — and the exactness of the
//! `runs` counter per resident key — are preserved). A long-running
//! server therefore no longer grows without bound with the number of
//! distinct contexts ever advised.

use crate::advisor::{Advice, Advisor};
use crate::error::{CoreError, CoreResult};
use charles_sdl::Query;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One cache slot: settled exactly once, then shared by reference.
type Slot = Arc<OnceLock<Result<Arc<Advice>, CoreError>>>;

/// A slot plus the logical timestamp of its last touch (for LRU
/// eviction in bounded caches).
struct Entry {
    slot: Slot,
    last_used: u64,
}

/// Counters describing cache effectiveness. `runs` is exact even under
/// contention (it is incremented inside the single-flight initializer),
/// which is what lets tests assert "identical contexts across sessions
/// produce exactly one advisor run".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdviceCacheStats {
    /// Lookups that found a settled entry.
    pub hits: u64,
    /// Lookups that found no settled entry (the caller either ran the
    /// advisor or blocked on the concurrent run that did — so
    /// `misses ≥ runs`, with equality when there was no contention).
    pub misses: u64,
    /// Advisor executions actually performed.
    pub runs: u64,
    /// Entries evicted to stay within a bounded cache's capacity
    /// (always 0 for unbounded caches). A re-requested evicted context
    /// is recomputed, so `runs` counts it again.
    pub evictions: u64,
}

/// A sharded, single-flight cache of advice keyed by canonical context.
pub struct AdviceCache {
    shards: Vec<Mutex<HashMap<String, Entry>>>,
    /// Per-shard entry bound; `None` = unbounded.
    shard_capacity: Option<usize>,
    /// Logical clock driving LRU recency.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    runs: AtomicU64,
    evictions: AtomicU64,
}

impl AdviceCache {
    /// Unbounded cache with the default shard count (16).
    pub fn new() -> AdviceCache {
        AdviceCache::with_shards(16)
    }

    /// Unbounded cache with an explicit shard count (clamped to ≥ 1).
    /// More shards mean less lock contention on the entry lookup; the
    /// advisor runs themselves never hold a shard lock.
    pub fn with_shards(shards: usize) -> AdviceCache {
        AdviceCache::build(shards, None)
    }

    /// Bounded cache: at most ~`capacity` entries total, evicting the
    /// least-recently-used settled entry of a full shard on insert.
    /// The bound is enforced per shard (`⌈capacity / shards⌉` each), so
    /// a skewed key distribution can evict slightly early; in-flight
    /// entries are never evicted, so a shard whose entries are all
    /// mid-computation may transiently exceed its bound rather than
    /// break single-flight. The shard count is clamped to at most
    /// `capacity` (and both to ≥ 1), so the effective total —
    /// [`AdviceCache::capacity`] — exceeds the request by at most
    /// `shards − 1` rounding slack, never by a multiple of it.
    pub fn bounded(shards: usize, capacity: usize) -> AdviceCache {
        let capacity = capacity.max(1);
        let n = shards.max(1).min(capacity);
        AdviceCache::build(n, Some(capacity.div_ceil(n)))
    }

    fn build(shards: usize, shard_capacity: Option<usize>) -> AdviceCache {
        let n = shards.max(1);
        AdviceCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of settled or in-flight entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("advice cache shard poisoned").len())
            .sum()
    }

    /// True when no context has been advised through the cache yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured total capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shard_capacity.map(|c| c * self.shards.len())
    }

    /// Effectiveness counters so far.
    pub fn stats(&self) -> AdviceCacheStats {
        AdviceCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            runs: self.runs.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Advise on `context` through the cache: admit (statically analyze
    /// and normalize), canonicalize, look up, and either reuse the
    /// settled answer or run `advisor` exactly once for this key
    /// (concurrent callers of the same key block on that run).
    ///
    /// Admission happens *before* keying, so redundant-conjunct
    /// spellings of one context — `(a: [0,100], a: [50,200])` and
    /// `(a: [50,100])` — collapse to a single entry. Admission failures
    /// (ill-typed or provably-empty contexts) are not cached: they cost
    /// zero backend operations to re-derive, and keeping them out keeps
    /// the capacity for answers that were expensive to compute.
    ///
    /// The caller owns the pairing of cache and advisor: one cache must
    /// only ever be used with advisors over the same backend and config,
    /// otherwise keys would conflate answers from different sources.
    pub fn advise_cached(&self, advisor: &Advisor<'_>, context: Query) -> CoreResult<Arc<Advice>> {
        let canonical = advisor.admit(context)?.canonicalized();
        let key = canonical.to_string();
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let slot: Slot = {
            let mut shard = self.shards[self.shard_index(&key)]
                .lock()
                .expect("advice cache shard poisoned");
            if let Some(entry) = shard.get_mut(&key) {
                entry.last_used = now;
                entry.slot.clone()
            } else {
                if let Some(cap) = self.shard_capacity {
                    if shard.len() >= cap {
                        self.evict_lru(&mut shard);
                    }
                }
                let entry = shard.entry(key).or_insert(Entry {
                    slot: Slot::default(),
                    last_used: now,
                });
                entry.slot.clone()
            }
        };
        if slot.get().is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        slot.get_or_init(|| {
            self.runs.fetch_add(1, Ordering::Relaxed);
            advisor.advise(canonical.clone()).map(Arc::new)
        })
        .clone()
    }

    /// Evict the least-recently-used *settled* entry of a full shard.
    /// In-flight entries (unsettled `OnceLock`s with callers blocked on
    /// them) are skipped: removing one would let a later request start a
    /// duplicate run for the same key while the first is still going.
    /// If every entry is in flight, nothing is evicted and the shard
    /// transiently exceeds its bound.
    fn evict_lru(&self, shard: &mut HashMap<String, Entry>) {
        let victim = shard
            .iter()
            .filter(|(_, e)| e.slot.get().is_some())
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone());
        if let Some(k) = victim {
            shard.remove(&k);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn shard_index(&self, key: &str) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }
}

impl Default for AdviceCache {
    fn default() -> AdviceCache {
        AdviceCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_sdl::parse_query;
    use charles_store::{Backend, DataType, TableBuilder, Value};

    fn table() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("kind", DataType::Str)
            .add_column("size", DataType::Int);
        for i in 0..64i64 {
            let kind = if i % 2 == 0 { "even" } else { "odd" };
            b.push_row(vec![Value::str(kind), Value::Int(i)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn equivalent_contexts_share_one_run() {
        let t = table();
        let advisor = Advisor::new(&t);
        let cache = AdviceCache::with_shards(4);
        let schema = Backend::schema(&t);
        let q1 = parse_query("(kind: , size: )", schema).unwrap();
        let q2 = parse_query("(size: ,   kind: )", schema).unwrap();
        let a1 = cache.advise_cached(&advisor, q1).unwrap();
        let a2 = cache.advise_cached(&advisor, q2).unwrap();
        // Same Arc: the second call reused the settled entry.
        assert!(Arc::ptr_eq(&a1, &a2));
        let stats = cache.stats();
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_equals_direct_advise_on_canonical_context() {
        let t = table();
        let advisor = Advisor::new(&t);
        let cache = AdviceCache::new();
        let schema = Backend::schema(&t);
        let q = parse_query("(size: , kind: )", schema).unwrap();
        let cached = cache.advise_cached(&advisor, q.clone()).unwrap();
        let direct = advisor.advise(q.canonicalized()).unwrap();
        assert_eq!(cached.context, direct.context);
        assert_eq!(cached.context_size, direct.context_size);
        assert_eq!(cached.ranked.len(), direct.ranked.len());
        for (c, d) in cached.ranked.iter().zip(&direct.ranked) {
            assert_eq!(c.segmentation, d.segmentation);
            assert_eq!(c.score, d.score);
        }
    }

    #[test]
    fn redundant_conjunct_spellings_share_one_entry() {
        let t = table();
        let advisor = Advisor::new(&t);
        let cache = AdviceCache::with_shards(4);
        let schema = Backend::schema(&t);
        // Three spellings of (size: [10,40], kind: ) — analysis merges
        // the duplicated attribute before the cache keys the context.
        let spellings = [
            "(size: [10,40], kind: )",
            "(size: [0,40], size: [10,99], kind: )",
            "(kind: , size: [10,50], size: [0,40])",
        ];
        let advices: Vec<_> = spellings
            .iter()
            .map(|s| {
                cache
                    .advise_cached(&advisor, parse_query(s, schema).unwrap())
                    .unwrap()
            })
            .collect();
        assert!(Arc::ptr_eq(&advices[0], &advices[1]));
        assert!(Arc::ptr_eq(&advices[0], &advices[2]));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().runs, 1, "one run for all spellings");
    }

    #[test]
    fn admission_failures_are_not_cached() {
        let t = table();
        let advisor = Advisor::new(&t);
        let cache = AdviceCache::new();
        let schema = Backend::schema(&t);
        let unsat = parse_query("(size: [0,10], size: [20,30])", schema).unwrap();
        let e1 = cache.advise_cached(&advisor, unsat.clone()).unwrap_err();
        let e2 = cache.advise_cached(&advisor, unsat).unwrap_err();
        assert_eq!(e1, CoreError::UnsatisfiableContext);
        assert_eq!(e1, e2);
        assert!(cache.is_empty(), "pruned contexts take no cache slot");
        assert_eq!(cache.stats().runs, 0, "and never reach the advisor");
    }

    #[test]
    fn distinct_contexts_get_distinct_entries() {
        let t = table();
        let advisor = Advisor::new(&t);
        let cache = AdviceCache::with_shards(3);
        let schema = Backend::schema(&t);
        let q1 = parse_query("(kind: , size: )", schema).unwrap();
        let q2 = parse_query("(kind: {even}, size: )", schema).unwrap();
        cache.advise_cached(&advisor, q1).unwrap();
        cache.advise_cached(&advisor, q2).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().runs, 2);
    }

    #[test]
    fn errors_are_cached_and_cloned_out() {
        let t = table();
        let advisor = Advisor::new(&t);
        let cache = AdviceCache::new();
        // Selects nothing: EmptyContext, deterministically.
        let q = parse_query("(kind: {neither}, size: )", Backend::schema(&t)).unwrap();
        let e1 = cache.advise_cached(&advisor, q.clone()).unwrap_err();
        let e2 = cache.advise_cached(&advisor, q).unwrap_err();
        assert_eq!(e1, e2);
        assert_eq!(cache.stats().runs, 1, "the failing run must not repeat");
    }

    #[test]
    fn bounded_cache_evicts_lru_and_stays_within_capacity() {
        let t = table();
        let advisor = Advisor::new(&t);
        // One shard so the LRU order is fully observable.
        let cache = AdviceCache::bounded(1, 2);
        assert_eq!(cache.capacity(), Some(2));
        let schema = Backend::schema(&t);
        let q = |s: &str| parse_query(s, schema).unwrap();
        cache.advise_cached(&advisor, q("(kind: )")).unwrap();
        cache.advise_cached(&advisor, q("(size: )")).unwrap();
        // Touch the first key so the second becomes the LRU victim.
        cache.advise_cached(&advisor, q("(kind: )")).unwrap();
        cache
            .advise_cached(&advisor, q("(kind: , size: )"))
            .unwrap();
        assert_eq!(cache.len(), 2, "capacity bound enforced");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        // The touched key survived: re-requesting it is a hit...
        let runs_before = cache.stats().runs;
        cache.advise_cached(&advisor, q("(kind: )")).unwrap();
        assert_eq!(cache.stats().runs, runs_before);
        // ...while the evicted key is recomputed (runs grows again).
        cache.advise_cached(&advisor, q("(size: )")).unwrap();
        assert_eq!(cache.stats().runs, runs_before + 1);
    }

    #[test]
    fn long_running_use_does_not_grow_without_bound() {
        let t = table();
        let advisor = Advisor::new(&t);
        let cache = AdviceCache::bounded(4, 8);
        let schema = Backend::schema(&t);
        // Many distinct contexts — far more than the capacity.
        for lo in 0..40i64 {
            let q = parse_query(&format!("(size: [{lo},{}], kind: )", lo + 3), schema).unwrap();
            cache.advise_cached(&advisor, q).unwrap();
        }
        assert!(
            cache.len() <= 8,
            "bounded cache grew to {} entries",
            cache.len()
        );
        let stats = cache.stats();
        assert!(stats.evictions >= 32, "evictions: {}", stats.evictions);
        assert_eq!(stats.runs, 40, "every distinct context ran once");
    }

    #[test]
    fn small_capacities_are_not_inflated_by_sharding() {
        // Requesting capacity 4 over 16 shards must not admit 16
        // entries: the shard count clamps to the capacity.
        let cache = AdviceCache::bounded(16, 4);
        assert_eq!(cache.capacity(), Some(4));
        assert_eq!(cache.shard_count(), 4);
        let t = table();
        let advisor = Advisor::new(&t);
        let schema = Backend::schema(&t);
        for lo in 0..12i64 {
            let q = parse_query(&format!("(size: [{lo},{}], kind: )", lo + 2), schema).unwrap();
            cache.advise_cached(&advisor, q).unwrap();
        }
        assert!(cache.len() <= 4, "grew to {}", cache.len());
        // Default server shape stays exact: 1024 over 16 shards.
        assert_eq!(AdviceCache::bounded(16, 1024).capacity(), Some(1024));
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let t = table();
        let advisor = Advisor::new(&t);
        let cache = AdviceCache::with_shards(2);
        assert_eq!(cache.capacity(), None);
        let schema = Backend::schema(&t);
        for lo in 0..20i64 {
            let q = parse_query(&format!("(size: [{lo},{}], kind: )", lo + 3), schema).unwrap();
            cache.advise_cached(&advisor, q).unwrap();
        }
        assert_eq!(cache.len(), 20);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn bounded_single_flight_still_runs_once_per_resident_key() {
        let t = table();
        let cache = Arc::new(AdviceCache::bounded(4, 16));
        let threads = 8;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let cache = Arc::clone(&cache);
                let t = &t;
                scope.spawn(move || {
                    let advisor = Advisor::new(t);
                    let q = parse_query("(kind: , size: )", Backend::schema(t)).unwrap();
                    cache.advise_cached(&advisor, q).unwrap()
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn concurrent_identical_contexts_run_once() {
        let t = table();
        let cache = Arc::new(AdviceCache::with_shards(7));
        let threads = 8;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let cache = Arc::clone(&cache);
                let t = &t;
                scope.spawn(move || {
                    let advisor = Advisor::new(t);
                    let q = parse_query("(kind: , size: )", Backend::schema(t)).unwrap();
                    cache.advise_cached(&advisor, q).unwrap()
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(
            stats.runs, 1,
            "single-flight: one run for {threads} callers"
        );
        assert_eq!(stats.hits + stats.misses, threads);
        assert_eq!(cache.len(), 1);
    }
}
