//! Advisor configuration.

use crate::error::{CoreError, CoreResult};

/// How CUT chooses split points on numeric attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MedianStrategy {
    /// Exact median over the full segment extent (the paper's default).
    Exact,
    /// Median of a reservoir sample of the given size (§5.2 "sampling
    /// strategies"; "not all tuples are necessary to give good results").
    /// Deterministic for a fixed seed.
    Sampled {
        /// Reservoir size.
        size: usize,
        /// RNG seed, so experiments are reproducible.
        seed: u64,
    },
}

/// Tuning knobs for segmentation generation.
///
/// The defaults mirror the paper: `max_indep = 0.99` ("a threshold of 0.99
/// gave satisfying results with most data sets"), `max_depth = 12` ("a pie
/// chart with more than a dozen slices is hard to read"), and nominal
/// columns are frequency-ordered up to 20 distinct values ("we choose to
/// sort the values by order of occurrence for columns with low
/// cardinality, and alphabetically otherwise").
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Stop composing once the most dependent pair has `INDEP ≥ max_indep`.
    pub max_indep: f64,
    /// Stop composing once a composition would reach this many queries.
    pub max_depth: usize,
    /// Nominal columns with at most this many distinct values are ordered
    /// by descending frequency for cutting; larger ones alphabetically.
    pub nominal_freq_sort_limit: usize,
    /// Split-point strategy for numeric cuts.
    pub median: MedianStrategy,
    /// Drop provably/actually empty cells when *returning* products as
    /// segmentations (Definition 8 keeps them; they never affect entropy).
    pub prune_empty_products: bool,
    /// Upper bound on the number of segmentations returned to the user
    /// ("a large number of candidates is overwhelming", §5.1).
    pub max_results: usize,
    /// Reuse selections, entropies and INDEP values across iterations —
    /// the §5.1 optimization ("the calculations of SDL products and
    /// entropy can be reused from one iteration to the next"). Disabling
    /// this is the ablation measured by experiment E5.
    pub memoize: bool,
    /// Statically analyze every context at admission: reject ill-typed
    /// queries with structured diagnostics, prune provably-empty
    /// conjunctions before any backend work, and merge redundant
    /// conjuncts so equivalent contexts share one cache entry. Disable
    /// to feed contexts to the advisor verbatim (equivalence testing).
    pub analysis: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_indep: 0.99,
            max_depth: 12,
            nominal_freq_sort_limit: 20,
            median: MedianStrategy::Exact,
            prune_empty_products: true,
            max_results: 64,
            memoize: true,
            analysis: true,
        }
    }
}

impl Config {
    /// Validate the configuration before use.
    pub fn validate(&self) -> CoreResult<()> {
        if !(0.0..=1.0).contains(&self.max_indep) {
            return Err(CoreError::BadConfig(format!(
                "max_indep must lie in [0,1], got {}",
                self.max_indep
            )));
        }
        if self.max_depth < 2 {
            return Err(CoreError::BadConfig(
                "max_depth must be at least 2 (a segmentation needs two pieces)".into(),
            ));
        }
        if let MedianStrategy::Sampled { size, .. } = self.median {
            if size == 0 {
                return Err(CoreError::BadConfig("sample size must be positive".into()));
            }
        }
        if self.max_results == 0 {
            return Err(CoreError::BadConfig("max_results must be positive".into()));
        }
        Ok(())
    }

    /// Builder-style setter for the INDEP stopping threshold.
    pub fn with_max_indep(mut self, v: f64) -> Config {
        self.max_indep = v;
        self
    }

    /// Builder-style setter for the depth bound.
    pub fn with_max_depth(mut self, v: usize) -> Config {
        self.max_depth = v;
        self
    }

    /// Builder-style setter for the median strategy.
    pub fn with_median(mut self, m: MedianStrategy) -> Config {
        self.median = m;
        self
    }

    /// Builder-style setter for the result cap.
    pub fn with_max_results(mut self, v: usize) -> Config {
        self.max_results = v;
        self
    }

    /// Builder-style setter for memoization (E5 ablation switch).
    pub fn with_memoize(mut self, v: bool) -> Config {
        self.memoize = v;
        self
    }

    /// Builder-style setter for static context analysis.
    pub fn with_analysis(mut self, v: bool) -> Config {
        self.analysis = v;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = Config::default();
        assert_eq!(c.max_indep, 0.99);
        assert_eq!(c.max_depth, 12);
        assert_eq!(c.nominal_freq_sort_limit, 20);
        assert_eq!(c.median, MedianStrategy::Exact);
        assert!(c.analysis, "analysis is on by default");
        assert!(!c.with_analysis(false).analysis);
        assert!(Config::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(Config::default().with_max_indep(1.5).validate().is_err());
        assert!(Config::default().with_max_depth(1).validate().is_err());
        assert!(Config::default()
            .with_median(MedianStrategy::Sampled { size: 0, seed: 0 })
            .validate()
            .is_err());
        assert!(Config::default().with_max_results(0).validate().is_err());
    }

    #[test]
    fn builder_chain() {
        let c = Config::default()
            .with_max_depth(8)
            .with_median(MedianStrategy::Sampled { size: 256, seed: 1 });
        assert_eq!(c.max_depth, 8);
        assert!(matches!(
            c.median,
            MedianStrategy::Sampled { size: 256, .. }
        ));
    }
}
