//! The exploration engine: a context plus caches over a backend.
//!
//! An [`Explorer`] pins down everything a Charles run needs: the backend,
//! the configuration, the *context* (the user's SDL query, Figure 1's left
//! panel) and its materialised extent. All primitives, metrics and the
//! HB-cuts algorithm operate through it.
//!
//! The explorer memoizes per-query selections and per-pair INDEP values —
//! the §5.1 optimization ("the calculations of SDL products and entropy
//! can be reused from one iteration to the next"). Memoization can be
//! switched off ([`crate::Config::memoize`]) to measure its effect.

use crate::config::Config;
use crate::error::{CoreError, CoreResult};
use charles_sdl::{eval, Query, Segmentation};
use charles_store::{Backend, Bitmap, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache performance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Selection-cache hits.
    pub sel_hits: u64,
    /// Selection-cache misses (predicate actually evaluated).
    pub sel_misses: u64,
    /// INDEP-cache hits.
    pub indep_hits: u64,
    /// INDEP-cache misses (pairwise counting actually performed).
    pub indep_misses: u64,
}

impl CacheStats {
    /// Total INDEP memo-layer probes: lookups that hit plus pair values
    /// actually computed (each computed value is exactly one probe that
    /// came back empty). This is the counter the `hbcuts_scaling` bench
    /// tracks: the incremental pair maintenance in [`crate::hb_cuts`]
    /// carries known pairs in run-local state, so it probes the shared
    /// memo only for the O(k) frontier pairs per iteration, where the
    /// naive argmin re-probes all O(k²) pairs every iteration.
    pub fn indep_probes(&self) -> u64 {
        self.indep_hits + self.indep_misses
    }
}

#[derive(Default)]
struct Caches {
    selections: HashMap<String, Arc<Bitmap>>,
    /// INDEP memo as a two-level map keyed by the *ordered* fingerprint
    /// pair (`outer ≤ inner`). Two levels instead of a `(String, String)`
    /// key so probes can borrow `&str`s — the hot argmin paths probe
    /// without allocating; Strings are only built when a value is stored.
    indep: HashMap<String, HashMap<String, f64>>,
    stats: CacheStats,
}

/// A pinned exploration context over a backend.
pub struct Explorer<'a> {
    backend: &'a dyn Backend,
    config: Config,
    context: Query,
    context_sel: Arc<Bitmap>,
    caches: Mutex<Caches>,
}

impl<'a> Explorer<'a> {
    /// Create an explorer for a context query.
    ///
    /// The context extent is the query's result set restricted to rows
    /// that are non-null in **every** attribute the context mentions, so
    /// that cuts on any of those attributes partition the context exactly
    /// (see DESIGN.md). Errors if the configuration is invalid or the
    /// context is empty.
    pub fn new(
        backend: &'a dyn Backend,
        config: Config,
        context: Query,
    ) -> CoreResult<Explorer<'a>> {
        config.validate()?;
        let mut sel = eval::selection(&context, backend)?;
        for attr in context.attributes() {
            sel.and_inplace(&backend.not_null(attr)?);
        }
        if sel.none() {
            return Err(CoreError::EmptyContext);
        }
        Ok(Explorer {
            backend,
            config,
            context,
            context_sel: Arc::new(sel),
            caches: Mutex::new(Caches::default()),
        })
    }

    /// The backend under exploration.
    pub fn backend(&self) -> &dyn Backend {
        self.backend
    }

    /// The configuration in force.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The context query (the user's framing of the exploration).
    pub fn context(&self) -> &Query {
        &self.context
    }

    /// The context's extent.
    pub fn context_selection(&self) -> &Bitmap {
        &self.context_sel
    }

    /// `|D|`: number of rows in the context.
    pub fn context_size(&self) -> usize {
        self.context_sel.count_ones()
    }

    /// Attributes available for cutting: those the context mentions
    /// ("we choose to restrict the exploration to the columns mentioned by
    /// the user", §2).
    pub fn attributes(&self) -> Vec<&str> {
        self.context.attributes()
    }

    /// Cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.caches.lock().stats
    }

    /// Materialise (and cache) the selection of a query, intersected with
    /// the context extent.
    pub fn selection(&self, q: &Query) -> CoreResult<Arc<Bitmap>> {
        let key = q.to_string();
        if self.config.memoize {
            let mut caches = self.caches.lock();
            if let Some(bm) = caches.selections.get(&key).map(Arc::clone) {
                caches.stats.sel_hits += 1;
                return Ok(bm);
            }
        }
        let mut sel = eval::selection(q, self.backend)?;
        sel.and_inplace(&self.context_sel);
        let arc = Arc::new(sel);
        let mut caches = self.caches.lock();
        caches.stats.sel_misses += 1;
        if self.config.memoize {
            caches.selections.insert(key, Arc::clone(&arc));
        }
        Ok(arc)
    }

    /// `|R(Q)|` within the context.
    pub fn count(&self, q: &Query) -> CoreResult<usize> {
        Ok(self.selection(q)?.count_ones())
    }

    /// Cover relative to the context (`|R(Q)| / |D|`).
    pub fn cover(&self, q: &Query) -> CoreResult<f64> {
        let n = self.context_size();
        if n == 0 {
            return Ok(0.0);
        }
        Ok(self.count(q)? as f64 / n as f64)
    }

    /// Covers of every segment of a segmentation.
    ///
    /// Each segment's selection evaluates independently, so this fans
    /// out across threads under the `parallel` feature (order-preserving
    /// — the returned vector always matches `seg.queries()` order).
    pub fn covers(&self, seg: &Segmentation) -> CoreResult<Vec<f64>> {
        crate::par::try_map(seg.queries(), |q| self.cover(q))
    }

    /// Split point for a numeric cut, honouring the configured median
    /// strategy.
    pub(crate) fn split_point(&self, attr: &str, sel: &Bitmap) -> CoreResult<Option<Value>> {
        let med = match self.config.median {
            crate::config::MedianStrategy::Exact => self.backend.median(attr, sel)?,
            crate::config::MedianStrategy::Sampled { size, seed } => {
                self.backend.sampled_median(attr, sel, size, seed)?
            }
        };
        Ok(med)
    }

    /// Look up a memoized INDEP value for an (unordered) pair of
    /// segmentation fingerprints. The probe borrows both keys — no
    /// allocation happens on this path, hit or miss.
    pub(crate) fn cached_indep(&self, fp1: &str, fp2: &str) -> Option<f64> {
        if !self.config.memoize {
            return None;
        }
        let (a, b) = ordered(fp1, fp2);
        let mut caches = self.caches.lock();
        let hit = caches.indep.get(a).and_then(|m| m.get(b)).copied();
        if hit.is_some() {
            caches.stats.indep_hits += 1;
        }
        hit
    }

    /// Store an INDEP value for a pair of fingerprints.
    pub(crate) fn store_indep(&self, fp1: &str, fp2: &str, value: f64) {
        let (a, b) = ordered(fp1, fp2);
        let mut caches = self.caches.lock();
        caches.stats.indep_misses += 1;
        if self.config.memoize {
            caches
                .indep
                .entry(a.to_string())
                .or_default()
                .insert(b.to_string(), value);
        }
    }
}

/// Canonical fingerprint of a segmentation: its queries' rendered forms,
/// sorted (segmentations are sets — order must not matter).
pub fn fingerprint(seg: &Segmentation) -> String {
    let mut parts: Vec<String> = seg.queries().iter().map(|q| q.to_string()).collect();
    parts.sort();
    parts.join(" | ")
}

fn ordered<'s>(a: &'s str, b: &'s str) -> (&'s str, &'s str) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_sdl::Constraint;
    use charles_store::{DataType, TableBuilder};

    fn table() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int)
            .add_column("k", DataType::Str);
        for i in 0..20i64 {
            let k = if i % 2 == 0 { "even" } else { "odd" };
            b.push_row(vec![Value::Int(i), Value::str(k)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn context_pins_extent() {
        let t = table();
        let ctx = Query::wildcard(&["x", "k"])
            .refined(
                "x",
                Constraint::range(Value::Int(0), Value::Int(9)).unwrap(),
            )
            .unwrap();
        let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
        assert_eq!(ex.context_size(), 10);
        assert_eq!(ex.attributes(), vec!["x", "k"]);
    }

    #[test]
    fn empty_context_rejected() {
        let t = table();
        let ctx = Query::wildcard(&["x"])
            .refined(
                "x",
                Constraint::range(Value::Int(100), Value::Int(200)).unwrap(),
            )
            .unwrap();
        assert!(matches!(
            Explorer::new(&t, Config::default(), ctx),
            Err(CoreError::EmptyContext)
        ));
    }

    #[test]
    fn context_excludes_rows_null_in_context_attrs() {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int)
            .add_column("k", DataType::Str);
        b.push_row(vec![Value::Int(1), Value::str("a")]).unwrap();
        b.push_row_opt(vec![None, Some(Value::str("b"))]).unwrap();
        b.push_row_opt(vec![Some(Value::Int(3)), None]).unwrap();
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "k"])).unwrap();
        assert_eq!(ex.context_size(), 1);
        // A context mentioning only x keeps the row with null k.
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x"])).unwrap();
        assert_eq!(ex.context_size(), 2);
    }

    #[test]
    fn selections_are_cached() {
        let t = table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "k"])).unwrap();
        let q = Query::wildcard(&["x", "k"])
            .refined("k", Constraint::set(vec![Value::str("even")]).unwrap())
            .unwrap();
        let _ = ex.selection(&q).unwrap();
        let _ = ex.selection(&q).unwrap();
        let stats = ex.cache_stats();
        assert_eq!(stats.sel_misses, 1);
        assert_eq!(stats.sel_hits, 1);
    }

    #[test]
    fn memoize_off_always_misses() {
        let t = table();
        let ex = Explorer::new(
            &t,
            Config::default().with_memoize(false),
            Query::wildcard(&["x", "k"]),
        )
        .unwrap();
        let q = Query::wildcard(&["x", "k"]);
        let _ = ex.selection(&q).unwrap();
        let _ = ex.selection(&q).unwrap();
        let stats = ex.cache_stats();
        assert_eq!(stats.sel_hits, 0);
        assert_eq!(stats.sel_misses, 2);
    }

    #[test]
    fn cover_is_relative_to_context() {
        let t = table();
        let ctx = Query::wildcard(&["x", "k"])
            .refined(
                "x",
                Constraint::range(Value::Int(0), Value::Int(9)).unwrap(),
            )
            .unwrap();
        let ex = Explorer::new(&t, Config::default(), ctx.clone()).unwrap();
        let evens = ctx
            .refined("k", Constraint::set(vec![Value::str("even")]).unwrap())
            .unwrap();
        assert_eq!(ex.cover(&evens).unwrap(), 0.5);
        // Whole context covers 1.
        assert_eq!(ex.cover(&ctx).unwrap(), 1.0);
    }

    #[test]
    fn selection_clipped_to_context() {
        let t = table();
        let ctx = Query::wildcard(&["x", "k"])
            .refined(
                "x",
                Constraint::range(Value::Int(0), Value::Int(9)).unwrap(),
            )
            .unwrap();
        let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
        // A query that nominally matches everything is clipped to |D| = 10.
        assert_eq!(ex.count(&Query::wildcard(&["x", "k"])).unwrap(), 10);
    }

    #[test]
    fn fingerprint_is_order_insensitive() {
        let q1 = Query::wildcard(&["a"]);
        let q2 = Query::wildcard(&["b"]);
        let s1 = Segmentation::new(vec![q1.clone(), q2.clone()]);
        let s2 = Segmentation::new(vec![q2, q1]);
        assert_eq!(fingerprint(&s1), fingerprint(&s2));
    }

    #[test]
    fn indep_cache_round_trip() {
        let t = table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "k"])).unwrap();
        assert_eq!(ex.cached_indep("a", "b"), None);
        ex.store_indep("b", "a", 0.75);
        assert_eq!(ex.cached_indep("a", "b"), Some(0.75));
        assert_eq!(ex.cached_indep("b", "a"), Some(0.75));
    }
}
