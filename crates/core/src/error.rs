//! Error type for the advisor core.

use charles_sdl::{Diagnostic, SdlError};
use charles_store::StoreError;
use std::fmt;

/// Errors produced while generating or evaluating segmentations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The underlying store failed.
    Store(StoreError),
    /// The SDL layer failed.
    Sdl(SdlError),
    /// The requested context selects no rows — nothing to segment.
    EmptyContext,
    /// The context mentions no attribute that can be cut.
    NoCuttableAttribute,
    /// Invalid configuration (e.g. `max_depth < 2`).
    BadConfig(String),
    /// A session operation was attempted before `start` succeeded.
    SessionNotStarted,
    /// A drill referenced an answer/segment pair the current advice does
    /// not contain. Stable and inspectable so front-ends (e.g. the HTTP
    /// server) can translate it to a client error rather than a crash.
    NoSuchSegment {
        /// The ranked-answer index that was requested.
        rank_idx: usize,
        /// The segment index within that answer.
        seg_idx: usize,
    },
    /// `back` was called at the root of the breadcrumb trail.
    AtRoot,
    /// Static analysis rejected the context as ill-typed for the
    /// backend's schema. Carries the error-class diagnostics so callers
    /// (e.g. the HTTP server) can report every finding, not just the
    /// first.
    InvalidContext(Vec<Diagnostic>),
    /// Static analysis proved the context selects no rows of *any*
    /// dataset (contradictory conjunction) — the advisor answers
    /// without touching the backend.
    UnsatisfiableContext,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Store(e) => write!(f, "store error: {e}"),
            CoreError::Sdl(e) => write!(f, "SDL error: {e}"),
            CoreError::EmptyContext => write!(f, "context query selects no rows"),
            CoreError::NoCuttableAttribute => {
                write!(f, "no attribute of the context can be cut (all constant?)")
            }
            CoreError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            CoreError::SessionNotStarted => write!(f, "session not started"),
            CoreError::NoSuchSegment { rank_idx, seg_idx } => write!(
                f,
                "no segment ({rank_idx}, {seg_idx}) in the current advice"
            ),
            CoreError::AtRoot => write!(f, "already at the root of the session"),
            CoreError::InvalidContext(diags) => {
                write!(f, "context failed static analysis")?;
                for d in diags {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
            CoreError::UnsatisfiableContext => {
                write!(
                    f,
                    "context is provably empty: its conjuncts contradict each other"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Store(e) => Some(e),
            CoreError::Sdl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<SdlError> for CoreError {
    fn from(e: SdlError) -> Self {
        match e {
            SdlError::Store(inner) => CoreError::Store(inner),
            other => CoreError::Sdl(other),
        }
    }
}

/// Result alias for core operations.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = StoreError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains('x'));
        let e: CoreError = SdlError::Malformed("bad".into()).into();
        assert!(matches!(e, CoreError::Sdl(_)));
        // Store errors nested in SDL errors unwrap to Store.
        let e: CoreError = SdlError::Store(StoreError::Empty("m".into())).into();
        assert!(matches!(e, CoreError::Store(_)));
    }

    #[test]
    fn display_variants() {
        assert!(CoreError::EmptyContext.to_string().contains("no rows"));
        assert!(CoreError::NoCuttableAttribute.to_string().contains("cut"));
        assert!(CoreError::BadConfig("x".into()).to_string().contains('x'));
        assert!(CoreError::SessionNotStarted.to_string().contains("started"));
        assert!(CoreError::NoSuchSegment {
            rank_idx: 3,
            seg_idx: 1
        }
        .to_string()
        .contains("(3, 1)"));
        assert!(CoreError::AtRoot.to_string().contains("root"));
        assert!(CoreError::UnsatisfiableContext
            .to_string()
            .contains("provably empty"));
    }

    #[test]
    fn invalid_context_lists_every_diagnostic() {
        use charles_sdl::DiagnosticCode;
        let e = CoreError::InvalidContext(vec![
            Diagnostic::new(DiagnosticCode::UnknownAttribute, "nope", "no such column"),
            Diagnostic::new(DiagnosticCode::EmptySet, "kind", "set has no values"),
        ]);
        let s = e.to_string();
        assert!(s.contains("unknown_attribute"));
        assert!(s.contains("empty_set"));
    }
}
