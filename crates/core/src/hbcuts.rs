//! HB-cuts — Hierarchical Binary cuts (paper §4, Figure 4).
//!
//! The heuristic: seed one binary segmentation per context attribute, then
//! repeatedly find the *most dependent* pair of candidates (minimum
//! INDEP), replace the pair by their composition, and stop when the best
//! pair is practically independent (`ind ≥ maxIndep`) or the composition
//! grows past the legibility bound (`dep ≥ maxDepth`). Every segmentation
//! ever created is returned, sorted by entropy.
//!
//! ```text
//! 1  function HB-CUTS(query, maxIndep, maxDepth)
//! 2      cand ← {}
//! 3      for i ← 0, nbAttributes(query) do
//! 4          cand ← cand ∪ {CUT_attri(query)}
//! 5      end for
//! 10     while true do
//! 11         {S1*, S2*} ← argmin_{S1,S2 ∈ cand} INDEP(S1, S2)
//! 12         newSeg ← COMPOSE(S1*, S2*)
//! 15         if ind ≥ maxIndep ∥ dep ≥ maxDepth then break
//! 18         cand ← cand ∪ {newSeg} − {S1*, S2*}
//! 20         output ← output ∪ {S1*, S2*}
//! 23     output ← output ∪ cand
//! 25     return sort(output)
//! ```
//!
//! # Incremental pair maintenance
//!
//! Line 11 is the hot loop of the whole system. [`hb_cuts`] maintains a
//! per-run pair state (`PairState`): every candidate is interned to an
//! integer id
//! when it is created (seeded or composed) and its fingerprint is
//! rendered exactly once; pair INDEP values live in a triangular matrix
//! indexed by id pairs. After composing `(i, j)` only the O(k) pairs
//! touching the new candidate are unknown — they are evaluated in one
//! parallel fan-out — while every other pair's value is carried over as
//! a plain array read: no re-render, no lock, no allocation. The argmin
//! itself scans the matrix in the exact `(i, j)` enumeration order of
//! the naive nested loop, so first-wins tie-breaks — and hence the
//! chosen pair, the trace and the advice — are bitwise identical to
//! [`hb_cuts_naive`], the O(k²)-probes reference implementation kept for
//! the equivalence suite and the `hbcuts_scaling` bench.
//!
//! A best pair whose composition fails (no attribute cuttable) no longer
//! aborts the run: it is recorded in [`Trace::skipped_pairs`], banned for
//! as long as both candidates live, and the loop falls back to the
//! next-most-dependent pair — matching the paper's greedy intent.
//! [`StopReason::ComposeFailed`] now only fires when *every* remaining
//! pair is uncomposable.
//!
//! The [`Trace`] records every seed and composition step so the execution
//! tree of Figure 3 can be checked and displayed.

use crate::engine::{fingerprint, Explorer};
use crate::error::{CoreError, CoreResult};
use crate::metrics::{score, Score};
use crate::primitives::{compose, cut_segmentation};
use crate::ranking::{rank, Ranked};
use charles_sdl::Segmentation;
use std::collections::HashSet;

/// Why the composition loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Best pair had `INDEP ≥ max_indep` — remaining candidates are
    /// practically independent.
    IndependenceThreshold,
    /// The composition would exceed `max_depth` queries.
    DepthLimit,
    /// Fewer than two candidates remain — no pair to compose.
    ExhaustedCandidates,
    /// No remaining pair could be composed (every pair was skipped as
    /// uncomposable — see [`Trace::skipped_pairs`]).
    ComposeFailed,
}

/// One composition step considered by the loop.
#[derive(Debug, Clone)]
pub struct ComposeStep {
    /// Attributes of the first operand.
    pub left_attrs: Vec<String>,
    /// Attributes of the second operand.
    pub right_attrs: Vec<String>,
    /// INDEP of the chosen pair.
    pub indep: f64,
    /// Depth of the composition result.
    pub depth: usize,
    /// Whether the step was accepted (false = it triggered the stop).
    pub accepted: bool,
}

/// A most-dependent pair whose composition failed (no attribute of the
/// right operand was cuttable in any piece of the left). The loop skips
/// it and falls back to the next-most-dependent pair.
#[derive(Debug, Clone)]
pub struct SkippedPair {
    /// Attributes of the first operand.
    pub left_attrs: Vec<String>,
    /// Attributes of the second operand.
    pub right_attrs: Vec<String>,
    /// INDEP of the skipped pair.
    pub indep: f64,
}

/// Record of an HB-cuts execution (the Figure 3 tree).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Attributes successfully seeded (line 4 of Figure 4).
    pub seeds: Vec<String>,
    /// Attributes that could not be cut (constant in the context).
    pub skipped: Vec<String>,
    /// Composition steps in order.
    pub steps: Vec<ComposeStep>,
    /// Best pairs that could not be composed and were skipped in favour
    /// of the next-most-dependent pair, in the order encountered.
    pub skipped_pairs: Vec<SkippedPair>,
    /// Why the loop stopped.
    pub stop: Option<StopReason>,
}

/// The advisor's answer: ranked segmentations plus the execution trace.
#[derive(Debug, Clone)]
pub struct HbCutsOutput {
    /// All generated segmentations with scores, ranked best-first.
    pub ranked: Vec<Ranked>,
    /// Execution record.
    pub trace: Trace,
}

impl HbCutsOutput {
    /// The segmentations alone, best-first.
    pub fn segmentations(&self) -> impl Iterator<Item = &Segmentation> {
        self.ranked.iter().map(|r| &r.segmentation)
    }

    /// Best segmentation, if any.
    pub fn best(&self) -> Option<&Ranked> {
        self.ranked.first()
    }
}

/// Per-run incremental pair state over interned candidate ids.
///
/// Ids are assigned once per candidate lifetime (never reused), so pair
/// values and the uncomposable ban set survive the `swap_remove`
/// shuffles of the live-candidate vector untouched.
#[derive(Default)]
pub(crate) struct PairState {
    /// Fingerprint per interned id, rendered exactly once at creation.
    fps: Vec<String>,
    /// Lower-triangular INDEP matrix by id pair; NaN = not yet computed
    /// (INDEP itself is always finite — a quotient of finite entropies,
    /// clamped to ≤ 1).
    tri: Vec<f64>,
    /// Id pairs proven uncomposable this run.
    uncomposable: HashSet<(u32, u32)>,
}

fn uid_key(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

impl PairState {
    /// Intern a candidate: assign the next id and render its fingerprint
    /// (the only time this segmentation is ever rendered by the loop).
    pub(crate) fn intern(&mut self, seg: &Segmentation) -> u32 {
        let id = self.fps.len() as u32;
        self.fps.push(fingerprint(seg));
        // Grow the triangle by one row: pairs (0..id, id).
        self.tri.extend(std::iter::repeat_n(f64::NAN, id as usize));
        id
    }

    fn idx(a: u32, b: u32) -> usize {
        let (lo, hi) = uid_key(a, b);
        hi as usize * (hi as usize - 1) / 2 + lo as usize
    }

    /// Pair value, NaN when not yet computed.
    pub(crate) fn get(&self, a: u32, b: u32) -> f64 {
        self.tri[Self::idx(a, b)]
    }

    pub(crate) fn set(&mut self, a: u32, b: u32, v: f64) {
        let i = Self::idx(a, b);
        self.tri[i] = v;
    }

    /// The interned fingerprint of `id`.
    pub(crate) fn fp(&self, id: u32) -> &str {
        &self.fps[id as usize]
    }

    /// Mark an id pair as uncomposable for the rest of the run.
    pub(crate) fn ban(&mut self, a: u32, b: u32) {
        self.uncomposable.insert(uid_key(a, b));
    }

    /// The `(i, j)` position pairs to (re)compute this iteration.
    ///
    /// With memoization on, that is the pairs whose value is still
    /// unknown — all of them on the first iteration, afterwards exactly
    /// the O(k) pairs touching the newly composed candidate. With
    /// memoization off (the §5.1 ablation: *nothing* is reused from one
    /// iteration to the next) it is every pair, every iteration —
    /// matching the naive loop bit-for-bit, because `E(S1 × S2)` is
    /// summed in operand order and a recomputation after a
    /// `swap_remove` reshuffle can visit the operands swapped, which
    /// moves the last ulp. Carrying values across iterations is reuse,
    /// so the ablation must not do it.
    pub(crate) fn frontier(&self, ids: &[u32], memoize: bool) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                if !memoize || self.get(ids[i], ids[j]).is_nan() {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Skip-aware argmin over the stored pair values, in the exact naive
    /// `(i, j)` enumeration order (first-wins ties), excluding banned
    /// pairs. Every live pair's value must already be stored.
    pub(crate) fn best_pair(&self, ids: &[u32]) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                if self.uncomposable.contains(&uid_key(ids[i], ids[j])) {
                    continue;
                }
                let v = self.get(ids[i], ids[j]);
                if best.map(|(_, _, b)| v < b).unwrap_or(true) {
                    best = Some((i, j, v));
                }
            }
        }
        best
    }
}

fn attrs_of(seg: &Segmentation) -> Vec<String> {
    seg.attributes().iter().map(|s| s.to_string()).collect()
}

/// Lines 2–5: seed with one binary cut per attribute. The per-attribute
/// cuts are independent (median scan + two selections each), so they fan
/// out across threads; the zip keeps attribute order.
fn seed_candidates(ex: &Explorer<'_>, trace: &mut Trace) -> CoreResult<Vec<Segmentation>> {
    let base = Segmentation::singleton(ex.context().clone());
    let attrs = ex.attributes();
    let seed_cuts = crate::par::try_map(&attrs, |attr| cut_segmentation(ex, &base, attr))?;
    let mut cand: Vec<Segmentation> = Vec::new();
    for (attr, cut) in attrs.iter().zip(seed_cuts) {
        match cut {
            Some(seg) => {
                trace.seeds.push(attr.to_string());
                cand.push(seg);
            }
            None => trace.skipped.push(attr.to_string()),
        }
    }
    if cand.is_empty() {
        return Err(CoreError::NoCuttableAttribute);
    }
    Ok(cand)
}

/// Outcome of one selection round (argmin + compose with fallback).
enum RoundOutcome {
    /// Composition accepted at live positions `(i, j)`.
    Accept {
        i: usize,
        j: usize,
        seg: Segmentation,
    },
    /// A stop criterion fired and was recorded in the trace.
    Stop,
}

/// Lines 11–20 of one iteration: pick the most dependent pair, compose
/// it, apply the stopping criteria. An uncomposable best pair is banned,
/// recorded in the trace, and the argmin falls back to the
/// next-most-dependent pair; only when no composable pair remains does
/// the loop stop with [`StopReason::ComposeFailed`]. Shared verbatim by
/// the incremental and naive paths so their selection semantics cannot
/// drift apart.
fn compose_round(
    ex: &Explorer<'_>,
    cand: &[Segmentation],
    ids: &[u32],
    state: &mut PairState,
    trace: &mut Trace,
) -> CoreResult<RoundOutcome> {
    let max_indep = ex.config().max_indep;
    let max_depth = ex.config().max_depth;
    loop {
        // Line 11: argmin over unordered candidate pairs, first-wins
        // tie-breaks over the same (i, j) enumeration as the naive
        // nested loop.
        let Some((i, j, ind)) = state.best_pair(ids) else {
            trace.stop = Some(StopReason::ComposeFailed);
            return Ok(RoundOutcome::Stop);
        };

        // Line 12: compose; an uncomposable pair is skipped (greedy
        // fallback) rather than aborting the run — unless even this
        // most-dependent pair is past the independence threshold, in
        // which case every remaining pair is too and line 15's stop
        // fires directly (no composition exists to record as a step).
        // Without this check the fallback would ban its way through
        // past-threshold pairs, burning compose work and misreporting
        // ComposeFailed.
        let Some(new_seg) = compose(ex, &cand[i], &cand[j])? else {
            if ind >= max_indep {
                trace.stop = Some(StopReason::IndependenceThreshold);
                return Ok(RoundOutcome::Stop);
            }
            state.ban(ids[i], ids[j]);
            trace.skipped_pairs.push(SkippedPair {
                left_attrs: attrs_of(&cand[i]),
                right_attrs: attrs_of(&cand[j]),
                indep: ind,
            });
            continue;
        };
        let dep = new_seg.depth();
        let step = ComposeStep {
            left_attrs: attrs_of(&cand[i]),
            right_attrs: attrs_of(&cand[j]),
            indep: ind,
            depth: dep,
            accepted: false,
        };

        // Lines 15–16: stopping criteria.
        if ind >= max_indep {
            trace.steps.push(step);
            trace.stop = Some(StopReason::IndependenceThreshold);
            return Ok(RoundOutcome::Stop);
        }
        if dep >= max_depth {
            trace.steps.push(step);
            trace.stop = Some(StopReason::DepthLimit);
            return Ok(RoundOutcome::Stop);
        }

        trace.steps.push(ComposeStep {
            accepted: true,
            ..step
        });
        return Ok(RoundOutcome::Accept { i, j, seg: new_seg });
    }
}

/// Score, rank and truncate the collected output (lines 23–25).
fn finish(
    ex: &Explorer<'_>,
    mut output: Vec<Segmentation>,
    cand: Vec<Segmentation>,
    trace: Trace,
) -> CoreResult<HbCutsOutput> {
    // Line 23: everything still in cand is also returned.
    output.extend(cand);

    // Line 25: sort by entropy (descending), with deterministic
    // tie-breaks. Scoring each segmentation is independent work; order
    // is preserved.
    let scores = crate::par::try_map(&output, |seg| score(ex, seg))?;
    let scored: Vec<(Segmentation, Score)> = output.into_iter().zip(scores).collect();
    let mut ranked = rank(scored);
    ranked.truncate(ex.config().max_results);
    Ok(HbCutsOutput { ranked, trace })
}

/// Run HB-cuts over an explorer's context (Figure 4, lines 1–26).
///
/// This is the incremental-argmin implementation (see the module docs):
/// per iteration it evaluates INDEP only for the O(k) frontier pairs
/// touching the newly composed candidate and carries every other pair
/// value in run-local state. Output — ranked answers and trace,
/// including first-wins tie-breaks — is bitwise identical to
/// [`hb_cuts_naive`].
pub fn hb_cuts(ex: &Explorer<'_>) -> CoreResult<HbCutsOutput> {
    let mut trace = Trace::default();
    let mut cand = seed_candidates(ex, &mut trace)?;

    let mut state = PairState::default();
    let mut ids: Vec<u32> = cand.iter().map(|seg| state.intern(seg)).collect();

    let mut output: Vec<Segmentation> = Vec::new();

    // Lines 10–22: compose the most dependent pair until a stop fires.
    loop {
        if cand.len() < 2 {
            trace.stop = Some(StopReason::ExhaustedCandidates);
            break;
        }
        // Evaluate the unknown pairs (the incremental frontier) in one
        // parallel fan-out; results land in the triangular matrix. The
        // fan-out still consults the explorer's shared memo first, so a
        // second run over the same explorer reuses its values.
        let frontier = state.frontier(&ids, ex.config().memoize);
        if !frontier.is_empty() {
            let fps: Vec<&str> = ids.iter().map(|&id| state.fp(id)).collect();
            let fresh = crate::indep::indep_frontier(ex, &cand, &fps, &frontier)?;
            for (&(i, j), v) in frontier.iter().zip(fresh) {
                state.set(ids[i], ids[j], v);
            }
        }

        match compose_round(ex, &cand, &ids, &mut state, &mut trace)? {
            RoundOutcome::Stop => break,
            RoundOutcome::Accept { i, j, seg } => {
                // Lines 18–20: replace the pair by the composition.
                // Remove j first (j > i) so indices stay valid.
                let s2 = cand.swap_remove(j);
                ids.swap_remove(j);
                let s1 = cand.swap_remove(i);
                ids.swap_remove(i);
                output.push(s1);
                output.push(s2);
                ids.push(state.intern(&seg));
                cand.push(seg);
            }
        }
    }

    finish(ex, output, cand, trace)
}

/// The naive O(k²)-probes reference implementation of HB-cuts.
///
/// Per iteration it re-renders every candidate fingerprint and probes
/// the explorer's shared memo for **all** unordered pairs, exactly as
/// the pre-incremental advisor did. Selection semantics (argmin order,
/// tie-breaks, compose fallback, stop criteria) are shared code with
/// [`hb_cuts`], so the two produce bitwise-identical output — the
/// contract pinned by `tests/hbcuts_equivalence.rs` and measured (in
/// memo probes) by the `hbcuts_scaling` bench.
pub fn hb_cuts_naive(ex: &Explorer<'_>) -> CoreResult<HbCutsOutput> {
    let mut trace = Trace::default();
    let mut cand = seed_candidates(ex, &mut trace)?;

    // The ban set still needs stable identities across swap_remove
    // shuffles, so candidates are interned here too — but fingerprints
    // are deliberately re-rendered every iteration below.
    let mut state = PairState::default();
    let mut ids: Vec<u32> = cand.iter().map(|seg| state.intern(seg)).collect();

    let mut output: Vec<Segmentation> = Vec::new();

    loop {
        if cand.len() < 2 {
            trace.stop = Some(StopReason::ExhaustedCandidates);
            break;
        }
        // Full O(k²) enumeration: probe the shared memo for every pair,
        // fan the misses out in parallel, zip hits and fresh values back
        // into enumeration order.
        let k = cand.len();
        let pairs: Vec<(usize, usize)> = (0..k)
            .flat_map(|i| ((i + 1)..k).map(move |j| (i, j)))
            .collect();
        let fps_owned: Vec<String> = cand.iter().map(fingerprint).collect();
        let fps: Vec<&str> = fps_owned.iter().map(String::as_str).collect();
        let cached: Vec<Option<f64>> = pairs
            .iter()
            .map(|&(i, j)| ex.cached_indep(fps[i], fps[j]))
            .collect();
        let misses: Vec<(usize, usize)> = pairs
            .iter()
            .zip(&cached)
            .filter(|(_, hit)| hit.is_none())
            .map(|(&p, _)| p)
            .collect();
        let fresh = crate::indep::indep_frontier(ex, &cand, &fps, &misses)?;
        let mut fresh_iter = fresh.into_iter();
        for (&(i, j), hit) in pairs.iter().zip(&cached) {
            let v = hit.unwrap_or_else(|| fresh_iter.next().expect("one value per miss"));
            state.set(ids[i], ids[j], v);
        }

        match compose_round(ex, &cand, &ids, &mut state, &mut trace)? {
            RoundOutcome::Stop => break,
            RoundOutcome::Accept { i, j, seg } => {
                let s2 = cand.swap_remove(j);
                ids.swap_remove(j);
                let s1 = cand.swap_remove(i);
                ids.swap_remove(i);
                output.push(s1);
                output.push(s2);
                ids.push(state.intern(&seg));
                cand.push(seg);
            }
        }
    }

    finish(ex, output, cand, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use charles_sdl::Query;
    use charles_store::{DataType, TableBuilder, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Five attributes with the Figure 3 dependency structure:
    /// att2 ↔ att3 strongly dependent, att4 ↔ att5 strongly dependent,
    /// att1 dependent on (att2, att3); everything else independent.
    fn figure3_table(n: usize) -> charles_store::Table {
        let mut rng = StdRng::seed_from_u64(42);
        let mut b = TableBuilder::new("t");
        for name in ["att1", "att2", "att3", "att4", "att5"] {
            b.add_column(name, DataType::Int);
        }
        for _ in 0..n {
            let a2: i64 = rng.gen_range(0..100);
            let a3 = a2 + rng.gen_range(-3i64..=3); // tight function of a2
            let a1 = a2 / 2 + rng.gen_range(-2i64..=2); // depends on a2 (hence a3)
            let a4: i64 = rng.gen_range(0..100);
            let a5 = a4 + rng.gen_range(-3i64..=3); // tight function of a4
            b.push_row(vec![
                Value::Int(a1),
                Value::Int(a2),
                Value::Int(a3),
                Value::Int(a4),
                Value::Int(a5),
            ])
            .unwrap();
        }
        b.finish()
    }

    /// Table where the most dependent pair is uncomposable: `a` and `b`
    /// are identical binary columns (INDEP exactly ½, but each half is
    /// constant in the other attribute so COMPOSE finds nothing to cut),
    /// while `c` tracks `a` loosely and composes fine.
    fn uncomposable_best_pair_table() -> charles_store::Table {
        let mut rng = StdRng::seed_from_u64(9);
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int)
            .add_column("b", DataType::Int)
            .add_column("c", DataType::Int);
        for _ in 0..2000 {
            let a: i64 = rng.gen_range(0..2);
            let c = a * 50 + rng.gen_range(0i64..40);
            b.push_row(vec![Value::Int(a), Value::Int(a), Value::Int(c)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn figure3_execution_produces_eight_segmentations() {
        let t = figure3_table(2000);
        let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
        // Depth 12 lets {att1,att2,att3} (8 pieces) form but not 16-piece sets.
        let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
        let out = hb_cuts(&ex).unwrap();
        // Figure 3: 5 seeds + 3 accepted compositions = 8 segmentations.
        assert_eq!(out.trace.seeds.len(), 5);
        let accepted = out.trace.steps.iter().filter(|s| s.accepted).count();
        assert_eq!(accepted, 3, "trace: {:?}", out.trace.steps);
        assert_eq!(out.ranked.len(), 8);
    }

    #[test]
    fn figure3_composition_tree_shape() {
        let t = figure3_table(2000);
        let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
        let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
        let out = hb_cuts(&ex).unwrap();
        let accepted: Vec<&ComposeStep> = out.trace.steps.iter().filter(|s| s.accepted).collect();
        // The two tight pairs must be composed (in some order) before the
        // looser att1–{att2,att3} link.
        let pairs: Vec<(Vec<String>, Vec<String>)> = accepted
            .iter()
            .map(|s| (s.left_attrs.clone(), s.right_attrs.clone()))
            .collect();
        let has_23 = pairs.iter().take(2).any(|(l, r)| {
            let mut all: Vec<&str> = l.iter().chain(r).map(|s| s.as_str()).collect();
            all.sort();
            all == ["att2", "att3"]
        });
        let has_45 = pairs.iter().take(2).any(|(l, r)| {
            let mut all: Vec<&str> = l.iter().chain(r).map(|s| s.as_str()).collect();
            all.sort();
            all == ["att4", "att5"]
        });
        assert!(has_23 && has_45, "first two compositions: {pairs:?}");
        // Third composition joins att1 with the {att2, att3} block.
        let (l, r) = &pairs[2];
        let mut third: Vec<&str> = l.iter().chain(r).map(|s| s.as_str()).collect();
        third.sort();
        assert_eq!(third, ["att1", "att2", "att3"]);
    }

    #[test]
    fn every_result_is_a_partition() {
        let t = figure3_table(500);
        let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
        let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
        let out = hb_cuts(&ex).unwrap();
        for r in &out.ranked {
            let report = r
                .segmentation
                .check_partition(ex.backend(), ex.context_selection())
                .unwrap();
            assert!(report.is_partition(), "{}: {report:?}", r.segmentation);
        }
    }

    #[test]
    fn results_sorted_by_entropy_descending() {
        let t = figure3_table(500);
        let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
        let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
        let out = hb_cuts(&ex).unwrap();
        let entropies: Vec<f64> = out.ranked.iter().map(|r| r.score.entropy).collect();
        for w in entropies.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "not sorted: {entropies:?}");
        }
    }

    #[test]
    fn independent_attributes_stop_immediately() {
        // Two independent attributes: the only pair has INDEP ≈ 1 ≥ 0.99,
        // so no composition is accepted and we get exactly the two seeds.
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int)
            .add_column("b", DataType::Int);
        for _ in 0..4000 {
            b.push_row(vec![
                Value::Int(rng.gen_range(0..1000)),
                Value::Int(rng.gen_range(0..1000)),
            ])
            .unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b"])).unwrap();
        let out = hb_cuts(&ex).unwrap();
        assert_eq!(out.ranked.len(), 2);
        assert_eq!(out.trace.stop, Some(StopReason::IndependenceThreshold));
    }

    #[test]
    fn depth_limit_respected() {
        // Strongly dependent attributes with a tiny depth bound: the loop
        // must stop on DepthLimit and never emit a segmentation deeper
        // than the bound.
        let t = figure3_table(500);
        let ctx = Query::wildcard(&["att2", "att3"]);
        let cfg = Config::default().with_max_depth(3);
        let ex = Explorer::new(&t, cfg, ctx).unwrap();
        let out = hb_cuts(&ex).unwrap();
        assert_eq!(out.trace.stop, Some(StopReason::DepthLimit));
        for r in &out.ranked {
            assert!(
                r.segmentation.depth() < 3 + 4,
                "depth {}",
                r.segmentation.depth()
            );
        }
        // Only the two seeds are returned (the composition was rejected).
        assert_eq!(out.ranked.len(), 2);
    }

    #[test]
    fn constant_attribute_is_skipped() {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int)
            .add_column("c", DataType::Int);
        for i in 0..100 {
            b.push_row(vec![Value::Int(i), Value::Int(1)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "c"])).unwrap();
        let out = hb_cuts(&ex).unwrap();
        assert_eq!(out.trace.seeds, vec!["x"]);
        assert_eq!(out.trace.skipped, vec!["c"]);
        assert_eq!(out.trace.stop, Some(StopReason::ExhaustedCandidates));
        assert_eq!(out.ranked.len(), 1);
    }

    #[test]
    fn all_constant_errors() {
        let mut b = TableBuilder::new("t");
        b.add_column("c", DataType::Int);
        for _ in 0..10 {
            b.push_row(vec![Value::Int(1)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["c"])).unwrap();
        assert!(matches!(hb_cuts(&ex), Err(CoreError::NoCuttableAttribute)));
    }

    #[test]
    fn max_results_truncates() {
        let t = figure3_table(500);
        let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
        let cfg = Config::default().with_max_results(3);
        let ex = Explorer::new(&t, cfg, ctx).unwrap();
        let out = hb_cuts(&ex).unwrap();
        assert_eq!(out.ranked.len(), 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let t = figure3_table(800);
        let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
        let run = || {
            let ex = Explorer::new(&t, Config::default(), ctx.clone()).unwrap();
            hb_cuts(&ex)
                .unwrap()
                .ranked
                .iter()
                .map(|r| r.segmentation.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn uncomposable_best_pair_falls_back() {
        // The most dependent pair (a, b) has INDEP = ½ but cannot be
        // composed; the loop must skip it (recording the skip) and
        // compose a weaker — but composable — pair instead of aborting.
        let t = uncomposable_best_pair_table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b", "c"])).unwrap();
        let out = hb_cuts(&ex).unwrap();
        assert!(
            !out.trace.skipped_pairs.is_empty(),
            "the uncomposable (a, b) pair must be recorded: {:?}",
            out.trace
        );
        let skipped = &out.trace.skipped_pairs[0];
        let mut pair: Vec<&str> = skipped
            .left_attrs
            .iter()
            .chain(&skipped.right_attrs)
            .map(|s| s.as_str())
            .collect();
        pair.sort();
        assert_eq!(pair, ["a", "b"]);
        assert!((skipped.indep - 0.5).abs() < 1e-9, "{}", skipped.indep);
        assert!(
            out.trace.steps.iter().any(|s| s.accepted),
            "a weaker composable pair must be composed: {:?}",
            out.trace
        );
        assert_ne!(out.trace.stop, Some(StopReason::ComposeFailed));
    }

    #[test]
    fn all_pairs_uncomposable_stops_compose_failed() {
        // Three identical binary columns: every pair is maximally
        // dependent and none is composable — the loop must record every
        // skip and stop with ComposeFailed, returning just the seeds.
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int)
            .add_column("b", DataType::Int)
            .add_column("d", DataType::Int);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(0..2);
            b.push_row(vec![Value::Int(v), Value::Int(v), Value::Int(v)])
                .unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b", "d"])).unwrap();
        let out = hb_cuts(&ex).unwrap();
        assert_eq!(out.trace.stop, Some(StopReason::ComposeFailed));
        assert_eq!(out.trace.skipped_pairs.len(), 3, "{:?}", out.trace);
        assert!(out.trace.steps.is_empty());
        assert_eq!(out.ranked.len(), 3, "only the three seeds return");
    }

    #[test]
    fn past_threshold_uncomposable_pair_stops_on_independence() {
        // When even the most dependent pair is past max_indep, the loop
        // must stop on the independence threshold whether or not that
        // pair happens to compose — not ban its way through every
        // remaining (equally past-threshold) pair into ComposeFailed.
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int)
            .add_column("b", DataType::Int)
            .add_column("d", DataType::Int);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(0..2);
            b.push_row(vec![Value::Int(v), Value::Int(v), Value::Int(v)])
                .unwrap();
        }
        let t = b.finish();
        // Identical columns pair at INDEP = ½ exactly; a threshold of
        // 0.4 puts every pair past it.
        let cfg = Config::default().with_max_indep(0.4);
        let ex = Explorer::new(&t, cfg, Query::wildcard(&["a", "b", "d"])).unwrap();
        let out = hb_cuts(&ex).unwrap();
        assert_eq!(out.trace.stop, Some(StopReason::IndependenceThreshold));
        assert!(out.trace.skipped_pairs.is_empty(), "{:?}", out.trace);
        assert!(out.trace.steps.is_empty());
        assert_eq!(out.ranked.len(), 3);
    }

    #[test]
    fn naive_reference_matches_incremental_on_figure3() {
        let t = figure3_table(1500);
        let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
        let inc = {
            let ex = Explorer::new(&t, Config::default(), ctx.clone()).unwrap();
            hb_cuts(&ex).unwrap()
        };
        let naive = {
            let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
            hb_cuts_naive(&ex).unwrap()
        };
        assert_eq!(format!("{:?}", inc.trace), format!("{:?}", naive.trace));
        let fp = |out: &HbCutsOutput| {
            out.ranked
                .iter()
                .map(|r| (r.segmentation.to_string(), r.score.entropy.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(fp(&inc), fp(&naive));
    }

    #[test]
    fn incremental_probes_the_memo_less() {
        let t = figure3_table(1500);
        let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
        let probes = |naive: bool| {
            let ex = Explorer::new(&t, Config::default(), ctx.clone()).unwrap();
            if naive {
                hb_cuts_naive(&ex).unwrap();
            } else {
                hb_cuts(&ex).unwrap();
            }
            ex.cache_stats().indep_probes()
        };
        let inc = probes(false);
        let naive = probes(true);
        assert!(
            inc < naive,
            "incremental must probe the memo less: {inc} vs {naive}"
        );
    }
}
