//! HB-cuts — Hierarchical Binary cuts (paper §4, Figure 4).
//!
//! The heuristic: seed one binary segmentation per context attribute, then
//! repeatedly find the *most dependent* pair of candidates (minimum
//! INDEP), replace the pair by their composition, and stop when the best
//! pair is practically independent (`ind ≥ maxIndep`) or the composition
//! grows past the legibility bound (`dep ≥ maxDepth`). Every segmentation
//! ever created is returned, sorted by entropy.
//!
//! ```text
//! 1  function HB-CUTS(query, maxIndep, maxDepth)
//! 2      cand ← {}
//! 3      for i ← 0, nbAttributes(query) do
//! 4          cand ← cand ∪ {CUT_attri(query)}
//! 5      end for
//! 10     while true do
//! 11         {S1*, S2*} ← argmin_{S1,S2 ∈ cand} INDEP(S1, S2)
//! 12         newSeg ← COMPOSE(S1*, S2*)
//! 15         if ind ≥ maxIndep ∥ dep ≥ maxDepth then break
//! 18         cand ← cand ∪ {newSeg} − {S1*, S2*}
//! 20         output ← output ∪ {S1*, S2*}
//! 23     output ← output ∪ cand
//! 25     return sort(output)
//! ```
//!
//! The [`Trace`] records every seed and composition step so the execution
//! tree of Figure 3 can be checked and displayed.

use crate::engine::Explorer;
use crate::error::{CoreError, CoreResult};
use crate::metrics::{score, Score};
use crate::primitives::{compose, cut_segmentation};
use crate::ranking::{rank, Ranked};
use charles_sdl::Segmentation;

/// Why the composition loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Best pair had `INDEP ≥ max_indep` — remaining candidates are
    /// practically independent.
    IndependenceThreshold,
    /// The composition would exceed `max_depth` queries.
    DepthLimit,
    /// Fewer than two candidates remain — no pair to compose.
    ExhaustedCandidates,
    /// The best pair could not be composed (no attribute was cuttable).
    ComposeFailed,
}

/// One composition step considered by the loop.
#[derive(Debug, Clone)]
pub struct ComposeStep {
    /// Attributes of the first operand.
    pub left_attrs: Vec<String>,
    /// Attributes of the second operand.
    pub right_attrs: Vec<String>,
    /// INDEP of the chosen pair.
    pub indep: f64,
    /// Depth of the composition result.
    pub depth: usize,
    /// Whether the step was accepted (false = it triggered the stop).
    pub accepted: bool,
}

/// Record of an HB-cuts execution (the Figure 3 tree).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Attributes successfully seeded (line 4 of Figure 4).
    pub seeds: Vec<String>,
    /// Attributes that could not be cut (constant in the context).
    pub skipped: Vec<String>,
    /// Composition steps in order.
    pub steps: Vec<ComposeStep>,
    /// Why the loop stopped.
    pub stop: Option<StopReason>,
}

/// The advisor's answer: ranked segmentations plus the execution trace.
#[derive(Debug, Clone)]
pub struct HbCutsOutput {
    /// All generated segmentations with scores, ranked best-first.
    pub ranked: Vec<Ranked>,
    /// Execution record.
    pub trace: Trace,
}

impl HbCutsOutput {
    /// The segmentations alone, best-first.
    pub fn segmentations(&self) -> impl Iterator<Item = &Segmentation> {
        self.ranked.iter().map(|r| &r.segmentation)
    }

    /// Best segmentation, if any.
    pub fn best(&self) -> Option<&Ranked> {
        self.ranked.first()
    }
}

/// Run HB-cuts over an explorer's context (Figure 4, lines 1–26).
pub fn hb_cuts(ex: &Explorer<'_>) -> CoreResult<HbCutsOutput> {
    let mut trace = Trace::default();

    // Lines 2–5: seed with one binary cut per attribute. The per-attribute
    // cuts are independent (median scan + two selections each), so they
    // fan out across threads; the zip below keeps attribute order.
    let base = Segmentation::singleton(ex.context().clone());
    let attrs = ex.attributes();
    let seed_cuts = crate::par::try_map(&attrs, |attr| cut_segmentation(ex, &base, attr))?;
    let mut cand: Vec<Segmentation> = Vec::new();
    for (attr, cut) in attrs.iter().zip(seed_cuts) {
        match cut {
            Some(seg) => {
                trace.seeds.push(attr.to_string());
                cand.push(seg);
            }
            None => trace.skipped.push(attr.to_string()),
        }
    }
    if cand.is_empty() {
        return Err(CoreError::NoCuttableAttribute);
    }

    let mut output: Vec<Segmentation> = Vec::new();
    let max_indep = ex.config().max_indep;
    let max_depth = ex.config().max_depth;

    // Lines 10–22: compose the most dependent pair until a stop fires.
    loop {
        if cand.len() < 2 {
            trace.stop = Some(StopReason::ExhaustedCandidates);
            break;
        }
        // Line 11: argmin over unordered candidate pairs. INDEP values are
        // pure functions of the data, so the uncached pairs evaluate in
        // parallel; the argmin itself runs sequentially over the same
        // (i, j) enumeration as the nested loop, keeping first-wins
        // tie-breaks — and hence the chosen pair — identical to the
        // sequential path.
        //
        // From the second iteration on, every pair not involving the
        // newly composed candidate is a memo hit, so the cache is probed
        // sequentially first (cheap hash lookups) and only the misses —
        // O(cand) of them per iteration — fan out to worker threads.
        let pairs: Vec<(usize, usize)> = (0..cand.len())
            .flat_map(|i| ((i + 1)..cand.len()).map(move |j| (i, j)))
            .collect();
        let fps: Vec<String> = cand.iter().map(crate::engine::fingerprint).collect();
        let cached: Vec<Option<f64>> = pairs
            .iter()
            .map(|&(i, j)| ex.cached_indep(&fps[i], &fps[j]))
            .collect();
        let misses: Vec<(usize, usize)> = pairs
            .iter()
            .zip(&cached)
            .filter(|(_, hit)| hit.is_none())
            .map(|(&p, _)| p)
            .collect();
        let fresh = crate::par::try_map(&misses, |&(i, j)| {
            crate::indep::indep_with_fingerprints(ex, &cand[i], &cand[j], &fps[i], &fps[j])
        })?;
        let mut fresh_iter = fresh.into_iter();
        let values: Vec<f64> = cached
            .into_iter()
            .map(|hit| hit.unwrap_or_else(|| fresh_iter.next().expect("one value per miss")))
            .collect();
        let mut best: Option<(usize, usize, f64)> = None;
        for (&(i, j), &v) in pairs.iter().zip(&values) {
            if best.map(|(_, _, b)| v < b).unwrap_or(true) {
                best = Some((i, j, v));
            }
        }
        let (i, j, ind) = best.expect("cand.len() >= 2");

        // Line 12: compose.
        let Some(new_seg) = compose(ex, &cand[i], &cand[j])? else {
            trace.stop = Some(StopReason::ComposeFailed);
            break;
        };
        let dep = new_seg.depth();
        let step = ComposeStep {
            left_attrs: cand[i].attributes().iter().map(|s| s.to_string()).collect(),
            right_attrs: cand[j].attributes().iter().map(|s| s.to_string()).collect(),
            indep: ind,
            depth: dep,
            accepted: false,
        };

        // Lines 15–16: stopping criteria.
        if ind >= max_indep {
            trace.steps.push(step);
            trace.stop = Some(StopReason::IndependenceThreshold);
            break;
        }
        if dep >= max_depth {
            trace.steps.push(step);
            trace.stop = Some(StopReason::DepthLimit);
            break;
        }

        // Lines 18–20: accept — replace the pair by the composition.
        trace.steps.push(ComposeStep {
            accepted: true,
            ..step
        });
        // Remove j first (j > i) so indices stay valid.
        let s2 = cand.swap_remove(j);
        let s1 = cand.swap_remove(i);
        output.push(s1);
        output.push(s2);
        cand.push(new_seg);
    }

    // Line 23: everything still in cand is also returned.
    output.extend(cand);

    // Line 25: sort by entropy (descending), with deterministic tie-breaks.
    // Scoring each segmentation is independent work; order is preserved.
    let scores = crate::par::try_map(&output, |seg| score(ex, seg))?;
    let scored: Vec<(Segmentation, Score)> = output.into_iter().zip(scores).collect();
    let mut ranked = rank(scored);
    ranked.truncate(ex.config().max_results);
    Ok(HbCutsOutput { ranked, trace })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use charles_sdl::Query;
    use charles_store::{DataType, TableBuilder, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Five attributes with the Figure 3 dependency structure:
    /// att2 ↔ att3 strongly dependent, att4 ↔ att5 strongly dependent,
    /// att1 dependent on (att2, att3); everything else independent.
    fn figure3_table(n: usize) -> charles_store::Table {
        let mut rng = StdRng::seed_from_u64(42);
        let mut b = TableBuilder::new("t");
        for name in ["att1", "att2", "att3", "att4", "att5"] {
            b.add_column(name, DataType::Int);
        }
        for _ in 0..n {
            let a2: i64 = rng.gen_range(0..100);
            let a3 = a2 + rng.gen_range(-3i64..=3); // tight function of a2
            let a1 = a2 / 2 + rng.gen_range(-2i64..=2); // depends on a2 (hence a3)
            let a4: i64 = rng.gen_range(0..100);
            let a5 = a4 + rng.gen_range(-3i64..=3); // tight function of a4
            b.push_row(vec![
                Value::Int(a1),
                Value::Int(a2),
                Value::Int(a3),
                Value::Int(a4),
                Value::Int(a5),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn figure3_execution_produces_eight_segmentations() {
        let t = figure3_table(2000);
        let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
        // Depth 12 lets {att1,att2,att3} (8 pieces) form but not 16-piece sets.
        let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
        let out = hb_cuts(&ex).unwrap();
        // Figure 3: 5 seeds + 3 accepted compositions = 8 segmentations.
        assert_eq!(out.trace.seeds.len(), 5);
        let accepted = out.trace.steps.iter().filter(|s| s.accepted).count();
        assert_eq!(accepted, 3, "trace: {:?}", out.trace.steps);
        assert_eq!(out.ranked.len(), 8);
    }

    #[test]
    fn figure3_composition_tree_shape() {
        let t = figure3_table(2000);
        let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
        let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
        let out = hb_cuts(&ex).unwrap();
        let accepted: Vec<&ComposeStep> = out.trace.steps.iter().filter(|s| s.accepted).collect();
        // The two tight pairs must be composed (in some order) before the
        // looser att1–{att2,att3} link.
        let pairs: Vec<(Vec<String>, Vec<String>)> = accepted
            .iter()
            .map(|s| (s.left_attrs.clone(), s.right_attrs.clone()))
            .collect();
        let has_23 = pairs.iter().take(2).any(|(l, r)| {
            let mut all: Vec<&str> = l.iter().chain(r).map(|s| s.as_str()).collect();
            all.sort();
            all == ["att2", "att3"]
        });
        let has_45 = pairs.iter().take(2).any(|(l, r)| {
            let mut all: Vec<&str> = l.iter().chain(r).map(|s| s.as_str()).collect();
            all.sort();
            all == ["att4", "att5"]
        });
        assert!(has_23 && has_45, "first two compositions: {pairs:?}");
        // Third composition joins att1 with the {att2, att3} block.
        let (l, r) = &pairs[2];
        let mut third: Vec<&str> = l.iter().chain(r).map(|s| s.as_str()).collect();
        third.sort();
        assert_eq!(third, ["att1", "att2", "att3"]);
    }

    #[test]
    fn every_result_is_a_partition() {
        let t = figure3_table(500);
        let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
        let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
        let out = hb_cuts(&ex).unwrap();
        for r in &out.ranked {
            let report = r
                .segmentation
                .check_partition(ex.backend(), ex.context_selection())
                .unwrap();
            assert!(report.is_partition(), "{}: {report:?}", r.segmentation);
        }
    }

    #[test]
    fn results_sorted_by_entropy_descending() {
        let t = figure3_table(500);
        let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
        let ex = Explorer::new(&t, Config::default(), ctx).unwrap();
        let out = hb_cuts(&ex).unwrap();
        let entropies: Vec<f64> = out.ranked.iter().map(|r| r.score.entropy).collect();
        for w in entropies.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "not sorted: {entropies:?}");
        }
    }

    #[test]
    fn independent_attributes_stop_immediately() {
        // Two independent attributes: the only pair has INDEP ≈ 1 ≥ 0.99,
        // so no composition is accepted and we get exactly the two seeds.
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int)
            .add_column("b", DataType::Int);
        for _ in 0..4000 {
            b.push_row(vec![
                Value::Int(rng.gen_range(0..1000)),
                Value::Int(rng.gen_range(0..1000)),
            ])
            .unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b"])).unwrap();
        let out = hb_cuts(&ex).unwrap();
        assert_eq!(out.ranked.len(), 2);
        assert_eq!(out.trace.stop, Some(StopReason::IndependenceThreshold));
    }

    #[test]
    fn depth_limit_respected() {
        // Strongly dependent attributes with a tiny depth bound: the loop
        // must stop on DepthLimit and never emit a segmentation deeper
        // than the bound.
        let t = figure3_table(500);
        let ctx = Query::wildcard(&["att2", "att3"]);
        let cfg = Config::default().with_max_depth(3);
        let ex = Explorer::new(&t, cfg, ctx).unwrap();
        let out = hb_cuts(&ex).unwrap();
        assert_eq!(out.trace.stop, Some(StopReason::DepthLimit));
        for r in &out.ranked {
            assert!(
                r.segmentation.depth() < 3 + 4,
                "depth {}",
                r.segmentation.depth()
            );
        }
        // Only the two seeds are returned (the composition was rejected).
        assert_eq!(out.ranked.len(), 2);
    }

    #[test]
    fn constant_attribute_is_skipped() {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int)
            .add_column("c", DataType::Int);
        for i in 0..100 {
            b.push_row(vec![Value::Int(i), Value::Int(1)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "c"])).unwrap();
        let out = hb_cuts(&ex).unwrap();
        assert_eq!(out.trace.seeds, vec!["x"]);
        assert_eq!(out.trace.skipped, vec!["c"]);
        assert_eq!(out.trace.stop, Some(StopReason::ExhaustedCandidates));
        assert_eq!(out.ranked.len(), 1);
    }

    #[test]
    fn all_constant_errors() {
        let mut b = TableBuilder::new("t");
        b.add_column("c", DataType::Int);
        for _ in 0..10 {
            b.push_row(vec![Value::Int(1)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["c"])).unwrap();
        assert!(matches!(hb_cuts(&ex), Err(CoreError::NoCuttableAttribute)));
    }

    #[test]
    fn max_results_truncates() {
        let t = figure3_table(500);
        let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
        let cfg = Config::default().with_max_results(3);
        let ex = Explorer::new(&t, cfg, ctx).unwrap();
        let out = hb_cuts(&ex).unwrap();
        assert_eq!(out.ranked.len(), 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let t = figure3_table(800);
        let ctx = Query::wildcard(&["att1", "att2", "att3", "att4", "att5"]);
        let run = || {
            let ex = Explorer::new(&t, Config::default(), ctx.clone()).unwrap();
            hb_cuts(&ex)
                .unwrap()
                .ranked
                .iter()
                .map(|r| r.segmentation.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
