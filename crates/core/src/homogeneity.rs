//! Homogeneity diagnostics — the measure the paper deliberately skipped.
//!
//! §3: "Among those, all items described by a query should be 'similar'
//! … Assigning a quantitative measure to this property is still an open
//! research challenge … we purposely neglect to quantify homogeneity.
//! However, the segmentations should still be meaningful."
//!
//! The paper's bet is that cutting along *dependent* attributes yields
//! "good enough" groups without ever computing a clustering objective.
//! This module implements the classical measures the paper cites as
//! alternatives — intra- vs total variance for numerics (the
//! clustering-literature dispersion criterion) and Gini impurity
//! reduction for nominals (the information-theoretic criterion) — so the
//! bet can be *checked*: experiment E12 scores HB-cuts' homogeneity
//! against the random baseline on the same data.
//!
//! All scores are *gains* in `[0, 1]`: 0 = segments look like the
//! context, 1 = segments are internally constant.

use crate::engine::Explorer;
use crate::error::CoreResult;
use charles_sdl::Segmentation;
use charles_store::Bitmap;

/// Homogeneity report for one segmentation.
#[derive(Debug, Clone, PartialEq)]
pub struct Homogeneity {
    /// Per-attribute gains `(attribute, gain)` over the context attributes
    /// that could be scored.
    pub per_attribute: Vec<(String, f64)>,
    /// Mean of the per-attribute gains (0 when nothing could be scored).
    pub mean_gain: f64,
}

/// Score a segmentation's homogeneity over every context attribute.
///
/// * numeric attribute — **variance reduction**
///   `1 − Σ_j (n_j/n)·var_j / var_total` (the ANOVA within/total ratio);
/// * nominal attribute — **Gini impurity reduction**
///   `1 − Σ_j (n_j/n)·gini_j / gini_total`.
///
/// Attributes that are constant in the context (zero variance/impurity)
/// are skipped: there is nothing to explain.
pub fn homogeneity(ex: &Explorer<'_>, seg: &Segmentation) -> CoreResult<Homogeneity> {
    let n = ex.context_size() as f64;
    let context_sel = ex.context_selection().clone();
    let piece_sels: Vec<_> = seg
        .queries()
        .iter()
        .map(|q| ex.selection(q))
        .collect::<CoreResult<_>>()?;

    let mut per_attribute = Vec::new();
    for attr in ex.attributes() {
        let ty = ex.backend().schema().type_of(attr)?;
        let gain = if ty.is_numeric() {
            numeric_gain(ex, attr, &context_sel, &piece_sels, n)?
        } else {
            nominal_gain(ex, attr, &context_sel, &piece_sels, n)?
        };
        if let Some(g) = gain {
            per_attribute.push((attr.to_string(), g));
        }
    }
    let mean_gain = if per_attribute.is_empty() {
        0.0
    } else {
        per_attribute.iter().map(|(_, g)| g).sum::<f64>() / per_attribute.len() as f64
    };
    Ok(Homogeneity {
        per_attribute,
        mean_gain,
    })
}

fn numeric_gain(
    ex: &Explorer<'_>,
    attr: &str,
    context: &Bitmap,
    pieces: &[std::sync::Arc<Bitmap>],
    n: f64,
) -> CoreResult<Option<f64>> {
    let Some((_, total_var)) = ex.backend().mean_and_var(attr, context)? else {
        return Ok(None);
    };
    if total_var <= 0.0 {
        return Ok(None); // constant in the context: nothing to explain
    }
    let mut within = 0.0;
    for sel in pieces {
        let nj = sel.count_ones() as f64;
        if nj == 0.0 {
            continue;
        }
        if let Some((_, var)) = ex.backend().mean_and_var(attr, sel)? {
            within += nj / n * var;
        }
    }
    Ok(Some((1.0 - within / total_var).clamp(0.0, 1.0)))
}

fn nominal_gain(
    ex: &Explorer<'_>,
    attr: &str,
    context: &Bitmap,
    pieces: &[std::sync::Arc<Bitmap>],
    n: f64,
) -> CoreResult<Option<f64>> {
    let gini = |sel: &Bitmap| -> CoreResult<Option<f64>> {
        let (ft, _) = ex.backend().frequencies(attr, sel)?;
        let total = ft.total() as f64;
        if total == 0.0 {
            return Ok(None);
        }
        let sum_sq: f64 = ft
            .entries()
            .iter()
            .map(|&(_, c)| {
                let p = c as f64 / total;
                p * p
            })
            .sum();
        Ok(Some(1.0 - sum_sq))
    };
    let Some(total_gini) = gini(context)? else {
        return Ok(None);
    };
    if total_gini <= 0.0 {
        return Ok(None);
    }
    let mut within = 0.0;
    for sel in pieces {
        let nj = sel.count_ones() as f64;
        if nj == 0.0 {
            continue;
        }
        if let Some(g) = gini(sel)? {
            within += nj / n * g;
        }
    }
    Ok(Some((1.0 - within / total_gini).clamp(0.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::primitives::cut_segmentation;
    use charles_sdl::{Constraint, Query};
    use charles_store::{DataType, TableBuilder, Value};

    /// Two clean clusters: kind "a" has x around 0, kind "b" around 100.
    fn clustered() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int)
            .add_column("kind", DataType::Str);
        for i in 0..50i64 {
            b.push_row(vec![Value::Int(i % 10), Value::str("a")])
                .unwrap();
            b.push_row(vec![Value::Int(100 + i % 10), Value::str("b")])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn perfect_split_scores_high_on_both_families() {
        let t = clustered();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "kind"])).unwrap();
        // Cut on kind — aligns with the true clusters.
        let seg = cut_segmentation(&ex, &Segmentation::singleton(ex.context().clone()), "kind")
            .unwrap()
            .unwrap();
        let h = homogeneity(&ex, &seg).unwrap();
        assert_eq!(h.per_attribute.len(), 2);
        for (attr, gain) in &h.per_attribute {
            assert!(
                *gain > 0.95,
                "{attr} gain {gain} should be near 1 for the aligned split"
            );
        }
        assert!(h.mean_gain > 0.95);
    }

    #[test]
    fn orthogonal_split_scores_low() {
        // A split on parity of x within each cluster explains neither the
        // x variance nor the kind distribution.
        let t = clustered();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "kind"])).unwrap();
        let even = Query::wildcard(&["x", "kind"])
            .refined(
                "x",
                Constraint::set((0..=108).step_by(2).map(Value::Int).collect()).unwrap(),
            )
            .unwrap();
        let odd = Query::wildcard(&["x", "kind"])
            .refined(
                "x",
                Constraint::set((1..=109).step_by(2).map(Value::Int).collect()).unwrap(),
            )
            .unwrap();
        let seg = Segmentation::new(vec![even, odd]);
        let h = homogeneity(&ex, &seg).unwrap();
        // kind gain must be ~0 (parity says nothing about kind); x gain is
        // small (parity removes almost no variance).
        let kind_gain = h
            .per_attribute
            .iter()
            .find(|(a, _)| a == "kind")
            .map(|(_, g)| *g)
            .unwrap();
        assert!(kind_gain < 0.05, "kind gain {kind_gain}");
        assert!(h.mean_gain < 0.2, "mean {}", h.mean_gain);
    }

    #[test]
    fn trivial_segmentation_gains_nothing() {
        let t = clustered();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "kind"])).unwrap();
        let seg = Segmentation::singleton(ex.context().clone());
        let h = homogeneity(&ex, &seg).unwrap();
        assert!(h.mean_gain < 1e-9);
    }

    #[test]
    fn constant_attributes_are_skipped() {
        let mut b = TableBuilder::new("t");
        b.add_column("c", DataType::Int)
            .add_column("x", DataType::Int);
        for i in 0..20 {
            b.push_row(vec![Value::Int(7), Value::Int(i)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["c", "x"])).unwrap();
        let seg = cut_segmentation(&ex, &Segmentation::singleton(ex.context().clone()), "x")
            .unwrap()
            .unwrap();
        let h = homogeneity(&ex, &seg).unwrap();
        // Only x is scored; c is constant.
        assert_eq!(h.per_attribute.len(), 1);
        assert_eq!(h.per_attribute[0].0, "x");
    }

    /// Two overlapping clusters: kind "a" has x in 0..10, kind "b" in
    /// 6..16. Only the kind cut separates them perfectly, so a random
    /// numeric split cannot tie the optimum by luck.
    fn overlapping_clusters() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int)
            .add_column("kind", DataType::Str);
        for i in 0..50i64 {
            b.push_row(vec![Value::Int(i % 10), Value::str("a")])
                .unwrap();
            b.push_row(vec![Value::Int(6 + i % 10), Value::str("b")])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn hbcuts_bet_beats_random_on_dependent_data() {
        // E12 in miniature: HB-cuts' structural homogeneity should beat a
        // random segmentation of the same depth on clustered data.
        let t = overlapping_clusters();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "kind"])).unwrap();
        let out = crate::hbcuts::hb_cuts(&ex).unwrap();
        let hb = homogeneity(&ex, &out.ranked[0].segmentation).unwrap();
        let rand = crate::baselines::random_segmentations(
            &ex,
            crate::baselines::RandomOptions {
                count: 6,
                target_depth: out.ranked[0].segmentation.depth(),
                seed: 5,
            },
        )
        .unwrap();
        let rand_mean: f64 = rand
            .iter()
            .map(|r| homogeneity(&ex, &r.segmentation).unwrap().mean_gain)
            .sum::<f64>()
            / rand.len() as f64;
        assert!(
            hb.mean_gain > rand_mean,
            "hb {} vs random mean {rand_mean}",
            hb.mean_gain
        );
    }
}
