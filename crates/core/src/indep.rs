//! INDEP: the dependence measure driving HB-cuts (§4.1, Proposition 1).
//!
//! For segmentations `S1`, `S2` of the same context,
//!
//! ```text
//! INDEP(S1, S2) = E(S1 × S2) / (E(S1) + E(S2))
//! ```
//!
//! Proposition 1: the partition variables `X1`, `X2` are independent iff
//! `E(S1×S2) = E(S1) + E(S2)`, i.e. `INDEP = 1`; the quotient *decreases*
//! with the degree of dependence (a functional dependency collapses the
//! product's entropy onto the diagonal, pushing the quotient towards ½).
//!
//! The implementation never materialises product queries: the entropy of
//! `S1 × S2` only needs the pairwise intersection cardinalities, which are
//! bitmap AND-counts over the cached segment selections. Pair results are
//! memoized across HB-cuts iterations (§5.1: "the calculations of SDL
//! products and entropy can be reused from one iteration to the next").

use crate::engine::{fingerprint, Explorer};
use crate::error::CoreResult;
use crate::metrics::entropy_from_covers;
use charles_sdl::Segmentation;

/// Entropy of the product `S1 × S2` computed from pairwise intersection
/// counts (no product queries are built).
pub fn product_entropy(ex: &Explorer<'_>, s1: &Segmentation, s2: &Segmentation) -> CoreResult<f64> {
    let n = ex.context_size();
    if n == 0 {
        return Ok(0.0);
    }
    // Segment selections materialise independently; fan them out.
    let sels1 = crate::par::try_map(s1.queries(), |q| ex.selection(q))?;
    let sels2 = crate::par::try_map(s2.queries(), |q| ex.selection(q))?;
    // AND-count grid: one parallel task per row of S1, each emitting its
    // covers in S2 order; flattening row-major reproduces the exact
    // sequential (a, b) enumeration, so the entropy sum sees the same
    // operand order bitwise.
    let rows = crate::par::map(&sels1, |a| {
        sels2
            .iter()
            .filter_map(|b| {
                let c = a.and_count(b);
                (c > 0).then(|| c as f64 / n as f64)
            })
            .collect::<Vec<f64>>()
    });
    let covers: Vec<f64> = rows.into_iter().flatten().collect();
    Ok(entropy_from_covers(&covers))
}

/// `INDEP(S1, S2)`, memoized per unordered pair.
///
/// Degenerate case: when `E(S1) + E(S2) = 0` (both segmentations are
/// single-piece or completely unbalanced) there is no dependence signal;
/// we return 1.0 ("fully independent") so HB-cuts never composes on noise.
pub fn indep(ex: &Explorer<'_>, s1: &Segmentation, s2: &Segmentation) -> CoreResult<f64> {
    indep_with_fingerprints(ex, s1, s2, &fingerprint(s1), &fingerprint(s2))
}

/// Evaluate INDEP for a *frontier* of candidate position pairs in one
/// order-preserving parallel fan-out (`fps` runs parallel to `cand`).
///
/// This is the only place the HB-cuts argmin paths touch INDEP: the
/// incremental path passes the O(k) pairs involving the newly composed
/// candidate, the naive reference passes its per-iteration memo misses.
/// Each evaluation consults the explorer's shared memo first (one
/// borrowed-key probe), so repeat runs over one explorer still reuse
/// values across calls.
pub(crate) fn indep_frontier(
    ex: &Explorer<'_>,
    cand: &[Segmentation],
    fps: &[&str],
    frontier: &[(usize, usize)],
) -> CoreResult<Vec<f64>> {
    crate::par::try_map(frontier, |&(i, j)| {
        indep_with_fingerprints(ex, &cand[i], &cand[j], fps[i], fps[j])
    })
}

/// [`indep`] with caller-supplied fingerprints, so hot loops that
/// already maintain them (the HB-cuts pair argmin) don't re-render the
/// segmentations for every cache miss.
pub(crate) fn indep_with_fingerprints(
    ex: &Explorer<'_>,
    s1: &Segmentation,
    s2: &Segmentation,
    fp1: &str,
    fp2: &str,
) -> CoreResult<f64> {
    if let Some(v) = ex.cached_indep(fp1, fp2) {
        return Ok(v);
    }
    let e1 = crate::metrics::entropy(ex, s1)?;
    let e2 = crate::metrics::entropy(ex, s2)?;
    let denom = e1 + e2;
    let value = if denom <= f64::EPSILON {
        1.0
    } else {
        // Subadditivity bounds the true quotient by 1; clamp floating noise.
        (product_entropy(ex, s1, s2)? / denom).min(1.0)
    };
    ex.store_indep(fp1, fp2, value);
    Ok(value)
}

/// Check Proposition 1's equality within a tolerance: are the partition
/// variables of `S1` and `S2` independent on this dataset?
pub fn is_independent(
    ex: &Explorer<'_>,
    s1: &Segmentation,
    s2: &Segmentation,
    tolerance: f64,
) -> CoreResult<bool> {
    Ok(indep(ex, s1, s2)? >= 1.0 - tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::primitives::{cut_segmentation, product};
    use charles_sdl::Query;
    use charles_store::{DataType, TableBuilder, Value};

    fn two_cols(rows: &[(i64, i64)]) -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int)
            .add_column("b", DataType::Int);
        for &(x, y) in rows {
            b.push_row(vec![Value::Int(x), Value::Int(y)]).unwrap();
        }
        b.finish()
    }

    fn independent_table() -> charles_store::Table {
        let mut rows = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                rows.push((i, j));
            }
        }
        two_cols(&rows)
    }

    fn dependent_table() -> charles_store::Table {
        let rows: Vec<(i64, i64)> = (0..64).map(|i| (i % 8, i % 8)).collect();
        two_cols(&rows)
    }

    fn halves<'a>(ex: &Explorer<'a>, attr: &str) -> Segmentation {
        cut_segmentation(ex, &Segmentation::singleton(ex.context().clone()), attr)
            .unwrap()
            .unwrap()
    }

    #[test]
    fn indep_is_one_for_independent_attributes() {
        let t = independent_table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b"])).unwrap();
        let v = indep(&ex, &halves(&ex, "a"), &halves(&ex, "b")).unwrap();
        assert!((v - 1.0).abs() < 1e-9, "got {v}");
        assert!(is_independent(&ex, &halves(&ex, "a"), &halves(&ex, "b"), 0.01).unwrap());
    }

    #[test]
    fn indep_is_half_for_functional_dependency() {
        // b = a: the product collapses onto the diagonal, so
        // E(S1×S2) = E(S1) = E(S2) and the quotient is exactly 1/2.
        let t = dependent_table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b"])).unwrap();
        let v = indep(&ex, &halves(&ex, "a"), &halves(&ex, "b")).unwrap();
        assert!((v - 0.5).abs() < 1e-9, "got {v}");
        assert!(!is_independent(&ex, &halves(&ex, "a"), &halves(&ex, "b"), 0.01).unwrap());
    }

    #[test]
    fn product_entropy_matches_materialised_product() {
        let t = independent_table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b"])).unwrap();
        let sa = halves(&ex, "a");
        let sb = halves(&ex, "b");
        let fast = product_entropy(&ex, &sa, &sb).unwrap();
        let materialised = product(&ex, &sa, &sb).unwrap();
        let slow = crate::metrics::entropy(&ex, &materialised).unwrap();
        assert!((fast - slow).abs() < 1e-12, "{fast} vs {slow}");
    }

    #[test]
    fn proposition1_additivity_for_independents() {
        let t = independent_table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b"])).unwrap();
        let sa = halves(&ex, "a");
        let sb = halves(&ex, "b");
        let e1 = crate::metrics::entropy(&ex, &sa).unwrap();
        let e2 = crate::metrics::entropy(&ex, &sb).unwrap();
        let e12 = product_entropy(&ex, &sa, &sb).unwrap();
        assert!((e12 - (e1 + e2)).abs() < 1e-9);
    }

    #[test]
    fn indep_self_is_half() {
        // INDEP(S, S): E(S×S) = E(S), denominator 2E(S) → exactly 0.5.
        let t = independent_table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b"])).unwrap();
        let sa = halves(&ex, "a");
        let v = indep(&ex, &sa, &sa).unwrap();
        assert!((v - 0.5).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn degenerate_entropy_yields_one() {
        let t = independent_table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b"])).unwrap();
        let single = Segmentation::singleton(ex.context().clone());
        let v = indep(&ex, &single, &single).unwrap();
        assert_eq!(v, 1.0);
    }

    #[test]
    fn indep_memoized_across_calls() {
        let t = independent_table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b"])).unwrap();
        let sa = halves(&ex, "a");
        let sb = halves(&ex, "b");
        let v1 = indep(&ex, &sa, &sb).unwrap();
        let before = ex.cache_stats();
        let v2 = indep(&ex, &sb, &sa).unwrap(); // swapped order hits too
        let after = ex.cache_stats();
        assert_eq!(v1, v2);
        assert_eq!(after.indep_hits, before.indep_hits + 1);
    }

    #[test]
    fn noisy_dependence_lies_between() {
        // b tracks a except for 20% of rows, which jump to the opposite
        // half → INDEP strictly between the functional 0.5 and the
        // independent 1.0.
        let rows: Vec<(i64, i64)> = (0..64)
            .map(|i| {
                let a = i % 8;
                let b = if i % 5 == 0 { (a + 4) % 8 } else { a };
                (a, b)
            })
            .collect();
        let t = two_cols(&rows);
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b"])).unwrap();
        let v = indep(&ex, &halves(&ex, "a"), &halves(&ex, "b")).unwrap();
        assert!(v > 0.55 && v < 0.999, "got {v}");
    }
}
