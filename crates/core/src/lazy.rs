//! Lazy segmentation generation (§5.2).
//!
//! "Currently, Charles generates all possible answers to a user query in
//! one go, then returns them. It may be beneficial to spread the
//! computation time: the system would only generate a small set of
//! queries, and create more upon request."
//!
//! [`LazyGenerator`] runs the HB-cuts loop incrementally: the seed cuts
//! are produced one per `next()` call, then each further call performs one
//! composition step. The set of segmentations eventually yielded equals
//! exactly the eager [`crate::hb_cuts`] output (seeds + accepted
//! compositions), just in discovery order instead of entropy order —
//! experiment E11 measures the resulting time-to-first-answer gap.

use crate::engine::Explorer;
use crate::error::CoreResult;
use crate::hbcuts::{PairState, StopReason};
use crate::metrics::{score, Score};
use crate::primitives::{compose, cut_segmentation};
use charles_sdl::Segmentation;

enum Phase {
    /// Seeding: next attribute index to try.
    Seeding(usize),
    /// Composing candidates.
    Composing,
    /// Loop finished.
    Done(StopReason),
}

/// Incremental HB-cuts: call [`LazyGenerator::next_segmentation`]
/// repeatedly; `None` means the answer space is exhausted.
///
/// The composing phase shares the eager loop's incremental pair state:
/// candidates are interned once, pair INDEP values persist across
/// `next()` calls, and each step only evaluates the O(k) pairs touching
/// the previously composed candidate. An uncomposable best pair is
/// skipped in favour of the next-most-dependent one, mirroring
/// [`crate::hb_cuts`]'s fallback.
pub struct LazyGenerator<'e, 'a> {
    ex: &'e Explorer<'a>,
    attrs: Vec<String>,
    cand: Vec<Segmentation>,
    ids: Vec<u32>,
    state: PairState,
    phase: Phase,
}

impl<'e, 'a> LazyGenerator<'e, 'a> {
    /// Start a lazy run over an explorer's context.
    pub fn new(ex: &'e Explorer<'a>) -> LazyGenerator<'e, 'a> {
        LazyGenerator {
            ex,
            attrs: ex.attributes().iter().map(|s| s.to_string()).collect(),
            cand: Vec::new(),
            ids: Vec::new(),
            state: PairState::default(),
            phase: Phase::Seeding(0),
        }
    }

    /// Why the generator stopped, once it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self.phase {
            Phase::Done(r) => Some(r),
            _ => None,
        }
    }

    /// Produce the next segmentation (scored), or `None` when done.
    pub fn next_segmentation(&mut self) -> CoreResult<Option<(Segmentation, Score)>> {
        loop {
            match self.phase {
                Phase::Seeding(idx) => {
                    if idx >= self.attrs.len() {
                        self.phase = Phase::Composing;
                        continue;
                    }
                    self.phase = Phase::Seeding(idx + 1);
                    let base = Segmentation::singleton(self.ex.context().clone());
                    if let Some(seg) = cut_segmentation(self.ex, &base, &self.attrs[idx])? {
                        let s = score(self.ex, &seg)?;
                        self.ids.push(self.state.intern(&seg));
                        self.cand.push(seg.clone());
                        return Ok(Some((seg, s)));
                    }
                    // Uncuttable attribute: try the next one.
                }
                Phase::Composing => {
                    if self.cand.len() < 2 {
                        self.phase = Phase::Done(StopReason::ExhaustedCandidates);
                        return Ok(None);
                    }
                    // Fill the incremental frontier (all pairs on the
                    // first composing step, O(k) afterwards — or every
                    // pair when the §5.1 reuse is ablated away).
                    let frontier = self.state.frontier(&self.ids, self.ex.config().memoize);
                    if !frontier.is_empty() {
                        let fps: Vec<&str> = self.ids.iter().map(|&id| self.state.fp(id)).collect();
                        let fresh =
                            crate::indep::indep_frontier(self.ex, &self.cand, &fps, &frontier)?;
                        for (&(i, j), v) in frontier.iter().zip(fresh) {
                            self.state.set(self.ids[i], self.ids[j], v);
                        }
                    }
                    loop {
                        let Some((i, j, ind)) = self.state.best_pair(&self.ids) else {
                            // Every remaining pair is uncomposable.
                            self.phase = Phase::Done(StopReason::ComposeFailed);
                            return Ok(None);
                        };
                        if ind >= self.ex.config().max_indep {
                            self.phase = Phase::Done(StopReason::IndependenceThreshold);
                            return Ok(None);
                        }
                        let Some(new_seg) = compose(self.ex, &self.cand[i], &self.cand[j])? else {
                            // Skip the uncomposable pair, fall back to
                            // the next-most-dependent one.
                            self.state.ban(self.ids[i], self.ids[j]);
                            continue;
                        };
                        if new_seg.depth() >= self.ex.config().max_depth {
                            self.phase = Phase::Done(StopReason::DepthLimit);
                            return Ok(None);
                        }
                        self.cand.swap_remove(j);
                        self.ids.swap_remove(j);
                        self.cand.swap_remove(i);
                        self.ids.swap_remove(i);
                        let s = score(self.ex, &new_seg)?;
                        self.ids.push(self.state.intern(&new_seg));
                        self.cand.push(new_seg.clone());
                        return Ok(Some((new_seg, s)));
                    }
                }
                Phase::Done(_) => return Ok(None),
            }
        }
    }

    /// Drain everything that remains (turning the generator eager).
    pub fn collect_all(&mut self) -> CoreResult<Vec<(Segmentation, Score)>> {
        let mut out = Vec::new();
        while let Some(item) = self.next_segmentation()? {
            out.push(item);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::engine::fingerprint;
    use crate::hbcuts::hb_cuts;
    use charles_sdl::Query;
    use charles_store::{DataType, TableBuilder, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    fn table() -> charles_store::Table {
        let mut rng = StdRng::seed_from_u64(11);
        let mut b = TableBuilder::new("t");
        for name in ["a", "b", "c"] {
            b.add_column(name, DataType::Int);
        }
        for _ in 0..1000 {
            let a: i64 = rng.gen_range(0..50);
            let bb = a + rng.gen_range(-2i64..=2);
            let c: i64 = rng.gen_range(0..50);
            b.push_row(vec![Value::Int(a), Value::Int(bb), Value::Int(c)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn first_answer_arrives_after_one_step() {
        let t = table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b", "c"])).unwrap();
        let mut gen = LazyGenerator::new(&ex);
        let first = gen.next_segmentation().unwrap();
        assert!(first.is_some());
        // The first answer is the seed cut on the first attribute.
        let (seg, _) = first.unwrap();
        assert_eq!(seg.attributes(), vec!["a"]);
        assert_eq!(seg.depth(), 2);
    }

    #[test]
    fn lazy_yields_same_set_as_eager() {
        let t = table();
        let ctx = Query::wildcard(&["a", "b", "c"]);
        let ex1 = Explorer::new(&t, Config::default(), ctx.clone()).unwrap();
        let eager: BTreeSet<String> = hb_cuts(&ex1)
            .unwrap()
            .ranked
            .iter()
            .map(|r| fingerprint(&r.segmentation))
            .collect();
        let ex2 = Explorer::new(&t, Config::default(), ctx).unwrap();
        let mut gen = LazyGenerator::new(&ex2);
        let lazy: BTreeSet<String> = gen
            .collect_all()
            .unwrap()
            .iter()
            .map(|(s, _)| fingerprint(s))
            .collect();
        assert_eq!(eager, lazy);
    }

    #[test]
    fn generator_reports_stop_reason() {
        let t = table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b", "c"])).unwrap();
        let mut gen = LazyGenerator::new(&ex);
        assert!(gen.stop_reason().is_none());
        let _ = gen.collect_all().unwrap();
        assert!(gen.stop_reason().is_some());
        // Exhausted generator keeps returning None.
        assert!(gen.next_segmentation().unwrap().is_none());
    }
}
