//! `charles-core` — the query advisor itself.
//!
//! This crate implements the contribution of *"Meet Charles, big data
//! query advisor"* (Sellam & Kersten, CIDR 2013): given a *context* — an
//! SDL query delimiting the population a user cares about — it generates,
//! evaluates and ranks **segmentations**, sets of SDL queries that
//! partition the context into meaningful, preferably balanced pieces.
//!
//! The layers, bottom-up:
//!
//! * [`engine::Explorer`] — pins a context over a [`charles_store::Backend`]
//!   and memoizes selections and INDEP values (§5.1 optimization);
//! * [`metrics`] — simplicity, breadth, entropy (§3);
//! * [`primitives`] — CUT, COMPOSE, PRODUCT (§4.1);
//! * [`mod@indep`] — the dependence quotient and Proposition 1;
//! * [`hbcuts`] — the HB-cuts heuristic (§4.2, Figure 4) with tracing;
//! * [`ranking`] — entropy-first and weighted 3-criteria orders;
//! * [`advisor`] / [`session`] — the user-facing facade and drill-down
//!   exploration loop;
//! * extensions from §5.2: [`lazy`] (generate answers on demand),
//!   [`quantile`] (non-median cuts), [`adaptive`] (per-piece cuts via
//!   randomized search), sampled medians ([`config::MedianStrategy`]);
//! * [`baselines`] — faceted search, CLIQUE-style grids, random and
//!   exhaustive segmentation, for the comparison experiments (§6).
//!
//! # Quickstart
//!
//! ```
//! use charles_store::{TableBuilder, DataType, Value};
//! use charles_core::Advisor;
//!
//! let mut b = TableBuilder::new("boats");
//! b.add_column("type", DataType::Str);
//! b.add_column("tonnage", DataType::Int);
//! for (ty, t) in [("fluit", 1000), ("fluit", 1100), ("jacht", 2500), ("jacht", 2600)] {
//!     b.push_row(vec![Value::str(ty), Value::Int(t)]).unwrap();
//! }
//! let table = b.finish();
//!
//! let advisor = Advisor::new(&table);
//! let advice = advisor.advise_str("(type: , tonnage: )").unwrap();
//! assert!(!advice.ranked.is_empty());
//! println!("{}", advice.ranked[0].segmentation);
//! ```

pub mod adaptive;
pub mod advisor;
pub mod baselines;
pub mod cache;
pub mod config;
pub mod engine;
pub mod error;
pub mod hbcuts;
pub mod homogeneity;
pub mod indep;
pub mod lazy;
pub mod metrics;
pub(crate) mod par;
pub mod primitives;
pub mod quantile;
pub mod ranking;
pub mod session;
pub mod surprise;

pub use adaptive::{adaptive_segmentations, AdaptiveOptions};
pub use advisor::{Advice, Advisor};
pub use cache::{AdviceCache, AdviceCacheStats};
pub use config::{Config, MedianStrategy};
pub use engine::{fingerprint, CacheStats, Explorer};
pub use error::{CoreError, CoreResult};
pub use hbcuts::{
    hb_cuts, hb_cuts_naive, ComposeStep, HbCutsOutput, SkippedPair, StopReason, Trace,
};
pub use homogeneity::{homogeneity, Homogeneity};
pub use indep::{indep, is_independent, product_entropy};
pub use lazy::LazyGenerator;
pub use metrics::{breadth, entropy, entropy_from_covers, score, simplicity, Score};
pub use primitives::{compose, cut_query, cut_segmentation, product, product_all_cells};
pub use quantile::{quantile_cut_query, quantile_cut_segmentation};
pub use ranking::{rank, rank_weighted, Ranked, Weights};
pub use session::{OwnedSession, Session};
pub use surprise::{rank_by_surprise, surprise, Surprise};
