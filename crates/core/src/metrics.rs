//! The paper's quality metrics (§3): simplicity, breadth, entropy.
//!
//! Homogeneity is deliberately **not** quantified — the paper argues that
//! no universal clustering-quality measure exists and that the advisor
//! explores the query space, not the data space; meaningfulness is instead
//! supplied structurally by HB-cuts (cuts composed along dependent
//! attributes only).

use crate::engine::Explorer;
use crate::error::CoreResult;
use charles_sdl::Segmentation;

/// SIMPLICITY — `P(S)`: the maximum number of constraints among the
/// queries of the segmentation ("each individual SDL query should contain
/// as few predicates as possible … the maximum number of constraints among
/// all of its queries"). Lower is simpler, hence more legible
/// (Principle 1).
pub fn simplicity(seg: &Segmentation) -> usize {
    seg.queries()
        .iter()
        .map(|q| q.constraint_count())
        .max()
        .unwrap_or(0)
}

/// BREADTH — the number of distinct columns across the queries ("we
/// maximize the number of distinct columns across the queries of our
/// segmentations"). Higher is more informative (Principle 2).
pub fn breadth(seg: &Segmentation) -> usize {
    seg.attributes().len()
}

/// ENTROPY of a cover distribution (Definition 4):
/// `E(S) = −Σ C(Q_j) · ln C(Q_j)`, with `0·ln 0 = 0`.
///
/// Natural logarithm; `entropy_from_covers(..) / LN_2` gives bits. Ranges
/// from 0 (a single piece) to `ln M` for `M` perfectly balanced segments
/// (Principle 3: deeper and more balanced is better).
pub fn entropy_from_covers(covers: &[f64]) -> f64 {
    covers
        .iter()
        .filter(|&&c| c > 0.0)
        .map(|&c| -c * c.ln())
        .sum()
}

/// Entropy of a segmentation against an explorer's context.
pub fn entropy(ex: &Explorer<'_>, seg: &Segmentation) -> CoreResult<f64> {
    Ok(entropy_from_covers(&ex.covers(seg)?))
}

/// The full score card of a segmentation: everything the ranking needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Score {
    /// Entropy (nats).
    pub entropy: f64,
    /// Max constraints per query (lower = simpler).
    pub simplicity: usize,
    /// Distinct constrained columns (higher = broader).
    pub breadth: usize,
    /// Number of queries.
    pub depth: usize,
}

impl Score {
    /// Entropy in bits rather than nats.
    pub fn entropy_bits(&self) -> f64 {
        self.entropy / std::f64::consts::LN_2
    }

    /// The theoretical entropy ceiling for this depth (`ln M`).
    pub fn max_entropy(&self) -> f64 {
        if self.depth == 0 {
            0.0
        } else {
            (self.depth as f64).ln()
        }
    }

    /// Balance in `[0,1]`: entropy normalised by its ceiling (1 = perfectly
    /// even pieces). Degenerate single-piece segmentations score 0.
    pub fn balance(&self) -> f64 {
        let max = self.max_entropy();
        if max == 0.0 {
            0.0
        } else {
            self.entropy / max
        }
    }
}

/// Compute the score card for a segmentation.
pub fn score(ex: &Explorer<'_>, seg: &Segmentation) -> CoreResult<Score> {
    Ok(Score {
        entropy: entropy(ex, seg)?,
        simplicity: simplicity(seg),
        breadth: breadth(seg),
        depth: seg.depth(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use charles_sdl::{Constraint, Query};
    use charles_store::{DataType, TableBuilder, Value};

    fn table() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int)
            .add_column("k", DataType::Str);
        for i in 0..16i64 {
            let k = if i < 8 { "lo" } else { "hi" };
            b.push_row(vec![Value::Int(i), Value::str(k)]).unwrap();
        }
        b.finish()
    }

    fn x_range(lo: i64, hi: i64) -> Query {
        Query::wildcard(&["x", "k"])
            .refined(
                "x",
                Constraint::range(Value::Int(lo), Value::Int(hi)).unwrap(),
            )
            .unwrap()
    }

    #[test]
    fn entropy_bounds() {
        // One piece → 0.
        assert_eq!(entropy_from_covers(&[1.0]), 0.0);
        // M balanced pieces → ln M.
        let m = 8;
        let covers = vec![1.0 / m as f64; m];
        let e = entropy_from_covers(&covers);
        assert!((e - (m as f64).ln()).abs() < 1e-12);
        // Unbalanced < balanced at equal depth.
        let skew = entropy_from_covers(&[0.9, 0.1]);
        let even = entropy_from_covers(&[0.5, 0.5]);
        assert!(skew < even);
    }

    #[test]
    fn entropy_ignores_empty_cells() {
        assert_eq!(
            entropy_from_covers(&[0.5, 0.5, 0.0]),
            entropy_from_covers(&[0.5, 0.5])
        );
    }

    #[test]
    fn entropy_grows_with_depth() {
        // Splitting a balanced 2-piece set into a balanced 4-piece set
        // increases entropy ("it grows with the depth of the set").
        let e2 = entropy_from_covers(&[0.5, 0.5]);
        let e4 = entropy_from_covers(&[0.25; 4]);
        assert!(e4 > e2);
    }

    #[test]
    fn simplicity_is_max_constraints() {
        let q_simple = x_range(0, 7);
        let q_complex = x_range(8, 15)
            .refined("k", Constraint::set(vec![Value::str("hi")]).unwrap())
            .unwrap();
        let seg = Segmentation::new(vec![q_simple, q_complex]);
        assert_eq!(simplicity(&seg), 2);
    }

    #[test]
    fn simplicity_of_wildcards_is_zero() {
        let seg = Segmentation::new(vec![Query::wildcard(&["x"])]);
        assert_eq!(simplicity(&seg), 0);
        assert_eq!(simplicity(&Segmentation::new(vec![])), 0);
    }

    #[test]
    fn breadth_counts_distinct_columns() {
        let q1 = x_range(0, 7);
        let q2 = Query::wildcard(&["x", "k"])
            .refined("k", Constraint::set(vec![Value::str("hi")]).unwrap())
            .unwrap();
        let seg = Segmentation::new(vec![q1, q2]);
        assert_eq!(breadth(&seg), 2);
    }

    #[test]
    fn score_against_data() {
        let t = table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "k"])).unwrap();
        let seg = Segmentation::new(vec![x_range(0, 7), x_range(8, 15)]);
        let s = score(&ex, &seg).unwrap();
        assert!((s.entropy - 2f64.ln()).abs() < 1e-12, "balanced halves");
        assert_eq!(s.simplicity, 1);
        assert_eq!(s.breadth, 1);
        assert_eq!(s.depth, 2);
        assert!((s.balance() - 1.0).abs() < 1e-12);
        assert!((s.entropy_bits() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn score_of_unbalanced_split() {
        let t = table();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "k"])).unwrap();
        let seg = Segmentation::new(vec![x_range(0, 11), x_range(12, 15)]);
        let s = score(&ex, &seg).unwrap();
        assert!(s.balance() < 1.0);
        assert!(s.entropy > 0.0);
    }
}
