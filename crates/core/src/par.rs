//! Feature-gated fork-join adapter for the hot evaluation paths.
//!
//! With the `parallel` feature (default) these helpers fan work out over
//! `charles-parallel`'s order-preserving thread map; without it they are
//! plain sequential iteration. Either way the result vector is in input
//! order and every element is produced by the same pure computation, so
//! **advisor output is bitwise identical with the feature on and off** —
//! the guarantee `tests/parallel_equivalence.rs` pins down.
//!
//! Fallibility: the closures used by the advisor return `CoreResult`.
//! `try_map` evaluates every element (unlike a sequential `?` loop,
//! which short-circuits) and then surfaces the **first** error in input
//! order, so the observable `Err` is the same one the sequential loop
//! would have produced.
//!
//! The hottest caller is the HB-cuts INDEP fan-out
//! (`indep::indep_frontier`): since the incremental pair maintenance
//! landed it receives only the O(k) frontier pairs touching the newly
//! composed candidate per iteration — the input is small but each
//! element is coarse (bitmap AND-count grids), which is exactly the
//! shape this order-preserving map is for.

use crate::error::CoreResult;

#[cfg(feature = "parallel")]
pub(crate) fn map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    charles_parallel::par_map(items, f)
}

#[cfg(not(feature = "parallel"))]
pub(crate) fn map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    F: Fn(&T) -> U,
{
    items.iter().map(f).collect()
}

#[cfg(feature = "parallel")]
pub(crate) fn try_map<T, U, F>(items: &[T], f: F) -> CoreResult<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> CoreResult<U> + Sync,
{
    map(items, f).into_iter().collect()
}

#[cfg(not(feature = "parallel"))]
pub(crate) fn try_map<T, U, F>(items: &[T], f: F) -> CoreResult<Vec<U>>
where
    F: Fn(&T) -> CoreResult<U>,
{
    map(items, f).into_iter().collect()
}
