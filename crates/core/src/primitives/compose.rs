//! COMPOSE (Definition 7): cut the queries of one segmentation on the
//! attributes of another.
//!
//! `COMPOSE(S1, S2) = CUT_att1(CUT_att2(… CUT_attN(S1) …))` where
//! `att1 … attN` are the attributes S2's queries are based on. Note the
//! innermost cut is on `attN`: the attribute list is applied in reverse.
//! Because each CUT recomputes medians *per piece*, composition adapts the
//! split points to the conditional distributions — this is what makes
//! Figure 2's `COMPOSE(A, B)` differ from the plain product `A × B`.

use super::cut::cut_segmentation;
use crate::engine::Explorer;
use crate::error::CoreResult;
use charles_sdl::Segmentation;

/// Compose two segmentations. Returns `None` when no cut succeeded at all
/// (S1 is constant on every attribute of S2).
pub fn compose(
    ex: &Explorer<'_>,
    s1: &Segmentation,
    s2: &Segmentation,
) -> CoreResult<Option<Segmentation>> {
    let attrs = s2.attributes();
    let mut current = s1.clone();
    let mut any = false;
    // Definition 7 nests CUT_attN innermost, so apply attN first.
    for attr in attrs.iter().rev() {
        if let Some(next) = cut_segmentation(ex, &current, attr)? {
            current = next;
            any = true;
        }
    }
    Ok(if any { Some(current) } else { None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::primitives::cut::cut_segmentation;
    use charles_sdl::Query;
    use charles_store::{DataType, TableBuilder, Value};

    /// Boats where the departure year depends on the type (as in Figure 2:
    /// fluits sail early, jachts late).
    fn boats() -> charles_store::Table {
        let mut b = TableBuilder::new("boats");
        b.add_column("type", DataType::Str)
            .add_column("year", DataType::Int);
        let rows = [
            ("fluit", 1700),
            ("fluit", 1720),
            ("fluit", 1735),
            ("fluit", 1744),
            ("jacht", 1750),
            ("jacht", 1760),
            ("jacht", 1770),
            ("jacht", 1780),
        ];
        for (ty, y) in rows {
            b.push_row(vec![Value::str(ty), Value::Int(y)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn compose_cuts_per_piece() {
        let t = boats();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["type", "year"])).unwrap();
        let base = Segmentation::singleton(ex.context().clone());
        let by_type = cut_segmentation(&ex, &base, "type").unwrap().unwrap();
        let by_year = cut_segmentation(&ex, &base, "year").unwrap().unwrap();

        let composed = compose(&ex, &by_type, &by_year).unwrap().unwrap();
        assert_eq!(composed.depth(), 4);
        // Every piece holds exactly 2 boats: each type-half was cut at its
        // *own* year median (1700–1744 median vs 1750–1780 median).
        for q in composed.queries() {
            assert_eq!(ex.count(q).unwrap(), 2, "{q}");
        }
        assert!(composed
            .check_partition(ex.backend(), ex.context_selection())
            .unwrap()
            .is_partition());
    }

    #[test]
    fn compose_applies_attributes_in_reverse() {
        // S2 constrained on two attributes: COMPOSE must cut on both,
        // producing up to depth·4 pieces.
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int)
            .add_column("b", DataType::Int)
            .add_column("c", DataType::Int);
        for i in 0..16i64 {
            b.push_row(vec![Value::Int(i % 4), Value::Int(i / 4), Value::Int(i)])
                .unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["a", "b", "c"])).unwrap();
        let base = Segmentation::singleton(ex.context().clone());
        let s_c = cut_segmentation(&ex, &base, "c").unwrap().unwrap();
        let s_ab = {
            let s_a = cut_segmentation(&ex, &base, "a").unwrap().unwrap();
            cut_segmentation(&ex, &s_a, "b").unwrap().unwrap()
        };
        assert_eq!(s_ab.attributes(), vec!["a", "b"]);
        let composed = compose(&ex, &s_c, &s_ab).unwrap().unwrap();
        // 2 pieces × cut on b × cut on a = 8.
        assert_eq!(composed.depth(), 8);
        assert!(composed
            .check_partition(ex.backend(), ex.context_selection())
            .unwrap()
            .is_partition());
        // Composed queries carry constraints on all three attributes.
        let attrs = composed.attributes();
        for a in ["a", "b", "c"] {
            assert!(attrs.contains(&a), "missing {a} in {attrs:?}");
        }
    }

    #[test]
    fn compose_with_unrelated_constant_attribute_is_none() {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int)
            .add_column("c", DataType::Int);
        for i in 0..4 {
            b.push_row(vec![Value::Int(i), Value::Int(1)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "c"])).unwrap();
        let base = Segmentation::singleton(ex.context().clone());
        let s_x = cut_segmentation(&ex, &base, "x").unwrap().unwrap();
        // A segmentation "based on" the constant attribute c cannot be
        // built by cutting, so hand-craft one for the test via wildcard.
        let fake_c = Segmentation::new(vec![Query::wildcard(&["x", "c"])
            .refined(
                "c",
                charles_sdl::Constraint::set(vec![Value::Int(1)]).unwrap(),
            )
            .unwrap()]);
        assert!(compose(&ex, &s_x, &fake_c).unwrap().is_none());
    }
}
