//! CUT (Definitions 5 & 6): split a query — and by extension a whole
//! segmentation — in two halves along one attribute.
//!
//! * numeric attributes: split at the (exact or sampled) median —
//!   `CUT_att(Q) = {(Q, att: [min, med[), (Q, att: [med, max])}`;
//! * nominal attributes: order the values by descending frequency (low
//!   cardinality) or alphabetically (high cardinality), then split where
//!   the accumulated frequency is closest to 50%.
//!
//! Degenerate pieces are never produced: if a segment cannot be split into
//! two non-empty halves on the attribute (constant column, single
//! category), the cut reports `None` for that query. When cutting a whole
//! segmentation, un-cuttable queries are carried over unchanged so the
//! result remains a partition; if *no* query could be cut the segmentation
//! cut as a whole is `None`.

use crate::engine::Explorer;
use crate::error::CoreResult;
use charles_sdl::{Constraint, Query, Segmentation};
use charles_store::{DataType, FrequencyTable, Value};

/// Cut one query in two along `attr`. Returns `None` when no valid binary
/// split exists.
pub fn cut_query(ex: &Explorer<'_>, q: &Query, attr: &str) -> CoreResult<Option<(Query, Query)>> {
    let sel = ex.selection(q)?;
    if sel.none() {
        return Ok(None);
    }
    let ty = ex.backend().schema().type_of(attr)?;
    let pieces = if ty.is_numeric() {
        numeric_pieces(ex, attr, &sel)?
    } else {
        nominal_pieces(ex, attr, ty, &sel)?
    };
    let Some((left, right)) = pieces else {
        return Ok(None);
    };
    // Refine the query with each piece; both refinements must stay
    // satisfiable (they do by construction — the split points come from
    // values inside the segment).
    match (q.refined(attr, left), q.refined(attr, right)) {
        (Some(l), Some(r)) => Ok(Some((l, r))),
        _ => Ok(None),
    }
}

/// Cut every query of a segmentation along `attr` (Definition 6):
/// `CUT_att(S) = CUT_att(Q_0) ∪ … ∪ CUT_att(Q_L)`.
///
/// Queries with no valid split are kept unchanged (keeps the partition
/// property); `None` when not a single query could be cut.
pub fn cut_segmentation(
    ex: &Explorer<'_>,
    seg: &Segmentation,
    attr: &str,
) -> CoreResult<Option<Segmentation>> {
    let mut out = Vec::with_capacity(seg.depth() * 2);
    let mut any = false;
    for q in seg.queries() {
        match cut_query(ex, q, attr)? {
            Some((l, r)) => {
                any = true;
                out.push(l);
                out.push(r);
            }
            None => out.push(q.clone()),
        }
    }
    Ok(if any {
        Some(Segmentation::new(out))
    } else {
        None
    })
}

/// Median-based pieces for a numeric attribute.
fn numeric_pieces(
    ex: &Explorer<'_>,
    attr: &str,
    sel: &charles_store::Bitmap,
) -> CoreResult<Option<(Constraint, Constraint)>> {
    let Some((min, max)) = ex.backend().min_max(attr, sel)? else {
        return Ok(None);
    };
    if matches!(min.try_cmp(&max), Ok(std::cmp::Ordering::Equal)) {
        return Ok(None); // constant within the segment
    }
    let Some(med) = ex.split_point(attr, sel)? else {
        return Ok(None);
    };

    // Discrete columns (Int/Date): closed integer pieces
    // [min, s] / [s+1, max] with s = clamp(⌊med⌋, min, max−1). Both pieces
    // are guaranteed non-empty: min ≤ s and s+1 ≤ max.
    if let (Value::Int(lo), Value::Int(hi)) = (&min, &max) {
        let s = (med.as_f64().expect("numeric median").floor() as i64).clamp(*lo, *hi - 1);
        let left = Constraint::range(Value::Int(*lo), Value::Int(s)).expect("lo ≤ s");
        let right = Constraint::range(Value::Int(s + 1), Value::Int(*hi)).expect("s+1 ≤ hi");
        return Ok(Some((left, right)));
    }
    if let (Value::Date(lo), Value::Date(hi)) = (&min, &max) {
        let s = (med.as_f64().expect("numeric median").floor() as i64).clamp(*lo, *hi - 1);
        let left = Constraint::range(Value::Date(*lo), Value::Date(s)).expect("lo ≤ s");
        let right = Constraint::range(Value::Date(s + 1), Value::Date(*hi)).expect("s+1 ≤ hi");
        return Ok(Some((left, right)));
    }

    // Continuous columns: the paper's half-open split [min, med[ / [med, max].
    // When duplicates drag the median down to the minimum the left piece
    // would be empty; fall back to the smallest value above the minimum.
    let med_f = med.as_f64().expect("numeric median");
    let min_f = min.as_f64().expect("numeric bound");
    let split = if med_f <= min_f {
        match ex.backend().next_above(attr, sel, &min)? {
            Some(v) => v,
            None => return Ok(None), // single distinct value
        }
    } else {
        med
    };
    let left = Constraint::range_with(min.clone(), split.clone(), false);
    let right = Constraint::range_with(split, max, true);
    match (left, right) {
        (Ok(l), Ok(r)) => Ok(Some((l, r))),
        _ => Ok(None),
    }
}

/// Frequency-ordered pieces for a nominal attribute.
fn nominal_pieces(
    ex: &Explorer<'_>,
    attr: &str,
    ty: DataType,
    sel: &charles_store::Bitmap,
) -> CoreResult<Option<(Constraint, Constraint)>> {
    let (ft, dict) = ex.backend().frequencies(attr, sel)?;
    if ft.cardinality() < 2 {
        return Ok(None);
    }
    // "We choose to sort the values by order of occurrence for columns
    // with low cardinality, and alphabetically otherwise."
    let ordered = if ft.cardinality() <= ex.config().nominal_freq_sort_limit {
        ft.by_frequency()
    } else {
        ft.alphabetical(&dict)
    };
    let Some((split_idx, _)) = FrequencyTable::half_split(&ordered) else {
        return Ok(None);
    };
    let decode = |code: u32| -> Value {
        let s = &dict[code as usize];
        match ty {
            DataType::Bool => Value::Bool(s == "true"),
            _ => Value::str(s.clone()),
        }
    };
    let left: Vec<Value> = ordered[..split_idx]
        .iter()
        .map(|&(c, _)| decode(c))
        .collect();
    let right: Vec<Value> = ordered[split_idx..]
        .iter()
        .map(|&(c, _)| decode(c))
        .collect();
    match (Constraint::set(left), Constraint::set(right)) {
        (Ok(l), Ok(r)) => Ok(Some((l, r))),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, MedianStrategy};
    use charles_store::{DataType, TableBuilder};

    /// The Figure 2 boats: 4 fluits (1000–2000, 2000–5000 tonnage) and 4
    /// jachts, with departure years correlated with the type.
    fn boats() -> charles_store::Table {
        let mut b = TableBuilder::new("boats");
        b.add_column("type", DataType::Str)
            .add_column("tonnage", DataType::Int)
            .add_column("year", DataType::Int);
        let rows = [
            ("fluit", 1200, 1710),
            ("fluit", 1800, 1730),
            ("fluit", 2500, 1745),
            ("fluit", 4000, 1760),
            ("jacht", 1500, 1755),
            ("jacht", 2800, 1765),
            ("jacht", 3500, 1772),
            ("jacht", 4800, 1779),
        ];
        for (ty, t, y) in rows {
            b.push_row(vec![Value::str(ty), Value::Int(t), Value::Int(y)])
                .unwrap();
        }
        b.finish()
    }

    fn explorer(t: &charles_store::Table) -> Explorer<'_> {
        Explorer::new(
            t,
            Config::default(),
            Query::wildcard(&["type", "tonnage", "year"]),
        )
        .unwrap()
    }

    #[test]
    fn numeric_cut_splits_at_median() {
        let t = boats();
        let ex = explorer(&t);
        let ctx = ex.context().clone();
        let (l, r) = cut_query(&ex, &ctx, "tonnage").unwrap().unwrap();
        // 8 values; both halves must have 4 rows.
        assert_eq!(ex.count(&l).unwrap(), 4);
        assert_eq!(ex.count(&r).unwrap(), 4);
        // Pieces partition the context.
        let seg = Segmentation::new(vec![l, r]);
        let report = seg
            .check_partition(ex.backend(), ex.context_selection())
            .unwrap();
        assert!(report.is_partition(), "{report:?}");
    }

    #[test]
    fn nominal_cut_splits_categories() {
        let t = boats();
        let ex = explorer(&t);
        let (l, r) = cut_query(&ex, &ex.context().clone(), "type")
            .unwrap()
            .unwrap();
        assert_eq!(ex.count(&l).unwrap(), 4);
        assert_eq!(ex.count(&r).unwrap(), 4);
        let cs = l.constraint("type").unwrap();
        assert!(matches!(cs, Constraint::Set(v) if v.len() == 1));
    }

    #[test]
    fn cut_on_constant_column_is_none() {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int)
            .add_column("c", DataType::Int);
        for i in 0..4 {
            b.push_row(vec![Value::Int(i), Value::Int(7)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x", "c"])).unwrap();
        assert!(cut_query(&ex, &ex.context().clone(), "c")
            .unwrap()
            .is_none());
    }

    #[test]
    fn cut_on_single_category_is_none() {
        let mut b = TableBuilder::new("t");
        b.add_column("k", DataType::Str);
        for _ in 0..4 {
            b.push_row(vec![Value::str("only")]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["k"])).unwrap();
        assert!(cut_query(&ex, &ex.context().clone(), "k")
            .unwrap()
            .is_none());
    }

    #[test]
    fn skewed_duplicates_still_split_nonempty() {
        // Median equals the minimum: 1,1,1,9 — both halves must be non-empty.
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Float);
        for v in [1.0, 1.0, 1.0, 9.0] {
            b.push_row(vec![Value::Float(v)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x"])).unwrap();
        let (l, r) = cut_query(&ex, &ex.context().clone(), "x").unwrap().unwrap();
        assert_eq!(ex.count(&l).unwrap(), 3);
        assert_eq!(ex.count(&r).unwrap(), 1);
    }

    #[test]
    fn integer_duplicates_skewed_high() {
        // 1,5,5,5: median 5 = max → clamp to s = 4.
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int);
        for v in [1, 5, 5, 5] {
            b.push_row(vec![Value::Int(v)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x"])).unwrap();
        let (l, r) = cut_query(&ex, &ex.context().clone(), "x").unwrap().unwrap();
        assert_eq!(ex.count(&l).unwrap(), 1);
        assert_eq!(ex.count(&r).unwrap(), 3);
    }

    #[test]
    fn cut_of_segmentation_doubles_pieces() {
        let t = boats();
        let ex = explorer(&t);
        let ctx = Segmentation::singleton(ex.context().clone());
        let s1 = cut_segmentation(&ex, &ctx, "type").unwrap().unwrap();
        assert_eq!(s1.depth(), 2);
        let s2 = cut_segmentation(&ex, &s1, "tonnage").unwrap().unwrap();
        assert_eq!(s2.depth(), 4);
        let report = s2
            .check_partition(ex.backend(), ex.context_selection())
            .unwrap();
        assert!(report.is_partition(), "{report:?}");
        // Each type-half is cut at its own median, so all four pieces hold
        // two boats ("this creates semantically coherent segmentations").
        for q in s2.queries() {
            assert_eq!(ex.count(q).unwrap(), 2);
        }
    }

    #[test]
    fn cut_segmentation_keeps_uncuttable_pieces() {
        // One piece is constant on the cut attribute; it must survive
        // unchanged while the other is split.
        let mut b = TableBuilder::new("t");
        b.add_column("k", DataType::Str)
            .add_column("x", DataType::Int);
        for (k, x) in [("a", 1), ("a", 1), ("b", 1), ("b", 9)] {
            b.push_row(vec![Value::str(k), Value::Int(x)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["k", "x"])).unwrap();
        let by_k = cut_segmentation(&ex, &Segmentation::singleton(ex.context().clone()), "k")
            .unwrap()
            .unwrap();
        let by_kx = cut_segmentation(&ex, &by_k, "x").unwrap().unwrap();
        // "a" piece is constant on x → kept; "b" piece splits → 3 total.
        assert_eq!(by_kx.depth(), 3);
        let report = by_kx
            .check_partition(ex.backend(), ex.context_selection())
            .unwrap();
        assert!(report.is_partition(), "{report:?}");
    }

    #[test]
    fn cut_with_sampled_median_still_partitions() {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int);
        for i in 0..1000 {
            b.push_row(vec![Value::Int(i % 97)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(
            &t,
            Config::default().with_median(MedianStrategy::Sampled { size: 64, seed: 3 }),
            Query::wildcard(&["x"]),
        )
        .unwrap();
        let (l, r) = cut_query(&ex, &ex.context().clone(), "x").unwrap().unwrap();
        let seg = Segmentation::new(vec![l.clone(), r]);
        assert!(seg
            .check_partition(ex.backend(), ex.context_selection())
            .unwrap()
            .is_partition());
        // Sampled split should still be roughly balanced.
        let c = ex.cover(&l).unwrap();
        assert!((0.25..=0.75).contains(&c), "cover {c}");
    }

    #[test]
    fn cut_respects_existing_constraint() {
        let t = boats();
        let ex = explorer(&t);
        // Restrict to fluits first, then cut on tonnage: pieces must stay
        // within the fluit subset.
        let fluits = ex
            .context()
            .refined("type", Constraint::set(vec![Value::str("fluit")]).unwrap())
            .unwrap();
        let (l, r) = cut_query(&ex, &fluits, "tonnage").unwrap().unwrap();
        assert_eq!(ex.count(&l).unwrap() + ex.count(&r).unwrap(), 4);
        for q in [&l, &r] {
            assert_eq!(
                q.constraint("type"),
                Some(&Constraint::Set(vec![Value::str("fluit")]))
            );
        }
    }

    #[test]
    fn bool_columns_cut_into_true_false() {
        let mut b = TableBuilder::new("t");
        b.add_column("armed", DataType::Bool);
        for v in [true, true, false, true] {
            b.push_row(vec![Value::Bool(v)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["armed"])).unwrap();
        let (l, r) = cut_query(&ex, &ex.context().clone(), "armed")
            .unwrap()
            .unwrap();
        // Frequency order puts `true` (3 rows) first.
        assert_eq!(
            l.constraint("armed"),
            Some(&Constraint::Set(vec![Value::Bool(true)]))
        );
        assert_eq!(ex.count(&l).unwrap(), 3);
        assert_eq!(ex.count(&r).unwrap(), 1);
    }

    #[test]
    fn alphabetical_ordering_beyond_cardinality_limit() {
        let mut b = TableBuilder::new("t");
        b.add_column("k", DataType::Str);
        // Three categories, limit forced to 2 → alphabetical ordering.
        for k in ["zeta", "alpha", "alpha", "mid"] {
            b.push_row(vec![Value::str(k)]).unwrap();
        }
        let t = b.finish();
        let cfg = Config {
            nominal_freq_sort_limit: 2,
            ..Config::default()
        };
        let ex = Explorer::new(&t, cfg, Query::wildcard(&["k"])).unwrap();
        let (l, _r) = cut_query(&ex, &ex.context().clone(), "k").unwrap().unwrap();
        // Alphabetical: alpha(2), mid(1), zeta(1) → left = {alpha} (closest to 50%).
        assert_eq!(
            l.constraint("k"),
            Some(&Constraint::Set(vec![Value::str("alpha")]))
        );
    }
}
