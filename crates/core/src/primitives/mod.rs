//! The three derivation primitives of §4.1: CUT, COMPOSE and PRODUCT.
//!
//! Everything HB-cuts produces is built from these. The module-level tests
//! of each primitive reproduce the worked example of Figure 2 (fluit/jacht
//! boats split by tonnage and departure year); the full figure is asserted
//! end-to-end in `tests/figure2_primitives.rs` at the workspace root.

mod compose;
mod cut;
mod product;

pub use compose::compose;
pub use cut::{cut_query, cut_segmentation};
pub use product::{product, product_all_cells};
