//! PRODUCT (Definition 8): `S1 × S2 = {(Q_i, Q_j)}` — every pairwise
//! conjunction of a query from each segmentation.
//!
//! The product never recomputes split points (contrast with COMPOSE); it
//! just intersects constraints. Its balance is what betrays dependencies:
//! "if the product of two balanced segmentations is also balanced, then
//! there is no dependency between their variables" — quantified by
//! [`crate::indep::indep`].

use crate::engine::Explorer;
use crate::error::CoreResult;
use charles_sdl::{Query, Segmentation};

/// The SDL product, pruned: cells whose constraints are provably
/// incompatible are dropped, and — when
/// [`crate::Config::prune_empty_products`] is set — cells that select no
/// row are dropped too. Empty cells contribute `0·log 0 = 0` to entropy,
/// so pruning never changes any metric.
pub fn product(
    ex: &Explorer<'_>,
    s1: &Segmentation,
    s2: &Segmentation,
) -> CoreResult<Segmentation> {
    let mut cells = Vec::with_capacity(s1.depth() * s2.depth());
    for q1 in s1.queries() {
        for q2 in s2.queries() {
            if let Some(cell) = q1.conjoin(q2) {
                if ex.config().prune_empty_products && ex.count(&cell)? == 0 {
                    continue;
                }
                cells.push(cell);
            }
        }
    }
    Ok(Segmentation::new(cells))
}

/// The literal Definition 8 product: every `K × L` cell that is not
/// provably empty at the constraint level, without consulting the data.
/// Used by tests that check the definition verbatim.
pub fn product_all_cells(s1: &Segmentation, s2: &Segmentation) -> Segmentation {
    let mut cells: Vec<Query> = Vec::with_capacity(s1.depth() * s2.depth());
    for q1 in s1.queries() {
        for q2 in s2.queries() {
            if let Some(cell) = q1.conjoin(q2) {
                cells.push(cell);
            }
        }
    }
    Segmentation::new(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::primitives::cut::cut_segmentation;
    use charles_store::{DataType, TableBuilder, Value};

    /// Independent attributes: every (a, b) combination equally likely.
    fn independent() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int)
            .add_column("b", DataType::Int);
        for i in 0..4i64 {
            for j in 0..4i64 {
                b.push_row(vec![Value::Int(i), Value::Int(j)]).unwrap();
            }
        }
        b.finish()
    }

    /// Perfectly dependent attributes: b = a.
    fn dependent() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int)
            .add_column("b", DataType::Int);
        for i in 0..16i64 {
            b.push_row(vec![Value::Int(i % 4), Value::Int(i % 4)])
                .unwrap();
        }
        b.finish()
    }

    fn halves<'a>(ex: &Explorer<'a>, attr: &str) -> Segmentation {
        cut_segmentation(ex, &Segmentation::singleton(ex.context().clone()), attr)
            .unwrap()
            .unwrap()
    }

    #[test]
    fn product_of_independent_halves_has_four_even_cells() {
        let t = independent();
        let ex = Explorer::new(
            &t,
            Config::default(),
            charles_sdl::Query::wildcard(&["a", "b"]),
        )
        .unwrap();
        let sa = halves(&ex, "a");
        let sb = halves(&ex, "b");
        let p = product(&ex, &sa, &sb).unwrap();
        assert_eq!(p.depth(), 4);
        for q in p.queries() {
            assert_eq!(ex.count(q).unwrap(), 4, "{q}");
        }
        assert!(p
            .check_partition(ex.backend(), ex.context_selection())
            .unwrap()
            .is_partition());
    }

    #[test]
    fn product_of_dependent_halves_collapses_to_diagonal() {
        let t = dependent();
        let ex = Explorer::new(
            &t,
            Config::default(),
            charles_sdl::Query::wildcard(&["a", "b"]),
        )
        .unwrap();
        let sa = halves(&ex, "a");
        let sb = halves(&ex, "b");
        // With b = a, off-diagonal cells are empty and pruned: 2 cells left.
        let p = product(&ex, &sa, &sb).unwrap();
        assert_eq!(p.depth(), 2);
        // The unpruned Definition 8 product keeps all 4 satisfiable cells.
        let raw = product_all_cells(&sa, &sb);
        assert_eq!(raw.depth(), 4);
    }

    #[test]
    fn pruning_config_controls_empty_cells() {
        let t = dependent();
        let cfg = Config {
            prune_empty_products: false,
            ..Config::default()
        };
        let ex = Explorer::new(&t, cfg, charles_sdl::Query::wildcard(&["a", "b"])).unwrap();
        let sa = halves(&ex, "a");
        let sb = halves(&ex, "b");
        let p = product(&ex, &sa, &sb).unwrap();
        assert_eq!(p.depth(), 4);
        // Even with empty cells retained the set is still a partition
        // (empty segments are vacuously disjoint).
        assert!(p
            .check_partition(ex.backend(), ex.context_selection())
            .unwrap()
            .is_partition());
    }

    #[test]
    fn product_attributes_are_union() {
        let t = independent();
        let ex = Explorer::new(
            &t,
            Config::default(),
            charles_sdl::Query::wildcard(&["a", "b"]),
        )
        .unwrap();
        let p = product(&ex, &halves(&ex, "a"), &halves(&ex, "b")).unwrap();
        assert_eq!(p.attributes(), vec!["a", "b"]);
    }

    #[test]
    fn product_with_singleton_is_identity_on_counts() {
        let t = independent();
        let ex = Explorer::new(
            &t,
            Config::default(),
            charles_sdl::Query::wildcard(&["a", "b"]),
        )
        .unwrap();
        let sa = halves(&ex, "a");
        let id = Segmentation::singleton(ex.context().clone());
        let p = product(&ex, &sa, &id).unwrap();
        assert_eq!(p.depth(), sa.depth());
        for (q, orig) in p.queries().iter().zip(sa.queries()) {
            assert_eq!(ex.count(q).unwrap(), ex.count(orig).unwrap());
        }
    }
}
