//! Quantile cuts (§5.2).
//!
//! "We only consider median cuts. This is a serious limitation. Assume we
//! split the domain of an attribute size \[that\] follows a Gaussian
//! distribution. With the current state of the system, there is no way to
//! obtain a pie-chart displaying the second third of the population.
//! However, this subset is very dense and may be very interesting for a
//! user. We have to develop support for other quantiles."
//!
//! [`quantile_cut_query`] generalises CUT from a binary median split to a
//! `k`-way split at quantiles `1/k, 2/k, …, (k-1)/k`. With `k = 3` on a
//! Gaussian column, the middle piece *is* the dense second third the paper
//! wants to expose; experiment E10 measures the balance gain over
//! iterated median cuts on skewed data.

use crate::engine::Explorer;
use crate::error::CoreResult;
use charles_sdl::{Constraint, Query, Segmentation};
use charles_store::Value;

/// Cut one query into (up to) `k` pieces at equi-depth quantiles.
///
/// Numeric attributes split at the `i/k` quantile values (duplicate split
/// points are collapsed, so fewer than `k` pieces can result); nominal
/// attributes split on accumulated frequency at multiples of `1/k`.
/// Returns `None` when no valid multi-way split exists.
pub fn quantile_cut_query(
    ex: &Explorer<'_>,
    q: &Query,
    attr: &str,
    k: usize,
) -> CoreResult<Option<Vec<Query>>> {
    if k < 2 {
        return Ok(None);
    }
    let sel = ex.selection(q)?;
    if sel.none() {
        return Ok(None);
    }
    let ty = ex.backend().schema().type_of(attr)?;
    if ty.is_numeric() {
        numeric_quantile_pieces(ex, q, attr, k, &sel)
    } else {
        nominal_quantile_pieces(ex, q, attr, ty, k, &sel)
    }
}

/// Quantile-cut every query of a segmentation (the k-ary Definition 6).
pub fn quantile_cut_segmentation(
    ex: &Explorer<'_>,
    seg: &Segmentation,
    attr: &str,
    k: usize,
) -> CoreResult<Option<Segmentation>> {
    let mut out = Vec::new();
    let mut any = false;
    for q in seg.queries() {
        match quantile_cut_query(ex, q, attr, k)? {
            Some(pieces) => {
                any = true;
                out.extend(pieces);
            }
            None => out.push(q.clone()),
        }
    }
    Ok(if any {
        Some(Segmentation::new(out))
    } else {
        None
    })
}

fn numeric_quantile_pieces(
    ex: &Explorer<'_>,
    q: &Query,
    attr: &str,
    k: usize,
    sel: &charles_store::Bitmap,
) -> CoreResult<Option<Vec<Query>>> {
    let Some((min, max)) = ex.backend().min_max(attr, sel)? else {
        return Ok(None);
    };
    if matches!(min.try_cmp(&max), Ok(std::cmp::Ordering::Equal)) {
        return Ok(None);
    }
    // Collect the interior split points, dropping duplicates (heavy
    // duplication can make several quantiles coincide).
    let mut splits: Vec<Value> = Vec::with_capacity(k - 1);
    for i in 1..k {
        let qv = ex
            .backend()
            .quantile(attr, sel, i as f64 / k as f64)?
            .expect("non-empty selection");
        let dominated = splits.iter().any(|s| {
            matches!(
                qv.try_cmp(s),
                Ok(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            )
        });
        let above_min = matches!(qv.try_cmp(&min), Ok(std::cmp::Ordering::Greater));
        // Strictly below the max: a split at the maximum would make the
        // final piece [max, max] overlap its predecessor's closed bound.
        let below_max = matches!(qv.try_cmp(&max), Ok(std::cmp::Ordering::Less));
        if !dominated && above_min && below_max {
            splits.push(qv);
        }
    }
    if splits.is_empty() {
        return Ok(None);
    }
    // Pieces: [min, s1[, [s1, s2[, …, [s_last, max].
    let mut bounds = Vec::with_capacity(splits.len() + 2);
    bounds.push(min.clone());
    bounds.extend(splits);
    bounds.push(max.clone());
    let mut pieces = Vec::with_capacity(bounds.len() - 1);
    for w in bounds.windows(2) {
        let last = matches!(w[1].try_cmp(&max), Ok(std::cmp::Ordering::Equal));
        let constraint = Constraint::range_with(w[0].clone(), w[1].clone(), last);
        let Ok(c) = constraint else { return Ok(None) };
        let Some(piece) = q.refined(attr, c) else {
            return Ok(None);
        };
        pieces.push(piece);
    }
    Ok(Some(pieces))
}

fn nominal_quantile_pieces(
    ex: &Explorer<'_>,
    q: &Query,
    attr: &str,
    ty: charles_store::DataType,
    k: usize,
    sel: &charles_store::Bitmap,
) -> CoreResult<Option<Vec<Query>>> {
    let (ft, dict) = ex.backend().frequencies(attr, sel)?;
    if ft.cardinality() < 2 {
        return Ok(None);
    }
    let ordered = if ft.cardinality() <= ex.config().nominal_freq_sort_limit {
        ft.by_frequency()
    } else {
        ft.alphabetical(&dict)
    };
    let total: usize = ordered.iter().map(|e| e.1).sum();
    let decode = |code: u32| -> Value {
        let s = &dict[code as usize];
        match ty {
            charles_store::DataType::Bool => Value::Bool(s == "true"),
            _ => Value::str(s.clone()),
        }
    };
    // Greedy accumulation into k buckets of ~total/k rows each.
    let per_bucket = total as f64 / k as f64;
    let mut buckets: Vec<Vec<Value>> = vec![Vec::new()];
    let mut acc = 0usize;
    let mut filled = 0usize; // rows in finished buckets
    for (idx, &(code, n)) in ordered.iter().enumerate() {
        let bucket = buckets.last_mut().expect("non-empty");
        bucket.push(decode(code));
        acc += n;
        let remaining_values = ordered.len() - idx - 1;
        let boundary = filled as f64 + per_bucket;
        if acc as f64 >= boundary && remaining_values > 0 && buckets.len() < k {
            filled = acc;
            buckets.push(Vec::new());
        }
    }
    if buckets.len() < 2 {
        return Ok(None);
    }
    let mut pieces = Vec::with_capacity(buckets.len());
    for b in buckets {
        let Ok(c) = Constraint::set(b) else {
            return Ok(None);
        };
        let Some(piece) = q.refined(attr, c) else {
            return Ok(None);
        };
        pieces.push(piece);
    }
    Ok(Some(pieces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::metrics::entropy;
    use charles_store::{DataType, TableBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_table(n: i64) -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int);
        for i in 0..n {
            b.push_row(vec![Value::Int(i)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn tercile_cut_gives_three_even_pieces() {
        let t = uniform_table(99);
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x"])).unwrap();
        let pieces = quantile_cut_query(&ex, &ex.context().clone(), "x", 3)
            .unwrap()
            .unwrap();
        assert_eq!(pieces.len(), 3);
        let counts: Vec<usize> = pieces.iter().map(|p| ex.count(p).unwrap()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 99);
        for c in &counts {
            assert!((30..=36).contains(c), "uneven terciles: {counts:?}");
        }
        let seg = Segmentation::new(pieces);
        assert!(seg
            .check_partition(ex.backend(), ex.context_selection())
            .unwrap()
            .is_partition());
    }

    #[test]
    fn gaussian_middle_third_is_dense_and_narrow() {
        // The paper's motivating case: the middle tercile of a Gaussian is
        // value-narrow but population-dense. Check that the middle piece's
        // value width is far below a third of the full range.
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = TableBuilder::new("t");
        b.add_column("size", DataType::Float);
        for _ in 0..20_000 {
            // Sum of uniforms ≈ Gaussian (Irwin–Hall, shifted).
            let g: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            b.push_row(vec![Value::Float(g * 10.0 + 100.0)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["size"])).unwrap();
        let pieces = quantile_cut_query(&ex, &ex.context().clone(), "size", 3)
            .unwrap()
            .unwrap();
        assert_eq!(pieces.len(), 3);
        let width = |q: &Query| -> f64 {
            match q.constraint("size").unwrap() {
                Constraint::Range { lo, hi, .. } => hi.as_f64().unwrap() - lo.as_f64().unwrap(),
                _ => panic!("expected range"),
            }
        };
        let full: f64 = pieces.iter().map(&width).sum();
        let middle = width(&pieces[1]);
        assert!(
            middle < full / 4.0,
            "middle tercile should be narrow: {middle} of {full}"
        );
        // …yet it holds a third of the population.
        let c = ex.cover(&pieces[1]).unwrap();
        assert!((0.30..=0.36).contains(&c), "cover {c}");
    }

    #[test]
    fn quantile_beats_repeated_median_on_skew_balance() {
        // Zipf-ish skew: median cuts produce a lopsided 4-piece set, while
        // 4-quantile cuts stay balanced (higher entropy). E10 in miniature.
        let mut rng = StdRng::seed_from_u64(9);
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Float);
        for _ in 0..10_000 {
            let u: f64 = rng.gen::<f64>();
            b.push_row(vec![Value::Float((1.0 / (1.0 - u)).min(1e6))])
                .unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x"])).unwrap();
        let ctx = ex.context().clone();
        let quart = Segmentation::new(quantile_cut_query(&ex, &ctx, "x", 4).unwrap().unwrap());
        let e_quart = entropy(&ex, &quart).unwrap();
        // Quantile pieces of a continuous skew should be near-balanced.
        assert!(
            e_quart > 0.95 * (quart.depth() as f64).ln(),
            "entropy {e_quart} of depth {}",
            quart.depth()
        );
    }

    #[test]
    fn nominal_quantile_buckets() {
        let mut b = TableBuilder::new("t");
        b.add_column("k", DataType::Str);
        // Frequencies: a=6, b=3, c=2, d=1 → 3 buckets ≈ 4 rows each.
        for (k, n) in [("a", 6), ("b", 3), ("c", 2), ("d", 1)] {
            for _ in 0..n {
                b.push_row(vec![Value::str(k)]).unwrap();
            }
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["k"])).unwrap();
        let pieces = quantile_cut_query(&ex, &ex.context().clone(), "k", 3)
            .unwrap()
            .unwrap();
        assert!(pieces.len() >= 2 && pieces.len() <= 3, "{}", pieces.len());
        let seg = Segmentation::new(pieces);
        assert!(seg
            .check_partition(ex.backend(), ex.context_selection())
            .unwrap()
            .is_partition());
    }

    #[test]
    fn k_less_than_two_is_none() {
        let t = uniform_table(10);
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x"])).unwrap();
        assert!(quantile_cut_query(&ex, &ex.context().clone(), "x", 1)
            .unwrap()
            .is_none());
    }

    #[test]
    fn constant_column_is_none() {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int);
        for _ in 0..10 {
            b.push_row(vec![Value::Int(7)]).unwrap();
        }
        let t = b.finish();
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x"])).unwrap();
        assert!(quantile_cut_query(&ex, &ex.context().clone(), "x", 4)
            .unwrap()
            .is_none());
    }

    #[test]
    fn segmentation_level_quantile_cut() {
        let t = uniform_table(100);
        let ex = Explorer::new(&t, Config::default(), Query::wildcard(&["x"])).unwrap();
        let base = Segmentation::singleton(ex.context().clone());
        let s = quantile_cut_segmentation(&ex, &base, "x", 5)
            .unwrap()
            .unwrap();
        assert_eq!(s.depth(), 5);
        assert!(s
            .check_partition(ex.backend(), ex.context_selection())
            .unwrap()
            .is_partition());
    }
}
