//! Ranking segmentations.
//!
//! The paper returns HB-cuts results "by order of entropy" and describes
//! the three principles as "a 3-dimensional space to navigate or rank
//! segmentations". [`rank`] implements the paper's default (entropy
//! descending, deterministic tie-breaks); [`rank_weighted`] exposes the
//! 3-dimensional navigation as a weighted score for UIs that let the user
//! slide between legibility (simplicity), information (breadth) and
//! balance (entropy).

use crate::metrics::Score;
use charles_sdl::Segmentation;

/// A segmentation with its score card, as presented to the user.
#[derive(Debug, Clone)]
pub struct Ranked {
    /// The proposed segmentation.
    pub segmentation: Segmentation,
    /// Its metrics.
    pub score: Score,
}

/// Paper-default ranking: entropy descending; ties broken by breadth
/// (descending), then simplicity (ascending), then the rendered form so
/// the order is total and reproducible.
pub fn rank(scored: Vec<(Segmentation, Score)>) -> Vec<Ranked> {
    let mut out: Vec<Ranked> = scored
        .into_iter()
        .map(|(segmentation, score)| Ranked {
            segmentation,
            score,
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .entropy
            .partial_cmp(&a.score.entropy)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.score.breadth.cmp(&a.score.breadth))
            .then(a.score.simplicity.cmp(&b.score.simplicity))
            .then_with(|| a.segmentation.to_string().cmp(&b.segmentation.to_string()))
    });
    out
}

/// Weights for the 3-criteria ranking. Each weight multiplies a
/// normalised criterion in `[0, 1]`; larger composite scores rank first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// Weight of normalised entropy (balance).
    pub entropy: f64,
    /// Weight of normalised breadth.
    pub breadth: f64,
    /// Weight of normalised simplicity (inverted: simpler is better).
    pub simplicity: f64,
}

impl Default for Weights {
    fn default() -> Weights {
        Weights {
            entropy: 1.0,
            breadth: 0.5,
            simplicity: 0.25,
        }
    }
}

/// Composite score of one entry given the maxima over the result set.
fn composite(
    s: &Score,
    w: &Weights,
    max_entropy: f64,
    max_breadth: usize,
    max_simpl: usize,
) -> f64 {
    let e = if max_entropy > 0.0 {
        s.entropy / max_entropy
    } else {
        0.0
    };
    let b = if max_breadth > 0 {
        s.breadth as f64 / max_breadth as f64
    } else {
        0.0
    };
    // Invert simplicity: fewer constraints per query is better.
    let p = if max_simpl > 0 {
        1.0 - s.simplicity as f64 / max_simpl as f64
    } else {
        1.0
    };
    w.entropy * e + w.breadth * b + w.simplicity * p
}

/// Rank by a weighted combination of the three principles.
pub fn rank_weighted(scored: Vec<(Segmentation, Score)>, weights: Weights) -> Vec<Ranked> {
    let max_entropy = scored.iter().map(|(_, s)| s.entropy).fold(0.0f64, f64::max);
    let max_breadth = scored.iter().map(|(_, s)| s.breadth).max().unwrap_or(0);
    let max_simpl = scored.iter().map(|(_, s)| s.simplicity).max().unwrap_or(0);
    let mut out: Vec<(f64, Ranked)> = scored
        .into_iter()
        .map(|(segmentation, score)| {
            let c = composite(&score, &weights, max_entropy, max_breadth, max_simpl);
            (
                c,
                Ranked {
                    segmentation,
                    score,
                },
            )
        })
        .collect();
    out.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                a.1.segmentation
                    .to_string()
                    .cmp(&b.1.segmentation.to_string())
            })
    });
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_sdl::Query;

    fn seg(attrs: &[&str]) -> Segmentation {
        Segmentation::new(vec![Query::wildcard(attrs)])
    }

    fn score(entropy: f64, simplicity: usize, breadth: usize, depth: usize) -> Score {
        Score {
            entropy,
            simplicity,
            breadth,
            depth,
        }
    }

    #[test]
    fn rank_orders_by_entropy() {
        let ranked = rank(vec![
            (seg(&["a"]), score(0.5, 1, 1, 2)),
            (seg(&["b"]), score(1.5, 1, 1, 4)),
            (seg(&["c"]), score(1.0, 1, 1, 3)),
        ]);
        let names: Vec<usize> = ranked.iter().map(|r| r.score.depth).collect();
        assert_eq!(names, vec![4, 3, 2]);
    }

    #[test]
    fn rank_breaks_entropy_ties_by_breadth_then_simplicity() {
        let ranked = rank(vec![
            (seg(&["a"]), score(1.0, 3, 1, 2)),
            (seg(&["b"]), score(1.0, 1, 2, 2)),
            (seg(&["c"]), score(1.0, 1, 1, 2)),
        ]);
        assert_eq!(ranked[0].score.breadth, 2);
        assert_eq!(ranked[1].score.simplicity, 1);
        assert_eq!(ranked[2].score.simplicity, 3);
    }

    #[test]
    fn weighted_rank_can_prefer_breadth() {
        let w = Weights {
            entropy: 0.0,
            breadth: 1.0,
            simplicity: 0.0,
        };
        let ranked = rank_weighted(
            vec![
                (seg(&["a"]), score(10.0, 1, 1, 2)),
                (seg(&["b"]), score(0.1, 1, 3, 2)),
            ],
            w,
        );
        assert_eq!(ranked[0].score.breadth, 3);
    }

    #[test]
    fn weighted_rank_default_still_values_entropy_first() {
        let ranked = rank_weighted(
            vec![
                (seg(&["a"]), score(2.0, 1, 1, 4)),
                (seg(&["b"]), score(0.2, 1, 1, 2)),
            ],
            Weights::default(),
        );
        assert_eq!(ranked[0].score.depth, 4);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(rank(vec![]).is_empty());
        assert!(rank_weighted(vec![], Weights::default()).is_empty());
    }
}
