//! Drill-down exploration sessions.
//!
//! The paper's interaction loop (§2): "the user specifies a population he
//! is interested in … The system then generates several segmentations and
//! presents them in a ranked list … The user can then select one SDL
//! query, and submit it for further exploration." A [`Session`] keeps the
//! breadcrumb trail of contexts so the user can drill in and back out.

use crate::advisor::{Advice, Advisor};
use crate::config::Config;
use crate::error::{CoreError, CoreResult};
use charles_sdl::{parse_query, Query};
use charles_store::Backend;

/// An interactive exploration session over one backend.
pub struct Session<'a> {
    advisor: Advisor<'a>,
    /// Breadcrumbs: every context visited, current one last. Invariant:
    /// `history` and `advice` are non-empty and aligned after `start`.
    history: Vec<Query>,
    advice: Vec<Advice>,
}

impl<'a> Session<'a> {
    /// Open a session with the paper-default configuration.
    pub fn new(backend: &'a dyn Backend) -> Session<'a> {
        Session {
            advisor: Advisor::new(backend),
            history: Vec::new(),
            advice: Vec::new(),
        }
    }

    /// Open a session with an explicit configuration.
    pub fn with_config(backend: &'a dyn Backend, config: Config) -> Session<'a> {
        Session {
            advisor: Advisor::with_config(backend, config),
            history: Vec::new(),
            advice: Vec::new(),
        }
    }

    /// Enter the initial context (SDL text) and get the first advice.
    pub fn start(&mut self, sdl: &str) -> CoreResult<&Advice> {
        let q = parse_query(sdl, self.backend().schema())?;
        self.start_query(q)
    }

    /// Enter the initial context (parsed query).
    pub fn start_query(&mut self, context: Query) -> CoreResult<&Advice> {
        let advice = self.advisor.advise(context.clone())?;
        self.history.clear();
        self.advice.clear();
        self.history.push(context);
        self.advice.push(advice);
        Ok(self.current().expect("just pushed"))
    }

    /// The advice for the current context.
    pub fn current(&self) -> Option<&Advice> {
        self.advice.last()
    }

    /// The current context query.
    pub fn context(&self) -> Option<&Query> {
        self.history.last()
    }

    /// Depth of the breadcrumb trail (1 = initial context).
    pub fn depth(&self) -> usize {
        self.history.len()
    }

    /// Drill into segment `seg_idx` of ranked answer `rank_idx`: that
    /// segment's query becomes the new context.
    ///
    /// A segment whose rows are uniform in every context attribute is a
    /// legitimate end of the drill-down path, not a failure:
    /// [`Advisor::advise`] yields an [`Advice`] with an empty `ranked`
    /// list for it (the breadcrumb is still pushed, so
    /// [`Session::back`] works as usual).
    pub fn drill(&mut self, rank_idx: usize, seg_idx: usize) -> CoreResult<&Advice> {
        let current = self
            .current()
            .ok_or_else(|| CoreError::BadConfig("session not started".into()))?;
        let target = current
            .segment(rank_idx, seg_idx)
            .ok_or_else(|| {
                CoreError::BadConfig(format!(
                    "no segment ({rank_idx}, {seg_idx}) in current advice"
                ))
            })?
            .clone();
        let advice = self.advisor.advise(target.clone())?;
        self.history.push(target);
        self.advice.push(advice);
        Ok(self.current().expect("just pushed"))
    }

    /// Go back one level. Returns the advice of the restored context, or
    /// `None` when already at the root.
    pub fn back(&mut self) -> Option<&Advice> {
        if self.history.len() <= 1 {
            return None;
        }
        self.history.pop();
        self.advice.pop();
        self.current()
    }

    /// The full breadcrumb trail, oldest first.
    pub fn breadcrumbs(&self) -> &[Query] {
        &self.history
    }

    /// The backend being explored.
    pub fn backend(&self) -> &'a dyn Backend {
        self.advisor.backend()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_store::{DataType, TableBuilder, Value};

    fn table() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("kind", DataType::Str)
            .add_column("size", DataType::Int);
        for i in 0..64i64 {
            let kind = if i % 2 == 0 { "even" } else { "odd" };
            b.push_row(vec![Value::str(kind), Value::Int(i)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn start_drill_back_loop() {
        let t = table();
        let mut s = Session::new(&t);
        let first = s.start("(kind: , size: )").unwrap();
        assert_eq!(first.context_size, 64);
        assert_eq!(s.depth(), 1);

        let drilled = s.drill(0, 0).unwrap();
        assert!(drilled.context_size < 64);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.breadcrumbs().len(), 2);

        let restored = s.back().unwrap();
        assert_eq!(restored.context_size, 64);
        assert_eq!(s.depth(), 1);
        // Back at the root: no further back.
        assert!(s.back().is_none());
    }

    #[test]
    fn drill_into_uniform_segment_is_a_leaf() {
        // Four identical rows per kind: after drilling into one kind the
        // remaining rows are constant in every attribute, which must end
        // the path gracefully (empty advice), not error.
        let mut b = TableBuilder::new("t");
        b.add_column("kind", DataType::Str)
            .add_column("size", DataType::Int);
        for _ in 0..4 {
            b.push_row(vec![Value::str("a"), Value::Int(1)]).unwrap();
            b.push_row(vec![Value::str("b"), Value::Int(2)]).unwrap();
        }
        let t = b.finish();
        let mut s = Session::new(&t);
        s.start("(kind: , size: )").unwrap();
        let deeper = s.drill(0, 0).unwrap();
        assert!(deeper.ranked.is_empty());
        assert_eq!(deeper.context_size, 4);
        // The leaf still explains itself: all attributes skipped, loop
        // stopped for lack of candidates.
        assert_eq!(deeper.trace.skipped, vec!["kind", "size"]);
        assert_eq!(
            deeper.trace.stop,
            Some(crate::hbcuts::StopReason::ExhaustedCandidates)
        );
        assert_eq!(s.depth(), 2);
        // The breadcrumb still unwinds.
        assert!(s.back().is_some());
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn drill_out_of_range_errors() {
        let t = table();
        let mut s = Session::new(&t);
        s.start("(kind: , size: )").unwrap();
        assert!(s.drill(99, 0).is_err());
        // Session state unchanged after a failed drill.
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn drill_before_start_errors() {
        let t = table();
        let mut s = Session::new(&t);
        assert!(s.drill(0, 0).is_err());
        assert!(s.current().is_none());
        assert!(s.context().is_none());
    }

    #[test]
    fn restart_resets_history() {
        let t = table();
        let mut s = Session::new(&t);
        s.start("(kind: , size: )").unwrap();
        s.drill(0, 0).unwrap();
        s.start("(size: )").unwrap();
        assert_eq!(s.depth(), 1);
    }
}
