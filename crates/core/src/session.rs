//! Drill-down exploration sessions.
//!
//! The paper's interaction loop (§2): "the user specifies a population he
//! is interested in … The system then generates several segmentations and
//! presents them in a ranked list … The user can then select one SDL
//! query, and submit it for further exploration." A [`Session`] keeps the
//! breadcrumb trail of contexts so the user can drill in and back out.

use crate::advisor::{Advice, Advisor};
use crate::cache::AdviceCache;
use crate::config::Config;
use crate::error::{CoreError, CoreResult};
use charles_sdl::{parse_query, Query};
use charles_store::Backend;
use std::sync::Arc;

/// An interactive exploration session over one backend.
pub struct Session<'a> {
    advisor: Advisor<'a>,
    /// Breadcrumbs: every context visited, current one last. Invariant:
    /// `history` and `advice` are non-empty and aligned after `start`.
    history: Vec<Query>,
    advice: Vec<Advice>,
}

impl<'a> Session<'a> {
    /// Open a session with the paper-default configuration.
    pub fn new(backend: &'a dyn Backend) -> Session<'a> {
        Session {
            advisor: Advisor::new(backend),
            history: Vec::new(),
            advice: Vec::new(),
        }
    }

    /// Open a session with an explicit configuration.
    pub fn with_config(backend: &'a dyn Backend, config: Config) -> Session<'a> {
        Session {
            advisor: Advisor::with_config(backend, config),
            history: Vec::new(),
            advice: Vec::new(),
        }
    }

    /// Enter the initial context (SDL text) and get the first advice.
    pub fn start(&mut self, sdl: &str) -> CoreResult<&Advice> {
        let q = parse_query(sdl, self.backend().schema())?;
        self.start_query(q)
    }

    /// Enter the initial context (parsed query).
    pub fn start_query(&mut self, context: Query) -> CoreResult<&Advice> {
        let advice = self.advisor.advise(context.clone())?;
        self.history.clear();
        self.advice.clear();
        self.history.push(context);
        self.advice.push(advice);
        Ok(self.current().expect("just pushed"))
    }

    /// The advice for the current context.
    pub fn current(&self) -> Option<&Advice> {
        self.advice.last()
    }

    /// The current context query.
    pub fn context(&self) -> Option<&Query> {
        self.history.last()
    }

    /// Depth of the breadcrumb trail (1 = initial context).
    pub fn depth(&self) -> usize {
        self.history.len()
    }

    /// Drill into segment `seg_idx` of ranked answer `rank_idx`: that
    /// segment's query becomes the new context.
    ///
    /// A segment whose rows are uniform in every context attribute is a
    /// legitimate end of the drill-down path, not a failure:
    /// [`Advisor::advise`] yields an [`Advice`] with an empty `ranked`
    /// list for it (the breadcrumb is still pushed, so
    /// [`Session::back`] works as usual).
    pub fn drill(&mut self, rank_idx: usize, seg_idx: usize) -> CoreResult<&Advice> {
        let current = self.current().ok_or(CoreError::SessionNotStarted)?;
        let target = current
            .segment(rank_idx, seg_idx)
            .ok_or(CoreError::NoSuchSegment { rank_idx, seg_idx })?
            .clone();
        let advice = self.advisor.advise(target.clone())?;
        self.history.push(target);
        self.advice.push(advice);
        Ok(self.current().expect("just pushed"))
    }

    /// Go back one level. Returns the advice of the restored context, or
    /// `None` when already at the root (see [`Session::try_back`] for the
    /// error-reporting variant).
    pub fn back(&mut self) -> Option<&Advice> {
        self.try_back().ok()
    }

    /// Go back one level, with a stable error instead of a silent no-op:
    /// [`CoreError::SessionNotStarted`] before `start`,
    /// [`CoreError::AtRoot`] when the trail has nowhere to unwind.
    pub fn try_back(&mut self) -> CoreResult<&Advice> {
        match self.history.len() {
            0 => Err(CoreError::SessionNotStarted),
            1 => Err(CoreError::AtRoot),
            _ => {
                self.history.pop();
                self.advice.pop();
                Ok(self.current().expect("history was ≥ 2 deep"))
            }
        }
    }

    /// The full breadcrumb trail, oldest first.
    pub fn breadcrumbs(&self) -> &[Query] {
        &self.history
    }

    /// The backend being explored.
    pub fn backend(&self) -> &'a dyn Backend {
        self.advisor.backend()
    }
}

/// An exploration session that **owns** its backend (via `Arc`) — the
/// form a server needs, where sessions are long-lived state detached
/// from any caller's stack frame.
///
/// Differences from the borrowed [`Session`]:
///
/// * the backend is shared (`Arc<dyn Backend>`), so many sessions can
///   explore one dataset concurrently;
/// * every advised context is **canonicalized** first
///   ([`Query::canonicalized`]) — the session's identity for a context
///   is its canonical form, which is what makes advice shareable across
///   sessions;
/// * an optional [`AdviceCache`] can be attached, making equivalent
///   contexts across sessions cost exactly one advisor run;
/// * advice is held as `Arc<Advice>` so cached answers are shared, not
///   copied, per session.
///
/// With or without a cache the advice returned for a context is
/// byte-identical to `Advisor::advise(context.canonicalized())` on the
/// same backend and config.
pub struct OwnedSession {
    backend: Arc<dyn Backend>,
    config: Config,
    cache: Option<Arc<AdviceCache>>,
    /// Breadcrumbs of canonical contexts; aligned with `advice`.
    history: Vec<Query>,
    advice: Vec<Arc<Advice>>,
}

impl OwnedSession {
    /// Open a session with the paper-default configuration.
    pub fn new(backend: Arc<dyn Backend>) -> OwnedSession {
        OwnedSession::with_config(backend, Config::default())
    }

    /// Open a session with an explicit configuration.
    pub fn with_config(backend: Arc<dyn Backend>, config: Config) -> OwnedSession {
        OwnedSession {
            backend,
            config,
            cache: None,
            history: Vec::new(),
            advice: Vec::new(),
        }
    }

    /// Attach a shared advice cache: contexts advised by this session
    /// become reusable by every other session holding the same cache.
    /// The cache must only be shared between sessions over the same
    /// backend and config.
    pub fn with_cache(mut self, cache: Arc<AdviceCache>) -> OwnedSession {
        self.cache = Some(cache);
        self
    }

    fn advise(&self, context: Query) -> CoreResult<Arc<Advice>> {
        let advisor = Advisor::with_config(self.backend.as_ref(), self.config.clone());
        match &self.cache {
            Some(cache) => cache.advise_cached(&advisor, context),
            None => advisor.advise(context.canonicalized()).map(Arc::new),
        }
    }

    /// Enter the initial context (SDL text) and get the first advice.
    pub fn start(&mut self, sdl: &str) -> CoreResult<&Arc<Advice>> {
        let q = parse_query(sdl, self.backend.schema())?;
        self.start_query(q)
    }

    /// Enter the initial context (parsed query). Resets any existing
    /// breadcrumb trail.
    pub fn start_query(&mut self, context: Query) -> CoreResult<&Arc<Advice>> {
        let advice = self.advise(context)?;
        self.history.clear();
        self.advice.clear();
        // The breadcrumb is the context actually advised on (canonical).
        self.history.push(advice.context.clone());
        self.advice.push(advice);
        Ok(self.current().expect("just pushed"))
    }

    /// Drill into segment `seg_idx` of ranked answer `rank_idx`. Stable
    /// errors: [`CoreError::SessionNotStarted`] before `start`,
    /// [`CoreError::NoSuchSegment`] for an out-of-range pair — the
    /// session state is unchanged on error.
    pub fn drill(&mut self, rank_idx: usize, seg_idx: usize) -> CoreResult<&Arc<Advice>> {
        let current = self.current().ok_or(CoreError::SessionNotStarted)?;
        let target = current
            .segment(rank_idx, seg_idx)
            .ok_or(CoreError::NoSuchSegment { rank_idx, seg_idx })?
            .clone();
        let advice = self.advise(target)?;
        self.history.push(advice.context.clone());
        self.advice.push(advice);
        Ok(self.current().expect("just pushed"))
    }

    /// Go back one level with a stable error: see [`Session::try_back`].
    pub fn try_back(&mut self) -> CoreResult<&Arc<Advice>> {
        match self.history.len() {
            0 => Err(CoreError::SessionNotStarted),
            1 => Err(CoreError::AtRoot),
            _ => {
                self.history.pop();
                self.advice.pop();
                Ok(self.current().expect("history was ≥ 2 deep"))
            }
        }
    }

    /// Go back one level; `None` at the root (compat wrapper).
    pub fn back(&mut self) -> Option<&Arc<Advice>> {
        self.try_back().ok()
    }

    /// The advice for the current context.
    pub fn current(&self) -> Option<&Arc<Advice>> {
        self.advice.last()
    }

    /// The current (canonical) context query.
    pub fn context(&self) -> Option<&Query> {
        self.history.last()
    }

    /// Depth of the breadcrumb trail (1 = initial context).
    pub fn depth(&self) -> usize {
        self.history.len()
    }

    /// The full breadcrumb trail of canonical contexts, oldest first.
    pub fn breadcrumbs(&self) -> &[Query] {
        &self.history
    }

    /// The shared backend being explored.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// The configuration in force.
    pub fn config(&self) -> &Config {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_store::{DataType, TableBuilder, Value};

    fn table() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("kind", DataType::Str)
            .add_column("size", DataType::Int);
        for i in 0..64i64 {
            let kind = if i % 2 == 0 { "even" } else { "odd" };
            b.push_row(vec![Value::str(kind), Value::Int(i)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn start_drill_back_loop() {
        let t = table();
        let mut s = Session::new(&t);
        let first = s.start("(kind: , size: )").unwrap();
        assert_eq!(first.context_size, 64);
        assert_eq!(s.depth(), 1);

        let drilled = s.drill(0, 0).unwrap();
        assert!(drilled.context_size < 64);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.breadcrumbs().len(), 2);

        let restored = s.back().unwrap();
        assert_eq!(restored.context_size, 64);
        assert_eq!(s.depth(), 1);
        // Back at the root: no further back.
        assert!(s.back().is_none());
    }

    #[test]
    fn drill_into_uniform_segment_is_a_leaf() {
        // Four identical rows per kind: after drilling into one kind the
        // remaining rows are constant in every attribute, which must end
        // the path gracefully (empty advice), not error.
        let mut b = TableBuilder::new("t");
        b.add_column("kind", DataType::Str)
            .add_column("size", DataType::Int);
        for _ in 0..4 {
            b.push_row(vec![Value::str("a"), Value::Int(1)]).unwrap();
            b.push_row(vec![Value::str("b"), Value::Int(2)]).unwrap();
        }
        let t = b.finish();
        let mut s = Session::new(&t);
        s.start("(kind: , size: )").unwrap();
        let deeper = s.drill(0, 0).unwrap();
        assert!(deeper.ranked.is_empty());
        assert_eq!(deeper.context_size, 4);
        // The leaf still explains itself: all attributes skipped, loop
        // stopped for lack of candidates.
        assert_eq!(deeper.trace.skipped, vec!["kind", "size"]);
        assert_eq!(
            deeper.trace.stop,
            Some(crate::hbcuts::StopReason::ExhaustedCandidates)
        );
        assert_eq!(s.depth(), 2);
        // The breadcrumb still unwinds.
        assert!(s.back().is_some());
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn drill_out_of_range_errors() {
        let t = table();
        let mut s = Session::new(&t);
        s.start("(kind: , size: )").unwrap();
        // The error is stable and carries the offending indices.
        assert_eq!(
            s.drill(99, 0).unwrap_err(),
            CoreError::NoSuchSegment {
                rank_idx: 99,
                seg_idx: 0
            }
        );
        assert_eq!(
            s.drill(0, 42).unwrap_err(),
            CoreError::NoSuchSegment {
                rank_idx: 0,
                seg_idx: 42
            }
        );
        // Session state unchanged after a failed drill.
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn drill_before_start_errors() {
        let t = table();
        let mut s = Session::new(&t);
        assert_eq!(s.drill(0, 0).unwrap_err(), CoreError::SessionNotStarted);
        assert!(s.current().is_none());
        assert!(s.context().is_none());
    }

    #[test]
    fn try_back_has_stable_errors() {
        let t = table();
        let mut s = Session::new(&t);
        // Empty history: not started.
        assert_eq!(s.try_back().unwrap_err(), CoreError::SessionNotStarted);
        s.start("(kind: , size: )").unwrap();
        // At the root: AtRoot, and the state is untouched.
        assert_eq!(s.try_back().unwrap_err(), CoreError::AtRoot);
        assert_eq!(s.depth(), 1);
        s.drill(0, 0).unwrap();
        assert_eq!(s.try_back().unwrap().context_size, 64);
        assert_eq!(s.try_back().unwrap_err(), CoreError::AtRoot);
    }

    #[test]
    fn restart_resets_history() {
        let t = table();
        let mut s = Session::new(&t);
        s.start("(kind: , size: )").unwrap();
        s.drill(0, 0).unwrap();
        s.start("(size: )").unwrap();
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn owned_session_start_drill_back_loop() {
        let backend: Arc<dyn Backend> = Arc::new(table());
        let mut s = OwnedSession::new(backend);
        let first = s.start("(size: , kind: )").unwrap();
        assert_eq!(first.context_size, 64);
        // Contexts are canonicalized: attribute order is sorted.
        assert_eq!(s.context().unwrap().to_string(), "(kind: , size: )");
        let drilled = s.drill(0, 0).unwrap();
        assert!(drilled.context_size < 64);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.breadcrumbs().len(), 2);
        assert_eq!(s.try_back().unwrap().context_size, 64);
        assert_eq!(s.try_back().unwrap_err(), CoreError::AtRoot);
        assert!(s.drill(9, 9).unwrap_err().to_string().contains("(9, 9)"));
    }

    #[test]
    fn owned_session_matches_direct_advisor_bytes() {
        let t = table();
        let backend: Arc<dyn Backend> = Arc::new(table());
        let mut s = OwnedSession::new(backend);
        let served = s.start("(size: , kind: )").unwrap().clone();
        let direct = Advisor::new(&t).advise_str("(kind: , size: )").unwrap();
        assert_eq!(
            format!("{:?}", served.ranked),
            format!("{:?}", direct.ranked)
        );
        assert_eq!(format!("{:?}", served.trace), format!("{:?}", direct.trace));
    }

    #[test]
    fn repeated_attribute_context_collapses_to_merged_breadcrumb() {
        let backend: Arc<dyn Backend> = Arc::new(table());
        let mut s = OwnedSession::new(backend);
        s.start("(size: [0,40], size: [10,99], kind: )").unwrap();
        // The breadcrumb is the analyzed context: merged and canonical.
        assert_eq!(s.context().unwrap().to_string(), "(kind: , size: [10,40])");
        assert!(!s.context().unwrap().has_repeated_attributes());
    }

    #[test]
    fn unsatisfiable_start_leaves_the_session_unstarted() {
        let backend: Arc<dyn Backend> = Arc::new(table());
        let mut s = OwnedSession::new(backend);
        assert_eq!(
            s.start("(size: [0,10], size: [20,30])").unwrap_err(),
            CoreError::UnsatisfiableContext
        );
        assert!(s.current().is_none());
        assert_eq!(s.depth(), 0);
        // And an ill-typed context reports its diagnostics.
        match s.start("(size: {'abc'})").unwrap_err() {
            CoreError::InvalidContext(diags) => {
                assert_eq!(diags[0].code, charles_sdl::DiagnosticCode::TypeMismatch);
            }
            other => panic!("expected InvalidContext, got {other:?}"),
        }
    }

    #[test]
    fn owned_sessions_share_advice_through_the_cache() {
        let backend: Arc<dyn Backend> = Arc::new(table());
        let cache = Arc::new(crate::cache::AdviceCache::with_shards(4));
        let mut s1 = OwnedSession::new(Arc::clone(&backend)).with_cache(Arc::clone(&cache));
        let mut s2 = OwnedSession::new(Arc::clone(&backend)).with_cache(Arc::clone(&cache));
        let a1 = s1.start("(kind: , size: )").unwrap().clone();
        // Equivalent but permuted context: must reuse the same entry.
        let a2 = s2.start("(size: , kind: )").unwrap().clone();
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(cache.stats().runs, 1);
        // Drilling the same segment from both sessions shares too.
        let d1 = s1.drill(0, 0).unwrap().clone();
        let d2 = s2.drill(0, 0).unwrap().clone();
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!(cache.stats().runs, 2);
    }
}
