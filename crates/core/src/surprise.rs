//! Surprise scoring — the "interestingness" hook the paper left open.
//!
//! §5.2: "The overall evaluation and ranking process can be greatly
//! improved with other types of knowledge. We do not use any notion of
//! 'interestingness' or 'surprise'." §6.3 points at Sarawagi et al.'s
//! discovery-driven exploration as the reference for deviation-based
//! interest.
//!
//! This module implements that notion in Charles' terms: a segment is
//! *surprising* when the attributes **not** used by its defining query
//! are distributed very differently inside the segment than in the whole
//! context — i.e. the query taught us something it did not literally say.
//! Deviation is measured per attribute:
//!
//! * numeric — standardised mean shift `|mean_seg − mean_ctx| / σ_ctx`;
//! * nominal — total variation distance between the value distributions.
//!
//! A segment's surprise is the maximum deviation over its unused
//! attributes; a segmentation's surprise is the cover-weighted mean of
//! its segments'. [`rank_by_surprise`] re-orders advisor output by it —
//! an alternative lens to the paper's entropy ranking.

use crate::engine::Explorer;
use crate::error::CoreResult;
use crate::ranking::Ranked;
use charles_sdl::{Query, Segmentation};
use charles_store::Bitmap;

/// Surprise report for one segmentation.
#[derive(Debug, Clone, PartialEq)]
pub struct Surprise {
    /// Per-segment scores `(query rendering, surprise)`.
    pub per_segment: Vec<(String, f64)>,
    /// Cover-weighted mean of the segment scores.
    pub weighted: f64,
}

/// Compute the surprise of every segment of a segmentation.
pub fn surprise(ex: &Explorer<'_>, seg: &Segmentation) -> CoreResult<Surprise> {
    let n = ex.context_size() as f64;
    let context_sel = ex.context_selection().clone();
    let mut per_segment = Vec::with_capacity(seg.depth());
    let mut weighted = 0.0;
    for q in seg.queries() {
        let sel = ex.selection(q)?;
        let nj = sel.count_ones() as f64;
        if nj == 0.0 {
            per_segment.push((q.to_string(), 0.0));
            continue;
        }
        let s = segment_surprise(ex, q, &sel, &context_sel)?;
        weighted += nj / n * s;
        per_segment.push((q.to_string(), s));
    }
    Ok(Surprise {
        per_segment,
        weighted,
    })
}

/// Maximum deviation of the segment from the context over the attributes
/// the query does **not** constrain.
fn segment_surprise(
    ex: &Explorer<'_>,
    q: &Query,
    sel: &Bitmap,
    context: &Bitmap,
) -> CoreResult<f64> {
    let constrained = q.constrained_attributes();
    let mut max_dev = 0.0f64;
    for attr in ex.attributes() {
        if constrained.contains(&attr) {
            continue; // the query already says so — not a surprise
        }
        let ty = ex.backend().schema().type_of(attr)?;
        let dev = if ty.is_numeric() {
            match (
                ex.backend().mean_and_var(attr, sel)?,
                ex.backend().mean_and_var(attr, context)?,
            ) {
                (Some((m_seg, _)), Some((m_ctx, var_ctx))) if var_ctx > 0.0 => {
                    (m_seg - m_ctx).abs() / var_ctx.sqrt()
                }
                _ => 0.0,
            }
        } else {
            let (ft_seg, dict) = ex.backend().frequencies(attr, sel)?;
            let (ft_ctx, _) = ex.backend().frequencies(attr, context)?;
            total_variation(&ft_seg, &ft_ctx, dict.len())
        };
        max_dev = max_dev.max(dev);
    }
    Ok(max_dev)
}

/// Total variation distance between two frequency tables over the same
/// dictionary: `½ Σ_v |p(v) − q(v)|` ∈ [0, 1].
fn total_variation(
    a: &charles_store::FrequencyTable,
    b: &charles_store::FrequencyTable,
    dict_len: usize,
) -> f64 {
    let (ta, tb) = (a.total() as f64, b.total() as f64);
    if ta == 0.0 || tb == 0.0 {
        return 0.0;
    }
    let mut pa = vec![0.0f64; dict_len];
    for &(code, c) in a.entries() {
        pa[code as usize] = c as f64 / ta;
    }
    let mut pb = vec![0.0f64; dict_len];
    for &(code, c) in b.entries() {
        if (code as usize) < dict_len {
            pb[code as usize] = c as f64 / tb;
        }
    }
    0.5 * pa.iter().zip(&pb).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

/// Re-rank advisor output by surprise (descending), tie-broken by the
/// original entropy order.
pub fn rank_by_surprise(ex: &Explorer<'_>, ranked: Vec<Ranked>) -> CoreResult<Vec<(f64, Ranked)>> {
    let mut scored: Vec<(f64, Ranked)> = Vec::with_capacity(ranked.len());
    for r in ranked {
        let s = surprise(ex, &r.segmentation)?;
        scored.push((s.weighted, r));
    }
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                b.1.score
                    .entropy
                    .partial_cmp(&a.1.score.entropy)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    Ok(scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::primitives::cut_segmentation;
    use charles_store::{DataType, TableBuilder, Value};

    /// kind "a" rows have large y; kind "b" rows small y; z is pure noise.
    fn table() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("kind", DataType::Str)
            .add_column("y", DataType::Int)
            .add_column("z", DataType::Int);
        for i in 0..60i64 {
            let (kind, y) = if i % 2 == 0 {
                ("a", 100 + i % 7)
            } else {
                ("b", i % 7)
            };
            b.push_row(vec![Value::str(kind), Value::Int(y), Value::Int(i % 5)])
                .unwrap();
        }
        b.finish()
    }

    fn explorer(t: &charles_store::Table) -> Explorer<'_> {
        Explorer::new(
            t,
            Config::default(),
            charles_sdl::Query::wildcard(&["kind", "y", "z"]),
        )
        .unwrap()
    }

    #[test]
    fn informative_split_is_surprising() {
        // Splitting on kind shifts the (unconstrained) y mean by ~±1σ.
        let t = table();
        let ex = explorer(&t);
        let seg = cut_segmentation(&ex, &Segmentation::singleton(ex.context().clone()), "kind")
            .unwrap()
            .unwrap();
        let s = surprise(&ex, &seg).unwrap();
        assert!(s.weighted > 0.8, "weighted surprise {}", s.weighted);
        for (_, v) in &s.per_segment {
            assert!(*v > 0.8);
        }
    }

    #[test]
    fn noise_split_is_not_surprising() {
        let t = table();
        let ex = explorer(&t);
        let seg = cut_segmentation(&ex, &Segmentation::singleton(ex.context().clone()), "z")
            .unwrap()
            .unwrap();
        let s = surprise(&ex, &seg).unwrap();
        // z says nothing about kind or y.
        assert!(s.weighted < 0.3, "weighted surprise {}", s.weighted);
    }

    #[test]
    fn constrained_attributes_do_not_count() {
        // A segment defined on *all* attributes can never be surprising.
        let t = table();
        let ex = explorer(&t);
        let mut seg = Segmentation::singleton(ex.context().clone());
        for attr in ["kind", "y", "z"] {
            if let Some(next) = cut_segmentation(&ex, &seg, attr).unwrap() {
                seg = next;
            }
        }
        let s = surprise(&ex, &seg).unwrap();
        assert_eq!(s.weighted, 0.0);
    }

    #[test]
    fn rank_by_surprise_prefers_informative_splits() {
        let t = table();
        let ex = explorer(&t);
        let base = Segmentation::singleton(ex.context().clone());
        let by_kind = cut_segmentation(&ex, &base, "kind").unwrap().unwrap();
        let by_z = cut_segmentation(&ex, &base, "z").unwrap().unwrap();
        let ranked = vec![
            Ranked {
                score: crate::metrics::score(&ex, &by_z).unwrap(),
                segmentation: by_z,
            },
            Ranked {
                score: crate::metrics::score(&ex, &by_kind).unwrap(),
                segmentation: by_kind,
            },
        ];
        let reordered = rank_by_surprise(&ex, ranked).unwrap();
        assert_eq!(
            reordered[0].1.segmentation.attributes(),
            vec!["kind"],
            "the kind split should out-surprise the noise split"
        );
        assert!(reordered[0].0 > reordered[1].0);
    }

    #[test]
    fn total_variation_bounds() {
        use charles_store::FrequencyTable;
        let a = FrequencyTable::from_counts(vec![10, 0]);
        let b = FrequencyTable::from_counts(vec![0, 10]);
        assert_eq!(total_variation(&a, &b, 2), 1.0);
        assert_eq!(total_variation(&a, &a, 2), 0.0);
        let c = FrequencyTable::from_counts(vec![5, 5]);
        assert!((total_variation(&a, &c, 2) - 0.5).abs() < 1e-12);
    }
}
