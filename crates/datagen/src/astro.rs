//! Synthetic sky-survey catalogue.
//!
//! The demo proposal promises "a few domain-specific databases, covering
//! topics such as history and astronomy". This generator produces an
//! object catalogue in the style of SDSS-like surveys: position (`ra`,
//! `dec`), photometry (`magnitude`), `redshift`, an object `class`
//! (star / galaxy / quasar / nebula) and the `survey` field that observed
//! it. The class drives the distributions — stars have zero redshift,
//! quasars are faint and far — giving HB-cuts real structure to find.

use charles_store::{DataType, Schema, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Approximate standard Gaussian via the Irwin–Hall construction
/// (sum of 12 uniforms, recentred) — good enough for data generation and
/// dependency-free.
fn gauss(rng: &mut StdRng) -> f64 {
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

/// The sky-survey relation's schema, shared by the eager and streaming
/// paths.
pub fn astro_schema() -> Schema {
    let mut s = Schema::new();
    for (name, ty) in [
        ("ra", DataType::Float),
        ("dec", DataType::Float),
        ("magnitude", DataType::Float),
        ("redshift", DataType::Float),
        ("class", DataType::Str),
        ("survey", DataType::Str),
    ] {
        s.add(name, ty).expect("static schema is well-formed");
    }
    s
}

/// One catalogue object, advancing the shared RNG.
fn astro_row(rng: &mut StdRng) -> Vec<Value> {
    let class_pick: f64 = rng.gen();
    // (class, share): stars dominate, then galaxies, quasars, nebulae.
    let class = if class_pick < 0.45 {
        "star"
    } else if class_pick < 0.80 {
        "galaxy"
    } else if class_pick < 0.95 {
        "quasar"
    } else {
        "nebula"
    };
    let (mag, z) = match class {
        // Bright, local.
        "star" => (12.0 + 2.5 * gauss(rng).abs(), 0.0),
        // Mid-range magnitude, modest redshift.
        "galaxy" => (17.0 + 1.5 * gauss(rng), (0.08 + 0.05 * gauss(rng)).max(0.0)),
        // Faint and far.
        "quasar" => (20.0 + 1.0 * gauss(rng), (2.0 + 0.8 * gauss(rng)).max(0.2)),
        // Extended local objects.
        _ => (15.0 + 2.0 * gauss(rng).abs(), 0.0),
    };
    // Two survey footprints: "north" covers dec > 0, "south" dec < 10 —
    // overlapping bands, so survey correlates with position.
    let dec = gauss(rng) * 30.0;
    let survey = if dec > 10.0 {
        "NGS"
    } else if dec < 0.0 {
        "SGS"
    } else if rng.gen_bool(0.5) {
        "NGS"
    } else {
        "SGS"
    };
    vec![
        Value::Float(rng.gen::<f64>() * 360.0),
        Value::Float(dec),
        Value::Float(mag.clamp(5.0, 28.0)),
        Value::Float(z.min(7.0)),
        Value::str(class),
        Value::str(survey),
    ]
}

/// The `n` objects of `astro_table(n, seed)` as a replayable row
/// iterator (the streaming producer).
pub fn astro_rows(n: usize, seed: u64) -> impl Iterator<Item = Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(move |_| astro_row(&mut rng))
}

/// Generate an `n`-object catalogue (deterministic per seed).
pub fn astro_table(n: usize, seed: u64) -> Table {
    let mut b = TableBuilder::new("sky");
    for c in astro_schema().columns() {
        b.add_column(&c.name, c.ty);
    }
    for row in astro_rows(n, seed) {
        b.push_row(row).expect("schema matches");
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_store::{Backend, StorePredicate};

    #[test]
    fn schema_and_size() {
        let t = astro_table(500, 1);
        assert_eq!(t.len(), 500);
        assert_eq!(
            t.schema().names(),
            vec!["ra", "dec", "magnitude", "redshift", "class", "survey"]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = charles_store::write_csv_string(&astro_table(100, 9));
        let b = charles_store::write_csv_string(&astro_table(100, 9));
        assert_eq!(a, b);
    }

    #[test]
    fn stars_have_zero_redshift_quasars_do_not() {
        let t = astro_table(3000, 2);
        let stars = t
            .eval(&StorePredicate::set("class", vec![Value::str("star")]))
            .unwrap();
        let (_, hi) = t.min_max("redshift", &stars).unwrap().unwrap();
        assert_eq!(hi.as_f64().unwrap(), 0.0);
        let quasars = t
            .eval(&StorePredicate::set("class", vec![Value::str("quasar")]))
            .unwrap();
        let (lo, _) = t.min_max("redshift", &quasars).unwrap().unwrap();
        assert!(lo.as_f64().unwrap() >= 0.2);
    }

    #[test]
    fn quasars_are_fainter_than_stars() {
        let t = astro_table(3000, 3);
        let med = |class: &str| {
            let sel = t
                .eval(&StorePredicate::set("class", vec![Value::str(class)]))
                .unwrap();
            t.median("magnitude", &sel)
                .unwrap()
                .unwrap()
                .as_f64()
                .unwrap()
        };
        // Larger magnitude = fainter object.
        assert!(med("quasar") > med("star") + 3.0);
    }

    #[test]
    fn survey_correlates_with_declination() {
        let t = astro_table(3000, 4);
        let ngs = t
            .eval(&StorePredicate::set("survey", vec![Value::str("NGS")]))
            .unwrap();
        let med = t.median("dec", &ngs).unwrap().unwrap().as_f64().unwrap();
        let sgs = t
            .eval(&StorePredicate::set("survey", vec![Value::str("SGS")]))
            .unwrap();
        let med_s = t.median("dec", &sgs).unwrap().unwrap().as_f64().unwrap();
        assert!(med > med_s, "NGS median dec {med} ≤ SGS {med_s}");
    }

    #[test]
    fn values_within_physical_bounds() {
        let t = astro_table(1000, 5);
        let all = t.all_rows();
        let (lo, hi) = t.min_max("ra", &all).unwrap().unwrap();
        assert!(lo.as_f64().unwrap() >= 0.0 && hi.as_f64().unwrap() <= 360.0);
        let (lo, hi) = t.min_max("magnitude", &all).unwrap().unwrap();
        assert!(lo.as_f64().unwrap() >= 5.0 && hi.as_f64().unwrap() <= 28.0);
    }
}
