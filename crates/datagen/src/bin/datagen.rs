//! Generate a synthetic dataset and save it as a `.charles` file.
//!
//! ```sh
//! cargo run -p charles-datagen --bin datagen -- [--stream] <voc|astro|weblog> <rows> <seed> <out.charles>
//! ```
//!
//! This is the first half of the persistence round trip the rest of the
//! stack consumes: `charles-serve` boots sessions from the file
//! (`@path` bodies or an `Arc<DiskTable>` backend), `charles-bench`
//! experiments take it via `--dataset <path>`, and CI drives
//! generate → save → serve as a smoke test.
//!
//! `--stream` writes the file column-by-column through the store's
//! `StreamWriter` instead of materialising the whole table first: peak
//! memory stays flat in the row count (one validity bitmap + one string
//! dictionary), at the cost of re-running the generator once per column.
//! The two paths produce value-identical files.

use charles_datagen::{generate_and_save, generate_and_save_streaming, DATASET_NAMES};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let stream = if let Some(i) = args.iter().position(|a| a == "--stream") {
        args.remove(i);
        true
    } else {
        false
    };
    let [name, rows, seed, path] = args.as_slice() else {
        eprintln!(
            "usage: datagen [--stream] <{}> <rows> <seed> <out.charles>",
            DATASET_NAMES.join("|")
        );
        return ExitCode::FAILURE;
    };
    let rows: usize = match rows.parse() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("bad row count {rows:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let seed: u64 = match seed.parse() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("bad seed {seed:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if stream {
        generate_and_save_streaming(name, rows, seed, path)
    } else {
        generate_and_save(name, rows, seed, path).map(|_| ())
    };
    match result {
        Ok(()) => {
            println!(
                "wrote {path}: dataset {name:?}, {rows} rows (seed {seed}{})",
                if stream { ", streamed" } else { "" }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("datagen failed: {e}");
            ExitCode::FAILURE
        }
    }
}
