//! Generate a synthetic dataset and save it as a `.charles` file.
//!
//! ```sh
//! cargo run -p charles-datagen --bin datagen -- <voc|astro|weblog> <rows> <seed> <out.charles>
//! ```
//!
//! This is the first half of the persistence round trip the rest of the
//! stack consumes: `charles-serve` boots sessions from the file
//! (`@path` bodies or an `Arc<DiskTable>` backend), `charles-bench`
//! experiments take it via `--dataset <path>`, and CI drives
//! generate → save → serve as a smoke test.

use charles_datagen::{generate_and_save, DATASET_NAMES};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [name, rows, seed, path] = args.as_slice() else {
        eprintln!(
            "usage: datagen <{}> <rows> <seed> <out.charles>",
            DATASET_NAMES.join("|")
        );
        return ExitCode::FAILURE;
    };
    let rows: usize = match rows.parse() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("bad row count {rows:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let seed: u64 = match seed.parse() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("bad seed {seed:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match generate_and_save(name, rows, seed, path) {
        Ok(table) => {
            println!(
                "wrote {path}: dataset {name:?}, {} rows × {} columns (seed {seed})",
                table.len(),
                table.schema().arity()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("datagen failed: {e}");
            ExitCode::FAILURE
        }
    }
}
