//! `charles-datagen` — synthetic datasets for the Charles experiments.
//!
//! The paper demonstrates Charles on domain databases we cannot
//! redistribute: the Dutch-Asiatic Shipping (VOC) archive of Figure 1, an
//! astronomy catalogue (demo proposal), and the web logs of the
//! introduction. Each generator here synthesises a dataset with the same
//! schema *and the same dependency structure* — which is all the advisor
//! ever observes (see DESIGN.md §2 for the substitution argument).
//!
//! All generators are deterministic for a fixed seed.
//!
//! * [`voc::voc_table`] — nine-column VOC shipping relation with
//!   boat-type↔tonnage, route↔harbour and era↔yard dependencies;
//! * [`astro::astro_table`] — sky-survey catalogue with class-conditional
//!   magnitude/redshift distributions;
//! * [`weblog::weblog_table`] — sessionised web log with Zipfian paths
//!   and heavy-tailed latencies;
//! * [`synthetic`] — parametric tables with *controlled* pairwise
//!   dependency for calibrating INDEP (experiment E8) and scalability
//!   sweeps (E5/E6);
//! * [`zipf`] — a small Zipf sampler shared by the generators;
//! * [`persist`] — save any generated dataset as a `.charles` file
//!   (and the `datagen` binary that does it from the shell), so a
//!   dataset is generated once and served from disk forever after.
//!   [`persist::generate_and_save_streaming`] writes the same file with
//!   one generator pass per column through the store's `StreamWriter`,
//!   keeping peak memory independent of the row count — the path that
//!   makes 10⁸-row files producible.

pub mod astro;
pub mod persist;
pub mod synthetic;
pub mod voc;
pub mod weblog;
pub mod zipf;

pub use astro::astro_table;
pub use persist::{
    dataset_by_name, dataset_rows, dataset_schema, generate_and_save, generate_and_save_streaming,
    save_table, DATASET_NAMES,
};
pub use synthetic::{correlated_pair_table, sweep_table, DependencyKind};
pub use voc::voc_table;
pub use weblog::weblog_table;
pub use zipf::Zipf;
