//! Saving generated datasets to disk (`.charles` files).
//!
//! The generators synthesise a fresh table per call, which is fine for
//! tests but wasteful for a long-lived server: regenerating (and
//! re-interning string dictionaries for) a million-row VOC register on
//! every boot is exactly the re-ingestion cost the persistent columnar
//! format exists to eliminate. This module is the bridge: name a
//! generator, get a `.charles` file, boot anything — `charles-serve`
//! sessions (`@path` bodies), `charles-bench` experiments
//! (`--dataset <path>`), or a plain [`charles_store::DiskTable`].
//!
//! The `datagen` binary wraps [`generate_and_save`] for shell use:
//!
//! ```sh
//! cargo run -p charles-datagen --bin datagen -- voc 20000 42 /tmp/voc.charles
//! ```

use charles_store::disk::write_table;
use charles_store::{StoreError, StoreResult, Table};
use std::path::Path;

/// The named generators [`dataset_by_name`] knows, with their schemas'
/// domains: the paper's three running examples.
pub const DATASET_NAMES: &[&str] = &["voc", "astro", "weblog"];

/// Generate one of the named datasets (`voc`, `astro`, `weblog`),
/// deterministic for a fixed `(rows, seed)`. `None` for unknown names.
pub fn dataset_by_name(name: &str, rows: usize, seed: u64) -> Option<Table> {
    match name {
        "voc" => Some(crate::voc_table(rows, seed)),
        "astro" => Some(crate::astro_table(rows, seed)),
        "weblog" => Some(crate::weblog_table(rows, seed)),
        _ => None,
    }
}

/// Save any table as a `.charles` file — a re-export of the store's
/// writer so datagen callers need no second import.
pub fn save_table(table: &Table, path: impl AsRef<Path>) -> StoreResult<()> {
    write_table(table, path)
}

/// Generate a named dataset and save it in one step, returning the
/// generated table (callers often want to advise over it immediately to
/// compare against the loaded file).
pub fn generate_and_save(
    name: &str,
    rows: usize,
    seed: u64,
    path: impl AsRef<Path>,
) -> StoreResult<Table> {
    let table = dataset_by_name(name, rows, seed).ok_or_else(|| {
        StoreError::Parse(format!(
            "unknown dataset {name:?} (expected one of {DATASET_NAMES:?})"
        ))
    })?;
    save_table(&table, path)?;
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_store::{Backend, DiskTable};

    #[test]
    fn every_named_dataset_saves_and_reloads() {
        for (i, name) in DATASET_NAMES.iter().enumerate() {
            let path = std::env::temp_dir().join(format!(
                "charles-datagen-{}-{name}-{i}.charles",
                std::process::id()
            ));
            let generated = generate_and_save(name, 500, 9, &path).unwrap();
            let loaded = DiskTable::open(&path).unwrap();
            assert_eq!(loaded.len(), 500, "{name}");
            assert_eq!(Backend::schema(&loaded), generated.schema(), "{name}");
            loaded.verify().unwrap();
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn unknown_dataset_is_a_typed_error() {
        assert!(dataset_by_name("nope", 10, 1).is_none());
        let err = generate_and_save("nope", 10, 1, "/tmp/never-written.charles").unwrap_err();
        assert!(err.to_string().contains("unknown dataset"), "{err}");
    }
}
