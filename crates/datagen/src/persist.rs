//! Saving generated datasets to disk (`.charles` files).
//!
//! The generators synthesise a fresh table per call, which is fine for
//! tests but wasteful for a long-lived server: regenerating (and
//! re-interning string dictionaries for) a million-row VOC register on
//! every boot is exactly the re-ingestion cost the persistent columnar
//! format exists to eliminate. This module is the bridge: name a
//! generator, get a `.charles` file, boot anything — `charles-serve`
//! sessions (`@path` bodies), `charles-bench` experiments
//! (`--dataset <path>`), or a plain [`charles_store::DiskTable`].
//!
//! The `datagen` binary wraps [`generate_and_save`] for shell use:
//!
//! ```sh
//! cargo run -p charles-datagen --bin datagen -- voc 20000 42 /tmp/voc.charles
//! ```
//!
//! Two write paths share the generators. [`generate_and_save`] builds the
//! whole [`Table`] in memory and hands it to `write_table` — simple, but
//! resident memory scales with the row count, which caps it far below the
//! 10⁸-row files the scaled store is meant to serve.
//! [`generate_and_save_streaming`] instead drives the store's
//! [`StreamWriter`] with one generator pass **per column**: because every
//! generator is a deterministic function of `(rows, seed)`, replaying the
//! row stream once per column costs only CPU, and peak memory is one
//! column's validity bitmap plus its string dictionary regardless of row
//! count. Both paths produce value-identical files (pinned by tests
//! below) — only segment order differs, which the format's offset-driven
//! footer makes unobservable.

use charles_store::disk::write_table;
use charles_store::{Schema, StoreError, StoreResult, StreamWriter, Table, Value};
use std::path::Path;

/// The named generators [`dataset_by_name`] knows, with their schemas'
/// domains: the paper's three running examples.
pub const DATASET_NAMES: &[&str] = &["voc", "astro", "weblog"];

/// Generate one of the named datasets (`voc`, `astro`, `weblog`),
/// deterministic for a fixed `(rows, seed)`. `None` for unknown names.
pub fn dataset_by_name(name: &str, rows: usize, seed: u64) -> Option<Table> {
    match name {
        "voc" => Some(crate::voc_table(rows, seed)),
        "astro" => Some(crate::astro_table(rows, seed)),
        "weblog" => Some(crate::weblog_table(rows, seed)),
        _ => None,
    }
}

/// The table name and schema a named generator produces, without
/// generating any rows. `None` for unknown names.
pub fn dataset_schema(name: &str) -> Option<(&'static str, Schema)> {
    match name {
        "voc" => Some(("voc", crate::voc::voc_schema())),
        "astro" => Some(("sky", crate::astro::astro_schema())),
        "weblog" => Some(("weblog", crate::weblog::weblog_schema())),
        _ => None,
    }
}

/// The row stream a named generator produces — the replayable producer
/// behind [`generate_and_save_streaming`]. `None` for unknown names.
pub fn dataset_rows(
    name: &str,
    rows: usize,
    seed: u64,
) -> Option<Box<dyn Iterator<Item = Vec<Value>>>> {
    match name {
        "voc" => Some(Box::new(crate::voc::voc_rows(rows, seed))),
        "astro" => Some(Box::new(crate::astro::astro_rows(rows, seed))),
        "weblog" => Some(Box::new(crate::weblog::weblog_rows(rows, seed))),
        _ => None,
    }
}

/// Save any table as a `.charles` file — a re-export of the store's
/// writer so datagen callers need no second import.
pub fn save_table(table: &Table, path: impl AsRef<Path>) -> StoreResult<()> {
    write_table(table, path)
}

/// Generate a named dataset and save it in one step, returning the
/// generated table (callers often want to advise over it immediately to
/// compare against the loaded file).
pub fn generate_and_save(
    name: &str,
    rows: usize,
    seed: u64,
    path: impl AsRef<Path>,
) -> StoreResult<Table> {
    let table = dataset_by_name(name, rows, seed).ok_or_else(|| {
        StoreError::Parse(format!(
            "unknown dataset {name:?} (expected one of {DATASET_NAMES:?})"
        ))
    })?;
    save_table(&table, path)?;
    Ok(table)
}

/// Generate a named dataset and save it **without materialising the
/// table**: one generator pass per column through the store's
/// [`StreamWriter`]. Peak memory is independent of `rows` (one validity
/// bitmap plus one string dictionary), which is what makes 10⁸-row
/// `.charles` files producible at all. The output is value-identical to
/// [`generate_and_save`]'s for the same `(name, rows, seed)`.
pub fn generate_and_save_streaming(
    name: &str,
    rows: usize,
    seed: u64,
    path: impl AsRef<Path>,
) -> StoreResult<()> {
    let (table_name, schema) = dataset_schema(name).ok_or_else(|| {
        StoreError::Parse(format!(
            "unknown dataset {name:?} (expected one of {DATASET_NAMES:?})"
        ))
    })?;
    let mut w = StreamWriter::create(path, table_name, schema.clone(), rows)?;
    for col in 0..schema.arity() {
        // The generators are deterministic in (rows, seed), so each
        // column pass replays the identical row stream and projects out
        // its one column. CPU trades for memory: arity × generation cost,
        // O(1) resident rows.
        let stream = dataset_rows(name, rows, seed).expect("name validated above");
        for mut row in stream {
            debug_assert_eq!(row.len(), schema.arity());
            w.append(Some(row.swap_remove(col)))?;
        }
        w.end_column()?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_store::{Backend, DiskTable};

    #[test]
    fn every_named_dataset_saves_and_reloads() {
        for (i, name) in DATASET_NAMES.iter().enumerate() {
            let path = std::env::temp_dir().join(format!(
                "charles-datagen-{}-{name}-{i}.charles",
                std::process::id()
            ));
            let generated = generate_and_save(name, 500, 9, &path).unwrap();
            let loaded = DiskTable::open(&path).unwrap();
            assert_eq!(loaded.len(), 500, "{name}");
            assert_eq!(Backend::schema(&loaded), generated.schema(), "{name}");
            loaded.verify().unwrap();
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn unknown_dataset_is_a_typed_error() {
        assert!(dataset_by_name("nope", 10, 1).is_none());
        let err = generate_and_save("nope", 10, 1, "/tmp/never-written.charles").unwrap_err();
        assert!(err.to_string().contains("unknown dataset"), "{err}");
        let err =
            generate_and_save_streaming("nope", 10, 1, "/tmp/never-written.charles").unwrap_err();
        assert!(err.to_string().contains("unknown dataset"), "{err}");
        assert!(dataset_schema("nope").is_none());
        assert!(dataset_rows("nope", 10, 1).is_none());
    }

    #[test]
    fn declared_schemas_match_generated_tables() {
        for name in DATASET_NAMES {
            let (table_name, schema) = dataset_schema(name).unwrap();
            let t = dataset_by_name(name, 3, 1).unwrap();
            assert_eq!(t.name(), table_name, "{name}");
            assert_eq!(t.schema(), &schema, "{name}");
        }
    }

    #[test]
    fn row_streams_replay_the_eager_tables() {
        for name in DATASET_NAMES {
            let t = dataset_by_name(name, 200, 11).unwrap();
            let rows: Vec<Vec<Value>> = dataset_rows(name, 200, 11).unwrap().collect();
            assert_eq!(rows.len(), 200, "{name}");
            for (i, row) in rows.iter().enumerate() {
                for (c, col) in t.schema().names().iter().enumerate() {
                    assert_eq!(
                        t.value(i, col).unwrap().as_ref(),
                        Some(&row[c]),
                        "{name} row {i} col {col}"
                    );
                }
            }
        }
    }

    #[test]
    fn streamed_files_are_value_identical_to_eager_ones() {
        for name in DATASET_NAMES {
            let pid = std::process::id();
            let eager_path =
                std::env::temp_dir().join(format!("charles-datagen-eager-{pid}-{name}.charles"));
            let stream_path =
                std::env::temp_dir().join(format!("charles-datagen-stream-{pid}-{name}.charles"));
            let table = generate_and_save(name, 700, 42, &eager_path).unwrap();
            generate_and_save_streaming(name, 700, 42, &stream_path).unwrap();

            let eager = DiskTable::open(&eager_path).unwrap();
            let streamed = DiskTable::open(&stream_path).unwrap();
            streamed.verify().unwrap();
            assert_eq!(
                Backend::schema(&streamed),
                Backend::schema(&eager),
                "{name}"
            );
            assert_eq!(streamed.len(), eager.len(), "{name}");
            for col in table.schema().names() {
                let cs = streamed.column(col).unwrap();
                let ce = eager.column(col).unwrap();
                for i in 0..eager.len() {
                    assert_eq!(cs.get(i), ce.get(i), "{name} row {i} col {col}");
                }
                // The advisor's three workload primitives agree too.
                let all_s = streamed.all_rows();
                let all_e = eager.all_rows();
                if matches!(
                    Backend::schema(&eager).type_of(col).unwrap(),
                    charles_store::DataType::Str
                ) {
                    let (ft_s, dict_s) = streamed.frequencies(col, &all_s).unwrap();
                    let (ft_e, dict_e) = eager.frequencies(col, &all_e).unwrap();
                    // Dictionary codes (not just decoded strings) match:
                    // interning order is first-occurrence in both paths.
                    assert_eq!(dict_s, dict_e, "{name} {col}");
                    assert_eq!(ft_s.entries(), ft_e.entries(), "{name} {col}");
                } else {
                    assert_eq!(
                        streamed.median(col, &all_s).unwrap(),
                        eager.median(col, &all_e).unwrap(),
                        "{name} {col}"
                    );
                }
            }
            std::fs::remove_file(&eager_path).unwrap();
            std::fs::remove_file(&stream_path).unwrap();
        }
    }
}
