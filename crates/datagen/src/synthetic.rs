//! Parametric tables with controlled dependency structure.
//!
//! Two families:
//!
//! * [`correlated_pair_table`] — two integer columns whose dependence is a
//!   dial from functional (`noise = 0`) to independent (`noise = 1`).
//!   This calibrates INDEP for experiment E8 (Proposition 1).
//! * [`sweep_table`] — `n` rows × `k` columns with a chained dependency
//!   pattern (column *i+1* tracks column *i* with noise), used for the
//!   horizontal/vertical scalability sweeps (E5, E6) where the advisor
//!   must always find something to compose.

use charles_store::{DataType, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kind of pairwise relationship to synthesise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DependencyKind {
    /// `b = a` exactly (INDEP = 0.5 on balanced cuts).
    Functional,
    /// `b = a` for a `1 − noise` fraction of rows, uniform otherwise.
    Noisy {
        /// Fraction of rows where `b` is drawn independently (0 → functional,
        /// 1 → independent).
        noise: f64,
    },
    /// `b` uniform, independent of `a` (INDEP ≈ 1).
    Independent,
}

/// Two-column table `(a, b)` with `domain`-valued integers and the given
/// dependency between the columns.
pub fn correlated_pair_table(n: usize, domain: i64, kind: DependencyKind, seed: u64) -> Table {
    assert!(domain >= 2, "domain must have at least two values");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TableBuilder::new("pair");
    b.add_column("a", DataType::Int)
        .add_column("b", DataType::Int);
    for _ in 0..n {
        let a: i64 = rng.gen_range(0..domain);
        let bv = match kind {
            DependencyKind::Functional => a,
            DependencyKind::Independent => rng.gen_range(0..domain),
            DependencyKind::Noisy { noise } => {
                if rng.gen_bool(noise.clamp(0.0, 1.0)) {
                    rng.gen_range(0..domain)
                } else {
                    a
                }
            }
        };
        b.push_row(vec![Value::Int(a), Value::Int(bv)])
            .expect("schema");
    }
    b.finish()
}

/// `n` rows × `k` integer columns `c0..c{k-1}`: `c0` uniform, each later
/// column equals its predecessor plus bounded noise — a dependency chain
/// that keeps HB-cuts composing all the way up (worst-case work for the
/// horizontal sweep E5).
pub fn sweep_table(n: usize, k: usize, seed: u64) -> Table {
    assert!(k >= 1, "need at least one column");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TableBuilder::new("sweep");
    let names: Vec<String> = (0..k).map(|i| format!("c{i}")).collect();
    for name in &names {
        b.add_column(name, DataType::Int);
    }
    for _ in 0..n {
        let mut row = Vec::with_capacity(k);
        let mut prev: i64 = rng.gen_range(0..1000);
        row.push(Value::Int(prev));
        for _ in 1..k {
            prev += rng.gen_range(-30i64..=30);
            row.push(Value::Int(prev));
        }
        b.push_row(row).expect("schema");
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_store::Backend;

    #[test]
    fn functional_pair_is_equal() {
        let t = correlated_pair_table(100, 10, DependencyKind::Functional, 1);
        for i in 0..t.len() {
            assert_eq!(t.value(i, "a").unwrap(), t.value(i, "b").unwrap());
        }
    }

    #[test]
    fn noise_dial_monotone() {
        // Count rows where a == b: must decrease as noise grows.
        let agree = |noise: f64| {
            let t = correlated_pair_table(4000, 16, DependencyKind::Noisy { noise }, 2);
            (0..t.len())
                .filter(|&i| t.value(i, "a").unwrap() == t.value(i, "b").unwrap())
                .count()
        };
        let a0 = agree(0.0);
        let a_half = agree(0.5);
        let a1 = agree(1.0);
        assert_eq!(a0, 4000);
        assert!(a_half < a0 && a_half > a1);
        // Pure noise still agrees ~1/16 of the time by chance.
        assert!(a1 < 600);
    }

    #[test]
    fn independent_pair_spreads() {
        let t = correlated_pair_table(4000, 8, DependencyKind::Independent, 3);
        assert_eq!(t.distinct_count("b", &t.all_rows()).unwrap(), 8);
    }

    #[test]
    fn sweep_table_shape_and_chain() {
        let t = sweep_table(500, 6, 4);
        assert_eq!(t.len(), 500);
        assert_eq!(t.schema().arity(), 6);
        // Adjacent columns stay within the noise band of each other.
        for i in 0..t.len() {
            let c2 = t.value(i, "c2").unwrap().unwrap().as_f64().unwrap();
            let c3 = t.value(i, "c3").unwrap().unwrap().as_f64().unwrap();
            assert!((c2 - c3).abs() <= 30.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = charles_store::write_csv_string(&sweep_table(50, 3, 9));
        let b = charles_store::write_csv_string(&sweep_table(50, 3, 9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two values")]
    fn tiny_domain_panics() {
        correlated_pair_table(10, 1, DependencyKind::Functional, 1);
    }
}
