//! Synthetic VOC (Dutch East India Company) shipping relation.
//!
//! Figure 1 of the paper explores a table with the columns `tonnage`,
//! `type_of_boat`, `built`, `yard`, `departure_date`, `departure_harbour`,
//! `cape_arrival`, `trip`, `master`. The real Dutch-Asiatic Shipping
//! database is not redistributable, so this generator reproduces its
//! *shape*: the dependencies the advisor is supposed to discover —
//!
//! * `type_of_boat` ↔ `tonnage` (each class has its own tonnage band);
//! * `departure_harbour` ↔ `cape_arrival` (route structure: outbound
//!   Dutch harbours vs Asian return harbours);
//! * `built` ↔ `yard` (yards operate in eras) and `built` ↔
//!   `departure_date` (ships sail after they are built);
//! * `master` and `trip` are high-cardinality, near-independent columns —
//!   noise the advisor should ignore.

use charles_store::{DataType, Schema, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Boat classes with tonnage bands and period of service.
/// (name, min tonnage, max tonnage, first year, last year)
const CLASSES: [(&str, i64, i64, i64, i64); 5] = [
    ("fluit", 300, 700, 1620, 1750),
    ("jacht", 100, 400, 1600, 1720),
    ("spiegelretourschip", 700, 1200, 1650, 1795),
    ("pinas", 400, 800, 1600, 1690),
    ("hoeker", 150, 450, 1680, 1795),
];

/// Dutch outbound harbours (weights) and their typical Asian destination.
const ROUTES: [(&str, &str, f64); 6] = [
    ("Texel", "Batavia", 0.35),
    ("Rammekens", "Batavia", 0.15),
    ("Goeree", "Ceylon", 0.15),
    ("Texel", "Ceylon", 0.10),
    ("Wielingen", "Bengalen", 0.15),
    ("Rammekens", "Surat", 0.10),
];

/// Shipyards and their active eras.
const YARDS: [(&str, i64, i64); 4] = [
    ("Amsterdam", 1600, 1700),
    ("Zeeland", 1640, 1740),
    ("Rotterdam", 1680, 1795),
    ("Hoorn", 1600, 1670),
];

/// The VOC relation's schema, shared by the eager and streaming paths.
pub fn voc_schema() -> Schema {
    let mut s = Schema::new();
    for (name, ty) in [
        ("type_of_boat", DataType::Str),
        ("tonnage", DataType::Int),
        ("built", DataType::Date),
        ("yard", DataType::Str),
        ("departure_date", DataType::Date),
        ("departure_harbour", DataType::Str),
        ("cape_arrival", DataType::Str),
        ("trip", DataType::Int),
        ("master", DataType::Str),
    ] {
        s.add(name, ty).expect("static schema is well-formed");
    }
    s
}

/// One synthetic voyage, advancing the shared RNG (the deterministic
/// unit both [`voc_table`] and [`voc_rows`] are built from).
fn voc_row(rng: &mut StdRng) -> Vec<Value> {
    let (class, t_lo, t_hi, y_lo, y_hi) = CLASSES[rng.gen_range(0..CLASSES.len())];
    let tonnage = rng.gen_range(t_lo..=t_hi);
    let built_year = rng.gen_range(y_lo..=y_hi);
    // Yard chosen among those active when the ship was built.
    let active: Vec<&str> = YARDS
        .iter()
        .filter(|(_, a, b)| built_year >= *a && built_year <= *b)
        .map(|(name, _, _)| *name)
        .collect();
    let yard = if active.is_empty() {
        "Amsterdam"
    } else {
        active[rng.gen_range(0..active.len())]
    };
    // Ships sail 0–25 years after construction.
    let dep_year = built_year + rng.gen_range(0i64..=25);
    let (harbour, arrival) = pick_route(rng);
    let trip = rng.gen_range(1..=8);
    let master = format!("master_{:03}", rng.gen_range(0..150));
    vec![
        Value::str(class),
        Value::Int(tonnage),
        Value::date_ymd(built_year, rng.gen_range(1..=12), rng.gen_range(1..=28)),
        Value::str(yard),
        Value::date_ymd(dep_year, rng.gen_range(1..=12), rng.gen_range(1..=28)),
        Value::str(harbour),
        Value::str(arrival),
        Value::Int(trip),
        Value::Str(master),
    ]
}

/// The `n` voyages of `voc_table(n, seed)` as a row iterator — the
/// streaming producer: re-creating this iterator replays the identical
/// rows, which is what lets `generate_and_save_streaming` make one pass
/// per column without materialising the table.
pub fn voc_rows(n: usize, seed: u64) -> impl Iterator<Item = Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(move |_| voc_row(&mut rng))
}

/// Generate `n` synthetic VOC voyages (deterministic per seed).
pub fn voc_table(n: usize, seed: u64) -> Table {
    let mut b = TableBuilder::new("voc");
    for c in voc_schema().columns() {
        b.add_column(&c.name, c.ty);
    }
    for row in voc_rows(n, seed) {
        b.push_row(row).expect("schema matches");
    }
    b.finish()
}

fn pick_route(rng: &mut StdRng) -> (&'static str, &'static str) {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (h, a, w) in ROUTES {
        acc += w;
        if u <= acc {
            return (h, a);
        }
    }
    let (h, a, _) = ROUTES[ROUTES.len() - 1];
    (h, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_store::{Backend, StorePredicate};

    #[test]
    fn schema_matches_figure1() {
        let t = voc_table(100, 1);
        let names = t.schema().names();
        assert_eq!(
            names,
            vec![
                "type_of_boat",
                "tonnage",
                "built",
                "yard",
                "departure_date",
                "departure_harbour",
                "cape_arrival",
                "trip",
                "master"
            ]
        );
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = charles_store::write_csv_string(&voc_table(50, 7));
        let b = charles_store::write_csv_string(&voc_table(50, 7));
        let c = charles_store::write_csv_string(&voc_table(50, 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tonnage_depends_on_type() {
        // Class tonnage bands: a jacht never exceeds 400, a
        // spiegelretourschip never goes below 700.
        let t = voc_table(2000, 2);
        let jacht = t
            .eval(&StorePredicate::set(
                "type_of_boat",
                vec![Value::str("jacht")],
            ))
            .unwrap();
        let (_, hi) = t.min_max("tonnage", &jacht).unwrap().unwrap();
        assert!(hi.as_f64().unwrap() <= 400.0);
        let retour = t
            .eval(&StorePredicate::set(
                "type_of_boat",
                vec![Value::str("spiegelretourschip")],
            ))
            .unwrap();
        let (lo, _) = t.min_max("tonnage", &retour).unwrap().unwrap();
        assert!(lo.as_f64().unwrap() >= 700.0);
    }

    #[test]
    fn departure_never_precedes_construction() {
        let t = voc_table(500, 3);
        for i in 0..t.len() {
            let built = t.value(i, "built").unwrap().unwrap();
            let dep = t.value(i, "departure_date").unwrap().unwrap();
            // Same-year departures can precede the construction *day*, but
            // a departure year strictly before the build year is a bug.
            assert!(
                dep.as_f64().unwrap() >= built.as_f64().unwrap() - 372.0,
                "row {i}: dep {dep} < built {built}"
            );
        }
    }

    #[test]
    fn routes_link_harbour_and_arrival() {
        let t = voc_table(2000, 4);
        // Surat is only reached from Rammekens in the route table.
        let surat = t
            .eval(&StorePredicate::set(
                "cape_arrival",
                vec![Value::str("Surat")],
            ))
            .unwrap();
        assert!(surat.count_ones() > 0);
        let (ft, dict) = t.frequencies("departure_harbour", &surat).unwrap();
        for (code, count) in ft.entries() {
            if *count > 0 {
                assert_eq!(dict[*code as usize], "Rammekens");
            }
        }
    }

    #[test]
    fn master_is_high_cardinality_noise() {
        let t = voc_table(2000, 5);
        let distinct = t.distinct_count("master", &t.all_rows()).unwrap();
        assert!(distinct > 100, "only {distinct} masters");
    }
}
