//! Synthetic sessionised web log.
//!
//! The paper's introduction names web logs among the datasets scientists
//! and analysts grind. This generator produces a request log with the
//! skew that makes such logs awkward for naive median cuts (experiment
//! E10's natural habitat): Zipfian path popularity, heavy-tailed bytes
//! and latency, status codes dependent on the path, and a diurnal
//! hour-of-day pattern that differs per country.

use crate::zipf::Zipf;
use charles_store::{DataType, Schema, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const COUNTRIES: [(&str, f64, i64); 5] = [
    // (country, traffic share, peak hour UTC)
    ("NL", 0.30, 13),
    ("US", 0.25, 20),
    ("DE", 0.20, 12),
    ("JP", 0.15, 4),
    ("BR", 0.10, 23),
];

const SECTIONS: [&str; 6] = ["home", "search", "product", "cart", "api", "admin"];

/// The web-log relation's schema, shared by the eager and streaming
/// paths.
pub fn weblog_schema() -> Schema {
    let mut s = Schema::new();
    for (name, ty) in [
        ("section", DataType::Str),
        ("method", DataType::Str),
        ("status", DataType::Int),
        ("bytes", DataType::Int),
        ("latency_ms", DataType::Float),
        ("country", DataType::Str),
        ("hour", DataType::Int),
    ] {
        s.add(name, ty).expect("static schema is well-formed");
    }
    s
}

/// One log line, advancing the shared RNG (the Zipf sampler is
/// stateless between rows, so it is passed by reference).
fn weblog_row(rng: &mut StdRng, paths: &Zipf) -> Vec<Value> {
    let section = SECTIONS[paths.sample(rng)];
    let method = match section {
        "cart" | "api" if rng.gen_bool(0.6) => "POST",
        _ => "GET",
    };
    // Status depends on the section: admin 403s, api 500s, rest mostly 200.
    let status: i64 = match section {
        "admin" => {
            if rng.gen_bool(0.7) {
                403
            } else {
                200
            }
        }
        "api" => {
            let r: f64 = rng.gen();
            if r < 0.85 {
                200
            } else if r < 0.95 {
                500
            } else {
                404
            }
        }
        _ => {
            if rng.gen_bool(0.95) {
                200
            } else {
                404
            }
        }
    };
    // Pareto-ish heavy tails for bytes and latency.
    let u: f64 = rng.gen::<f64>().max(1e-9);
    let bytes = (500.0 / u.powf(0.6)).min(5e7) as i64;
    let u2: f64 = rng.gen::<f64>().max(1e-9);
    let mut latency = 5.0 / u2.powf(0.8);
    if status == 500 {
        latency *= 10.0; // errors are slow
    }
    let (country, peak) = pick_country(rng);
    // Diurnal curve: hours cluster around the country's peak.
    let spread: i64 = rng.gen_range(-4i64..=4) + rng.gen_range(-4i64..=4);
    let hour = (peak + spread).rem_euclid(24);
    vec![
        Value::str(section),
        Value::str(method),
        Value::Int(status),
        Value::Int(bytes),
        Value::Float(latency.min(120_000.0)),
        Value::str(country),
        Value::Int(hour),
    ]
}

/// The `n` log lines of `weblog_table(n, seed)` as a replayable row
/// iterator (the streaming producer).
pub fn weblog_rows(n: usize, seed: u64) -> impl Iterator<Item = Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let paths = Zipf::new(SECTIONS.len(), 1.1);
    (0..n).map(move |_| weblog_row(&mut rng, &paths))
}

/// Generate `n` log lines (deterministic per seed).
pub fn weblog_table(n: usize, seed: u64) -> Table {
    let mut b = TableBuilder::new("weblog");
    for c in weblog_schema().columns() {
        b.add_column(&c.name, c.ty);
    }
    for row in weblog_rows(n, seed) {
        b.push_row(row).expect("schema matches");
    }
    b.finish()
}

fn pick_country(rng: &mut StdRng) -> (&'static str, i64) {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (c, w, peak) in COUNTRIES {
        acc += w;
        if u <= acc {
            return (c, peak);
        }
    }
    let (c, _, peak) = COUNTRIES[COUNTRIES.len() - 1];
    (c, peak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_store::{Backend, StorePredicate};

    #[test]
    fn schema_and_determinism() {
        let t = weblog_table(200, 1);
        assert_eq!(t.len(), 200);
        assert_eq!(t.schema().arity(), 7);
        let a = charles_store::write_csv_string(&weblog_table(50, 3));
        let b = charles_store::write_csv_string(&weblog_table(50, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn paths_are_zipfian() {
        let t = weblog_table(5000, 2);
        let (ft, dict) = t.frequencies("section", &t.all_rows()).unwrap();
        let by_freq = ft.by_frequency();
        // The most popular section carries ≥ 2x the traffic of the third.
        assert!(by_freq[0].1 > 2 * by_freq[2].1, "{by_freq:?} {dict:?}");
    }

    #[test]
    fn admin_section_is_forbidden_mostly() {
        let t = weblog_table(5000, 4);
        let admin = t
            .eval(&StorePredicate::set("section", vec![Value::str("admin")]))
            .unwrap();
        let forbidden = t
            .eval(&charles_store::StorePredicate::and(vec![
                StorePredicate::set("section", vec![Value::str("admin")]),
                StorePredicate::set("status", vec![Value::Int(403)]),
            ]))
            .unwrap();
        assert!(forbidden.count_ones() * 2 > admin.count_ones());
    }

    #[test]
    fn errors_are_slower() {
        let t = weblog_table(20_000, 5);
        let ok = t
            .eval(&StorePredicate::set("status", vec![Value::Int(200)]))
            .unwrap();
        let err = t
            .eval(&StorePredicate::set("status", vec![Value::Int(500)]))
            .unwrap();
        if err.count_ones() > 10 {
            let m_ok = t
                .median("latency_ms", &ok)
                .unwrap()
                .unwrap()
                .as_f64()
                .unwrap();
            let m_err = t
                .median("latency_ms", &err)
                .unwrap()
                .unwrap()
                .as_f64()
                .unwrap();
            assert!(m_err > m_ok * 3.0, "ok {m_ok} err {m_err}");
        }
    }

    #[test]
    fn latency_is_heavy_tailed() {
        let t = weblog_table(20_000, 6);
        let all = t.all_rows();
        let med = t
            .median("latency_ms", &all)
            .unwrap()
            .unwrap()
            .as_f64()
            .unwrap();
        let p99 = t
            .quantile("latency_ms", &all, 0.99)
            .unwrap()
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(p99 > 10.0 * med, "median {med}, p99 {p99}");
    }

    #[test]
    fn hours_cluster_around_country_peak() {
        let t = weblog_table(20_000, 7);
        let jp = t
            .eval(&StorePredicate::set("country", vec![Value::str("JP")]))
            .unwrap();
        // JP peak is hour 4: the 4±3 window should hold a clear plurality.
        let window = t
            .eval(&charles_store::StorePredicate::and(vec![
                StorePredicate::set("country", vec![Value::str("JP")]),
                StorePredicate::range("hour", Value::Int(1), Value::Int(7), true),
            ]))
            .unwrap();
        assert!(
            window.count_ones() * 2 > jp.count_ones(),
            "{} of {}",
            window.count_ones(),
            jp.count_ones()
        );
    }
}
