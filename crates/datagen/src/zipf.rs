//! Zipf-distributed sampling over ranks `0..n`.
//!
//! Used for web-log paths and skewed nominal columns. Implemented with a
//! precomputed cumulative table + binary search: O(n) setup, O(log n) per
//! sample, no dependencies beyond `rand`.

use rand::Rng;

/// A Zipf(θ) distribution over `n` ranks (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n ≥ 1` ranks with skew `theta > 0`
    /// (theta → 0 approaches uniform; 1.0 is the classic web skew).
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(theta > 0.0, "theta must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_are_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        // Rank 0 of Zipf(1.2, 50) holds ≳25% of the mass.
        assert!(counts[0] > 4000, "rank0 = {}", counts[0]);
    }

    #[test]
    fn low_theta_is_flatter() {
        let mut rng = StdRng::seed_from_u64(3);
        let flat = Zipf::new(20, 0.1);
        let steep = Zipf::new(20, 2.0);
        let head_share = |z: &Zipf, rng: &mut StdRng| {
            let mut head = 0usize;
            for _ in 0..10_000 {
                if z.sample(rng) == 0 {
                    head += 1;
                }
            }
            head
        };
        assert!(head_share(&steep, &mut rng) > 2 * head_share(&flat, &mut rng));
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
