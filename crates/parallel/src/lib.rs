//! Deterministic fork-join helpers for the Charles hot paths.
//!
//! crates.io (and hence rayon) is unavailable in this build
//! environment, so this crate provides the minimal primitive the
//! advisor's evaluation paths need: an **order-preserving parallel
//! map** over a slice, built on `std::thread::scope`.
//!
//! Determinism contract: `par_map(items, f)` returns exactly
//! `items.iter().map(f).collect()` — results land at the index of
//! their input, and any reduction the caller performs afterwards runs
//! sequentially in index order. As long as `f` itself is a pure
//! function of its input, parallel and sequential execution are
//! **bitwise identical**, floats included. This is what lets the
//! `parallel` feature of `charles-core` guarantee identical advisor
//! output with and without threads.
//!
//! Work distribution is static chunking: the slice is split into
//! `min(threads, len)` contiguous chunks, one worker thread per chunk.
//! The advisor's units of work (scoring one candidate cut, evaluating
//! one INDEP pair) are coarse and uniform enough that static chunking
//! is within noise of work stealing, without a dependency.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static THRESHOLD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Inputs shorter than this run sequentially even with threads enabled.
///
/// Thread spawn costs tens of microseconds; the advisor's smallest
/// fan-outs (`Explorer::covers` over a 2–3 segment segmentation, INDEP
/// selection lookups that are usually memo hits) finish in single-digit
/// microseconds, so spawning for them is pure overhead. Four is the
/// smallest cutoff that keeps every genuinely coarse fan-out (candidate
/// seeding over k attributes, frontier pair evaluation, scoring) on the
/// threaded path.
pub const DEFAULT_PAR_THRESHOLD: usize = 4;

/// Force the worker-thread count at runtime (`0` clears the override).
/// `set_num_threads(1)` routes every `par_map` through the sequential
/// branch — the exact code the `parallel`-feature-off build runs —
/// which is how the equivalence suite compares the two paths within
/// one process.
pub fn set_num_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Number of worker threads `par_map` will use: the
/// [`set_num_threads`] override if set, else the `CHARLES_NUM_THREADS`
/// environment variable (0 or unset ⇒ all available cores); always at
/// least 1. The env/cores default is resolved once — the env lookup
/// takes the process-wide environment lock, which must stay off the
/// hot path.
pub fn num_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("CHARLES_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Force the sequential cutoff at runtime (`0` clears the override,
/// falling back to the `CHARLES_PAR_THRESHOLD` environment variable or
/// [`DEFAULT_PAR_THRESHOLD`]). `set_par_threshold(1)` disables the
/// cutoff entirely — every multi-element input takes the threaded path,
/// the pre-cutoff behaviour — which is how the load harness measures
/// the cutoff's effect A/B. The cutoff is a pure execution-strategy
/// switch: output is bitwise identical at any threshold
/// (`tests/parallel_equivalence.rs` pins this).
pub fn set_par_threshold(n: usize) {
    THRESHOLD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The sequential cutoff [`par_map`] applies: inputs with fewer items
/// than this run on the calling thread. Resolution order: the
/// [`set_par_threshold`] override if set, else `CHARLES_PAR_THRESHOLD`
/// (resolved once, like `CHARLES_NUM_THREADS`), else
/// [`DEFAULT_PAR_THRESHOLD`]; always at least 1.
pub fn par_threshold() -> usize {
    let forced = THRESHOLD_OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("CHARLES_PAR_THRESHOLD")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_PAR_THRESHOLD)
    })
}

thread_local! {
    /// Set while executing inside a `par_map` worker. Nested `par_map`
    /// calls (e.g. HB-cuts pair evaluation → INDEP → product-entropy
    /// selection fan-out) run sequentially instead of spawning
    /// threads-of-threads: only the outermost level parallelises, which
    /// bounds concurrency at [`num_threads`] and avoids paying thread
    /// spawn cost on inner loops that are usually cache hits.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Order-preserving parallel map: equivalent to
/// `items.iter().map(f).collect()`, computed on up to [`num_threads`]
/// worker threads. Panics in `f` propagate to the caller. Calls nested
/// inside a worker run sequentially (outermost-level parallelism only).
///
/// Threads are spawned per call (no pool), so this is meant for coarse
/// units of work — median scans, segment selections, whole advisor
/// restarts — where per-item cost dwarfs the ~tens-of-µs spawn cost.
/// Inputs shorter than [`par_threshold`] run sequentially on the
/// calling thread, so tiny fan-outs (memoized cover lookups, 2-segment
/// INDEP selections) don't pay spawn cost for microsecond work; callers
/// with *long* inputs of mostly-cached µs-scale items should still
/// filter those out first (see the HB-cuts pair argmin).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    // Nested calls and sub-threshold inputs short-circuit before
    // touching num_threads(): spawn cost dwarfs microsecond work.
    if items.len() <= 1 || items.len() < par_threshold() || IN_WORKER.with(|w| w.get()) {
        return items.iter().map(f).collect();
    }
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    // Contiguous chunks, sized to cover all items. Each worker returns
    // its chunk's results as one Vec; joining in spawn order and
    // extending keeps the output in input order.
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<U> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let fref = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|in_chunk| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    in_chunk.iter().map(fref).collect::<Vec<U>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(chunk_out) => out.extend(chunk_out),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// A fixed-size worker pool for long-lived concurrent tasks.
///
/// [`par_map`] covers fork-join data parallelism; servers need the other
/// shape — a bounded set of threads draining an unbounded queue of
/// independent jobs (one per connection). Jobs are `FnOnce` closures
/// pushed with [`WorkerPool::execute`]; a panicking job is caught and
/// counted, never takes its worker down, and never propagates to the
/// submitter. Dropping the pool closes the queue, drains the remaining
/// jobs and joins every worker.
pub struct WorkerPool {
    sender: Option<std::sync::mpsc::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    panics: std::sync::Arc<AtomicUsize>,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

impl WorkerPool {
    /// Spawn a pool of `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> WorkerPool {
        let (sender, receiver) = std::sync::mpsc::channel::<Job>();
        let receiver = std::sync::Arc::new(std::sync::Mutex::new(receiver));
        let panics = std::sync::Arc::new(AtomicUsize::new(0));
        let workers = (0..workers.max(1))
            .map(|_| {
                let receiver = std::sync::Arc::clone(&receiver);
                let panics = std::sync::Arc::clone(&panics);
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only for the pop, not the job.
                    let job = match receiver.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => return, // a sibling panicked mid-recv; shut down
                    };
                    match job {
                        Ok(job) => {
                            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err()
                            {
                                panics.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => return, // queue closed: pool is dropping
                    }
                })
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
            panics,
        }
    }

    /// Submit a job. Never blocks: the queue is unbounded, jobs run as
    /// workers free up, in submission order per worker pop.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool sender lives until drop")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of jobs that panicked (and were contained).
    pub fn panic_count(&self) -> usize {
        self.panics.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel makes every idle worker's recv() fail once
        // the queued jobs are drained.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `set_num_threads`/`set_par_threshold` are process-global and
    /// `#[test]` fns run concurrently: every test that overrides either
    /// takes this lock so the overrides can't bleed across tests.
    static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_overrides<T>(threads: usize, threshold: usize, f: impl FnOnce() -> T) -> T {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_num_threads(threads);
        set_par_threshold(threshold);
        let out = f();
        set_num_threads(0);
        set_par_threshold(0);
        out
    }

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        let par = par_map(&items, |&x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_preserves_order_with_floats() {
        let items: Vec<f64> = (0..777).map(|i| i as f64 * 0.1).collect();
        let seq: Vec<f64> = items.iter().map(|&x| (x.sin() * 1e6).ln_1p()).collect();
        let par = par_map(&items, |&x| (x.sin() * 1e6).ln_1p());
        // Bitwise equality, not approximate equality.
        let seq_bits: Vec<u64> = seq.iter().map(|v| v.to_bits()).collect();
        let par_bits: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
        assert_eq!(seq_bits, par_bits);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<i32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn nested_par_map_stays_sequential() {
        // The inner map must not spawn threads-of-threads; it still
        // computes the right answer in order. Force >1 worker so the
        // outer map actually threads even on single-core machines, and
        // threshold 1 so the cutoff can't mask the nesting guard.
        let got = with_overrides(4, 1, || {
            let outer: Vec<u64> = (0..8).collect();
            par_map(&outer, |&x| {
                let inner: Vec<u64> = (0..4).collect();
                let inner_ids = par_map(&inner, |_| std::thread::current().id());
                // All inner work ran on this (worker) thread.
                assert!(inner_ids
                    .iter()
                    .all(|&id| id == std::thread::current().id()));
                x * 10
            })
        });
        assert_eq!(got, (0..8).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sub_threshold_inputs_stay_on_the_calling_thread() {
        // Below the cutoff no worker threads spawn: every item is
        // computed on the caller. At or above it, the map threads.
        with_overrides(4, 4, || {
            let me = std::thread::current().id();
            let small: Vec<u64> = (0..3).collect();
            let ids = par_map(&small, |_| std::thread::current().id());
            assert!(ids.iter().all(|&id| id == me), "len 3 < threshold 4");
            let big: Vec<u64> = (0..64).collect();
            let ids = par_map(&big, |&x| {
                std::thread::sleep(std::time::Duration::from_millis(1 + x % 2));
                std::thread::current().id()
            });
            let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
            assert!(distinct.len() > 1, "len 64 ≥ threshold must thread");
        });
    }

    #[test]
    fn threshold_one_disables_the_cutoff() {
        // The pre-cutoff behaviour: even a 2-item map may thread.
        with_overrides(2, 1, || {
            let items: Vec<u64> = (0..2).collect();
            let ids = par_map(&items, |_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                std::thread::current().id()
            });
            assert_ne!(ids[0], ids[1], "threshold 1 must spawn for 2 items");
        });
    }

    #[test]
    fn threshold_is_a_pure_strategy_switch() {
        // Identical output (bitwise, for floats) at every threshold.
        let items: Vec<f64> = (0..33).map(|i| i as f64 * 0.37).collect();
        let reference: Vec<u64> = items
            .iter()
            .map(|&x| (x.sin() * 1e6).ln_1p().to_bits())
            .collect();
        for threshold in [1usize, 4, 16, 64] {
            let got: Vec<u64> = with_overrides(0, threshold, || {
                par_map(&items, |&x| (x.sin() * 1e6).ln_1p())
            })
            .iter()
            .map(|v| v.to_bits())
            .collect();
            assert_eq!(got, reference, "threshold {threshold}");
        }
    }

    #[test]
    fn worker_pool_runs_all_jobs() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.worker_count(), 4);
        let sum = std::sync::Arc::new(AtomicUsize::new(0));
        for i in 0..100 {
            let sum = std::sync::Arc::clone(&sum);
            pool.execute(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        }
        drop(pool); // joins after draining the queue
        assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum());
    }

    #[test]
    fn worker_pool_survives_panicking_jobs() {
        let pool = WorkerPool::new(2);
        let done = std::sync::Arc::new(AtomicUsize::new(0));
        for i in 0..20 {
            let done = std::sync::Arc::clone(&done);
            pool.execute(move || {
                if i % 3 == 0 {
                    panic!("job {i} blows up");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        let panics = {
            // Drop to drain + join, but read the panic count first via a
            // clone of the counter the pool shares with its workers.
            let counter = std::sync::Arc::clone(&pool.panics);
            drop(pool);
            counter.load(Ordering::Relaxed)
        };
        assert_eq!(done.load(Ordering::Relaxed), 13);
        assert_eq!(panics, 7);
    }

    #[test]
    fn worker_pool_zero_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.worker_count(), 1);
        let flag = std::sync::Arc::new(AtomicUsize::new(0));
        let f2 = std::sync::Arc::clone(&flag);
        pool.execute(move || {
            f2.store(7, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(flag.load(Ordering::Relaxed), 7);
    }
}
