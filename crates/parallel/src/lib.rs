//! Deterministic fork-join helpers for the Charles hot paths.
//!
//! crates.io (and hence rayon) is unavailable in this build
//! environment, so this crate provides the minimal primitive the
//! advisor's evaluation paths need: an **order-preserving parallel
//! map** over a slice, built on `std::thread::scope`.
//!
//! Determinism contract: `par_map(items, f)` returns exactly
//! `items.iter().map(f).collect()` — results land at the index of
//! their input, and any reduction the caller performs afterwards runs
//! sequentially in index order. As long as `f` itself is a pure
//! function of its input, parallel and sequential execution are
//! **bitwise identical**, floats included. This is what lets the
//! `parallel` feature of `charles-core` guarantee identical advisor
//! output with and without threads.
//!
//! Work distribution is static chunking: the slice is split into
//! `min(threads, len)` contiguous chunks, one worker thread per chunk.
//! The advisor's units of work (scoring one candidate cut, evaluating
//! one INDEP pair) are coarse and uniform enough that static chunking
//! is within noise of work stealing, without a dependency.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the worker-thread count at runtime (`0` clears the override).
/// `set_num_threads(1)` routes every `par_map` through the sequential
/// branch — the exact code the `parallel`-feature-off build runs —
/// which is how the equivalence suite compares the two paths within
/// one process.
pub fn set_num_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Number of worker threads `par_map` will use: the
/// [`set_num_threads`] override if set, else the `CHARLES_NUM_THREADS`
/// environment variable (0 or unset ⇒ all available cores); always at
/// least 1. The env/cores default is resolved once — the env lookup
/// takes the process-wide environment lock, which must stay off the
/// hot path.
pub fn num_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("CHARLES_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

thread_local! {
    /// Set while executing inside a `par_map` worker. Nested `par_map`
    /// calls (e.g. HB-cuts pair evaluation → INDEP → product-entropy
    /// selection fan-out) run sequentially instead of spawning
    /// threads-of-threads: only the outermost level parallelises, which
    /// bounds concurrency at [`num_threads`] and avoids paying thread
    /// spawn cost on inner loops that are usually cache hits.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Order-preserving parallel map: equivalent to
/// `items.iter().map(f).collect()`, computed on up to [`num_threads`]
/// worker threads. Panics in `f` propagate to the caller. Calls nested
/// inside a worker run sequentially (outermost-level parallelism only).
///
/// Threads are spawned per call (no pool), so this is meant for coarse
/// units of work — median scans, segment selections, whole advisor
/// restarts — where per-item cost dwarfs the ~tens-of-µs spawn cost.
/// Callers with mostly-cached, µs-scale items should filter those out
/// first (see the HB-cuts pair argmin) or stay sequential.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    // Nested calls short-circuit before touching num_threads().
    if items.len() <= 1 || IN_WORKER.with(|w| w.get()) {
        return items.iter().map(f).collect();
    }
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    // Contiguous chunks, sized to cover all items. Each worker returns
    // its chunk's results as one Vec; joining in spawn order and
    // extending keeps the output in input order.
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<U> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let fref = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|in_chunk| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    in_chunk.iter().map(fref).collect::<Vec<U>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(chunk_out) => out.extend(chunk_out),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        let par = par_map(&items, |&x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_preserves_order_with_floats() {
        let items: Vec<f64> = (0..777).map(|i| i as f64 * 0.1).collect();
        let seq: Vec<f64> = items.iter().map(|&x| (x.sin() * 1e6).ln_1p()).collect();
        let par = par_map(&items, |&x| (x.sin() * 1e6).ln_1p());
        // Bitwise equality, not approximate equality.
        let seq_bits: Vec<u64> = seq.iter().map(|v| v.to_bits()).collect();
        let par_bits: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
        assert_eq!(seq_bits, par_bits);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<i32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn nested_par_map_stays_sequential() {
        // The inner map must not spawn threads-of-threads; it still
        // computes the right answer in order. Force >1 worker so the
        // outer map actually threads even on single-core machines.
        set_num_threads(4);
        let outer: Vec<u64> = (0..8).collect();
        let got = par_map(&outer, |&x| {
            let inner: Vec<u64> = (0..4).collect();
            let inner_ids = par_map(&inner, |_| std::thread::current().id());
            // All inner work ran on this (worker) thread.
            assert!(inner_ids
                .iter()
                .all(|&id| id == std::thread::current().id()));
            x * 10
        });
        set_num_threads(0);
        assert_eq!(got, (0..8).map(|x| x * 10).collect::<Vec<_>>());
    }
}
