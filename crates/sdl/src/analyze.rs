//! Static semantic analysis of SDL queries against a backend schema.
//!
//! Every interaction with Charles is an SDL context, and before this
//! pass existed a bad context — an unknown attribute, a string literal
//! on an integer column, a contradictory conjunction — flowed all the
//! way into `Backend::eval` and died (or silently selected nothing)
//! deep inside a drill. [`analyze`] is the admission seam that catches
//! those contexts **without reading a single row**:
//!
//! * **Typed diagnostics** with machine-readable codes
//!   ([`DiagnosticCode`]) and the offending attribute/literal: unknown
//!   attribute, literal/column type mismatch, `lo > hi` empty range,
//!   empty set, mixed-type set.
//! * **A satisfiability verdict** via per-attribute interval/set
//!   intersection (building on [`Constraint::intersect`]): a
//!   conjunction whose constraints on some attribute have an empty
//!   intersection is flagged [`Satisfiability::Unsatisfiable`] purely
//!   symbolically.
//! * **A normalized query** that merges repeated-attribute conjuncts
//!   (a range implied by a tighter range on the same attribute, or a
//!   subsumed `Any`) into one constraint per attribute and
//!   canonicalizes the result, so semantically-equal contexts collapse
//!   to one [`Query::cache_key`] and share one advice-cache entry.
//!   Unconstrained (`Any`) predicates on *distinct* attributes are
//!   deliberately kept: they define the exploration scope, so dropping
//!   them would change the advisor's answer, not just its key.
//!
//! The split between *invalid* and *unsatisfiable* matters to
//! consumers: error-class diagnostics mean the query is ill-typed for
//! this schema and should be rejected (the server answers 422
//! `invalid_context` with the diagnostics array); a valid query that is
//! provably empty is *pruned* — short-circuited to an empty result with
//! zero backend operations (422 `unsatisfiable_context`).

#![warn(missing_docs)]

use crate::predicate::{Constraint, Predicate};
use crate::query::Query;
use charles_store::{DataType, Schema, Value};
use std::fmt;

/// Machine-readable diagnostic codes, stable across releases (clients
/// and tests branch on the snake_case wire names from
/// [`DiagnosticCode::name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticCode {
    /// The query names an attribute the schema does not contain.
    UnknownAttribute,
    /// A literal's type family cannot match its column's type (e.g. a
    /// quoted string constraining an integer column).
    TypeMismatch,
    /// A range constraint with `lo > hi` (or an empty half-open range):
    /// no value can satisfy it.
    EmptyRange,
    /// A set constraint with no values: no value can satisfy it.
    EmptySet,
    /// A set constraint mixing incomparable value families (e.g.
    /// `{1, 'abc'}`).
    MixedTypeSet,
    /// Warning: an attribute carried several conjuncts that merged into
    /// one (the others were redundant or subsumed).
    RedundantConjunct,
    /// Warning: the conjuncts on an attribute have a provably empty
    /// intersection — the whole query selects nothing.
    UnsatisfiableConjunction,
}

impl DiagnosticCode {
    /// The stable snake_case wire name of the code.
    pub fn name(self) -> &'static str {
        match self {
            DiagnosticCode::UnknownAttribute => "unknown_attribute",
            DiagnosticCode::TypeMismatch => "type_mismatch",
            DiagnosticCode::EmptyRange => "empty_range",
            DiagnosticCode::EmptySet => "empty_set",
            DiagnosticCode::MixedTypeSet => "mixed_type_set",
            DiagnosticCode::RedundantConjunct => "redundant_conjunct",
            DiagnosticCode::UnsatisfiableConjunction => "unsatisfiable_conjunction",
        }
    }

    /// Whether this code is an error (the query is ill-typed for the
    /// schema and must be rejected) rather than a warning (the query is
    /// valid; the code annotates normalization or satisfiability).
    pub fn is_error(self) -> bool {
        !matches!(
            self,
            DiagnosticCode::RedundantConjunct | DiagnosticCode::UnsatisfiableConjunction
        )
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One analysis finding: a code, the attribute it concerns, and a
/// human-readable detail naming the offending literal or constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The machine-readable code.
    pub code: DiagnosticCode,
    /// The attribute the finding concerns.
    pub attr: String,
    /// Human-readable detail (offending literal, expected type, …).
    pub detail: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(code: DiagnosticCode, attr: impl Into<String>, detail: impl Into<String>) -> Self {
        Diagnostic {
            code,
            attr: attr.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {:?}: {}",
            self.code.name(),
            self.attr,
            self.detail
        )
    }
}

/// The satisfiability verdict of a conjunction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Satisfiability {
    /// The analysis could not prove the selection empty (it may still
    /// select zero rows of the actual data).
    Satisfiable,
    /// The selection is provably empty: no row of *any* dataset can
    /// satisfy every conjunct.
    Unsatisfiable,
}

/// The result of analyzing one query against one schema.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// Findings, in attribute order (errors and warnings interleaved).
    pub diagnostics: Vec<Diagnostic>,
    /// Whether the conjunction is provably empty.
    pub satisfiability: Satisfiability,
    /// The normalized query: one merged constraint per attribute, in
    /// canonical form. `Some` exactly when the query is valid and
    /// satisfiable.
    normalized: Option<Query>,
}

impl QueryReport {
    /// Whether the query is well-typed for the schema (no error-class
    /// diagnostics; warnings are fine).
    pub fn is_valid(&self) -> bool {
        !self.diagnostics.iter().any(|d| d.code.is_error())
    }

    /// Whether the analysis failed to prove the selection empty.
    pub fn is_satisfiable(&self) -> bool {
        self.satisfiability == Satisfiability::Satisfiable
    }

    /// The error-class diagnostics only.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.code.is_error())
            .collect()
    }

    /// Consume the report into its error-class diagnostics.
    pub fn into_errors(self) -> Vec<Diagnostic> {
        self.diagnostics
            .into_iter()
            .filter(|d| d.code.is_error())
            .collect()
    }

    /// The normalized query, when the query is valid and satisfiable.
    pub fn normalized(&self) -> Option<&Query> {
        self.normalized.as_ref()
    }

    /// Consume the report into the normalized query.
    pub fn into_normalized(self) -> Option<Query> {
        self.normalized
    }
}

/// Analyze `query` against `schema`: lint every constraint, fold the
/// per-attribute intersections into a satisfiability verdict, and build
/// the normalized (merged, canonical) form. Pure and row-free — cost is
/// proportional to the query text, never to the data.
pub fn analyze(query: &Query, schema: &Schema) -> QueryReport {
    let mut diagnostics = Vec::new();
    let mut provably_empty = false;
    let mut invalid = false;
    let mut merged: Vec<Predicate> = Vec::new();

    // Attributes in first-occurrence order, each analyzed once over all
    // of its conjuncts.
    let mut attrs: Vec<&str> = Vec::new();
    for p in query.predicates() {
        if !attrs.contains(&p.attr.as_str()) {
            attrs.push(&p.attr);
        }
    }

    for attr in attrs {
        let conjuncts: Vec<&Constraint> = query
            .predicates()
            .iter()
            .filter(|p| p.attr == attr)
            .map(|p| &p.constraint)
            .collect();

        let Ok(ty) = schema.type_of(attr) else {
            diagnostics.push(Diagnostic::new(
                DiagnosticCode::UnknownAttribute,
                attr,
                format!("schema {schema} has no column {attr:?}"),
            ));
            invalid = true;
            continue;
        };

        let mut normals = Vec::with_capacity(conjuncts.len());
        let mut attr_ok = true;
        for c in conjuncts {
            match check_constraint(attr, ty, c, &mut diagnostics) {
                Checked::Ok(normal) => normals.push(normal),
                Checked::Invalid { provably_empty: e } => {
                    attr_ok = false;
                    invalid = true;
                    provably_empty |= e;
                }
            }
        }
        if !attr_ok {
            continue;
        }

        // Fold the conjuncts into one constraint per attribute.
        let mut iter = normals.into_iter();
        let mut acc = iter.next().expect("every attribute has ≥ 1 conjunct");
        let mut count = 1usize;
        let mut empty = false;
        for c in iter {
            count += 1;
            match acc.intersect(&c) {
                Some(next) => acc = next,
                None => {
                    empty = true;
                    break;
                }
            }
        }
        if empty {
            diagnostics.push(Diagnostic::new(
                DiagnosticCode::UnsatisfiableConjunction,
                attr,
                format!("the {count} constraints on {attr:?} have an empty intersection"),
            ));
            provably_empty = true;
            continue;
        }
        if count > 1 {
            diagnostics.push(Diagnostic::new(
                DiagnosticCode::RedundantConjunct,
                attr,
                format!(
                    "{count} constraints on {attr:?} merge into {}",
                    Predicate::new(attr, acc.clone())
                ),
            ));
        }
        merged.push(Predicate::new(attr, acc));
    }

    let satisfiability = if provably_empty {
        Satisfiability::Unsatisfiable
    } else {
        Satisfiability::Satisfiable
    };
    let normalized = if !invalid && !provably_empty {
        Some(Query::conjunction(merged).canonicalized())
    } else {
        None
    };
    QueryReport {
        diagnostics,
        satisfiability,
        normalized,
    }
}

/// Outcome of linting a single constraint.
enum Checked {
    /// Structurally valid; carries the normalized form (de-duplicated
    /// set, closed discrete range).
    Ok(Constraint),
    /// An error diagnostic was pushed; `provably_empty` is true when
    /// the constraint alone can match no value (empty range/set, or a
    /// uniformly type-mismatched literal list).
    Invalid { provably_empty: bool },
}

fn type_of_value(v: &Value) -> DataType {
    v.data_type()
}

fn check_constraint(
    attr: &str,
    ty: DataType,
    c: &Constraint,
    diagnostics: &mut Vec<Diagnostic>,
) -> Checked {
    match c {
        Constraint::Any => Checked::Ok(Constraint::Any),
        Constraint::Range {
            lo,
            hi,
            hi_inclusive,
        } => {
            let mut mismatched = false;
            for bound in [lo, hi] {
                if !type_of_value(bound).comparable_with(ty) {
                    diagnostics.push(Diagnostic::new(
                        DiagnosticCode::TypeMismatch,
                        attr,
                        format!(
                            "range bound {bound} is {}, but column {attr:?} is {ty}",
                            type_of_value(bound).name()
                        ),
                    ));
                    mismatched = true;
                }
            }
            if mismatched {
                // A bound incomparable with the column never matches a
                // row of that column, so the constraint is empty too.
                return Checked::Invalid {
                    provably_empty: true,
                };
            }
            // Both bounds live in the column's family, so they are
            // mutually comparable; re-running the validating constructor
            // normalizes discrete half-open forms and flags `lo > hi`.
            match Constraint::range_with(lo.clone(), hi.clone(), *hi_inclusive) {
                Ok(normal) => Checked::Ok(normal),
                Err(_) => {
                    diagnostics.push(Diagnostic::new(
                        DiagnosticCode::EmptyRange,
                        attr,
                        format!(
                            "range [{lo}, {hi}{}] is empty",
                            if *hi_inclusive { "" } else { "[" }
                        ),
                    ));
                    Checked::Invalid {
                        provably_empty: true,
                    }
                }
            }
        }
        Constraint::Set(vals) => {
            if vals.is_empty() {
                diagnostics.push(Diagnostic::new(
                    DiagnosticCode::EmptySet,
                    attr,
                    "set constraint has no values".to_string(),
                ));
                return Checked::Invalid {
                    provably_empty: true,
                };
            }
            let first = type_of_value(&vals[0]);
            if let Some(odd) = vals
                .iter()
                .find(|v| !type_of_value(v).comparable_with(first))
            {
                diagnostics.push(Diagnostic::new(
                    DiagnosticCode::MixedTypeSet,
                    attr,
                    format!(
                        "set mixes {} value {} with {} value {}",
                        first.name(),
                        vals[0],
                        type_of_value(odd).name(),
                        odd
                    ),
                ));
                // A mixed set may still contain values of the column's
                // family, so emptiness is not provable here.
                return Checked::Invalid {
                    provably_empty: false,
                };
            }
            if !first.comparable_with(ty) {
                diagnostics.push(Diagnostic::new(
                    DiagnosticCode::TypeMismatch,
                    attr,
                    format!(
                        "set value {} is {}, but column {attr:?} is {ty}",
                        vals[0],
                        first.name()
                    ),
                ));
                // Uniform family, all incomparable with the column: the
                // whole set can match nothing.
                return Checked::Invalid {
                    provably_empty: true,
                };
            }
            match Constraint::set(vals.clone()) {
                Ok(normal) => Checked::Ok(normal),
                // Unreachable (empty/mixed were excluded above), but a
                // lint pass must not panic on adversarial input.
                Err(_) => Checked::Invalid {
                    provably_empty: false,
                },
            }
        }
    }
}

/// Schema-free structural well-formedness: no repeated attributes, every
/// range non-empty with comparable bounds, every set non-empty and
/// family-uniform. This is the invariant [`analyze`]'s normalized output
/// guarantees, and the precondition [`crate::sql::where_clause`] debug-asserts
/// before rendering SQL for an external engine.
pub fn well_formed(query: &Query) -> bool {
    if query.has_repeated_attributes() {
        return false;
    }
    query.predicates().iter().all(|p| match &p.constraint {
        Constraint::Any => true,
        Constraint::Range {
            lo,
            hi,
            hi_inclusive,
        } => match lo.try_cmp(hi) {
            Ok(std::cmp::Ordering::Less) => true,
            Ok(std::cmp::Ordering::Equal) => *hi_inclusive,
            _ => false,
        },
        Constraint::Set(vals) => {
            !vals.is_empty()
                && vals
                    .iter()
                    .all(|v| v.data_type().comparable_with(vals[0].data_type()))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_store::Schema;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("size", DataType::Int),
            ("kind", DataType::Str),
            ("score", DataType::Float),
        ])
        .unwrap()
    }

    fn codes(report: &QueryReport) -> Vec<DiagnosticCode> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_query_has_no_findings() {
        let q = crate::parse_query("(size: [0,10], kind: {a, b})", &schema()).unwrap();
        let r = analyze(&q, &schema());
        assert!(r.diagnostics.is_empty());
        assert!(r.is_valid());
        assert!(r.is_satisfiable());
        // The normalized form of a duplicate-free query is exactly its
        // canonical form, so cache keys are unchanged by analysis.
        assert_eq!(r.normalized(), Some(&q.canonicalized()));
    }

    #[test]
    fn unknown_attribute_diagnostic() {
        let q = Query::wildcard(&["nope", "size"]);
        let r = analyze(&q, &schema());
        assert_eq!(codes(&r), vec![DiagnosticCode::UnknownAttribute]);
        assert_eq!(r.diagnostics[0].attr, "nope");
        assert!(!r.is_valid());
        assert!(r.normalized().is_none());
    }

    #[test]
    fn type_mismatch_diagnostics() {
        // Quoted literal on an int column — the parser accepts it (a
        // quoted literal is always a string), analysis rejects it.
        let q = crate::parse_query("(size: {'abc'})", &schema()).unwrap();
        let r = analyze(&q, &schema());
        assert_eq!(codes(&r), vec![DiagnosticCode::TypeMismatch]);
        assert_eq!(r.satisfiability, Satisfiability::Unsatisfiable);
        // Range bounds too.
        let q = Query::conjunction(vec![Predicate::new(
            "size",
            Constraint::Range {
                lo: Value::str("a"),
                hi: Value::str("b"),
                hi_inclusive: true,
            },
        )]);
        let r = analyze(&q, &schema());
        assert!(codes(&r).contains(&DiagnosticCode::TypeMismatch));
        // Numerics are one family: a float range on an int column is fine.
        let q = Query::conjunction(vec![Predicate::new(
            "size",
            Constraint::range(Value::Float(0.5), Value::Float(9.5)).unwrap(),
        )]);
        assert!(analyze(&q, &schema()).is_valid());
    }

    #[test]
    fn empty_range_diagnostic() {
        let q = Query::conjunction(vec![Predicate::new(
            "size",
            Constraint::Range {
                lo: Value::Int(5),
                hi: Value::Int(3),
                hi_inclusive: true,
            },
        )]);
        let r = analyze(&q, &schema());
        assert_eq!(codes(&r), vec![DiagnosticCode::EmptyRange]);
        assert_eq!(r.satisfiability, Satisfiability::Unsatisfiable);
        assert!(!r.is_valid());
    }

    #[test]
    fn empty_set_diagnostic() {
        let q = Query::conjunction(vec![Predicate::new("kind", Constraint::Set(vec![]))]);
        let r = analyze(&q, &schema());
        assert_eq!(codes(&r), vec![DiagnosticCode::EmptySet]);
        assert_eq!(r.satisfiability, Satisfiability::Unsatisfiable);
    }

    #[test]
    fn mixed_type_set_diagnostic() {
        let q = Query::conjunction(vec![Predicate::new(
            "size",
            Constraint::Set(vec![Value::Int(1), Value::str("a")]),
        )]);
        let r = analyze(&q, &schema());
        assert_eq!(codes(&r), vec![DiagnosticCode::MixedTypeSet]);
        // Not provably empty: 1 could still match.
        assert_eq!(r.satisfiability, Satisfiability::Satisfiable);
        assert!(!r.is_valid());
    }

    #[test]
    fn unsatisfiable_conjunction_is_pruned_symbolically() {
        let q = crate::parse_query("(size: [0,10], size: [20,30])", &schema()).unwrap();
        let r = analyze(&q, &schema());
        assert_eq!(codes(&r), vec![DiagnosticCode::UnsatisfiableConjunction]);
        assert!(r.is_valid(), "warnings only");
        assert!(!r.is_satisfiable());
        assert!(r.normalized().is_none());
        // Disjoint sets prune too.
        let q = crate::parse_query("(kind: {a}, kind: {b})", &schema()).unwrap();
        assert!(!analyze(&q, &schema()).is_satisfiable());
    }

    #[test]
    fn redundant_conjuncts_merge_and_collapse_cache_keys() {
        let s = schema();
        let wide_then_tight = crate::parse_query("(size: [0,100], size: [50,200])", &s).unwrap();
        let tight = crate::parse_query("(size: [50,100])", &s).unwrap();
        let r = analyze(&wide_then_tight, &s);
        assert_eq!(codes(&r), vec![DiagnosticCode::RedundantConjunct]);
        assert!(r.is_valid() && r.is_satisfiable());
        assert_eq!(
            r.normalized().unwrap().cache_key(),
            tight.cache_key(),
            "merged conjunction must share the plain query's cache key"
        );
        // All permutations of the redundant conjuncts collapse to one key.
        let permuted = crate::parse_query("(size: [50,200], size: [0,100])", &s).unwrap();
        let rp = analyze(&permuted, &s);
        assert_eq!(
            rp.normalized().unwrap().cache_key(),
            r.normalized().unwrap().cache_key()
        );
        // A subsumed `Any` on the same attribute merges away as well.
        let with_any = crate::parse_query("(size: [50,100], size: )", &s).unwrap();
        let ra = analyze(&with_any, &s);
        assert_eq!(ra.normalized().unwrap().cache_key(), tight.cache_key());
    }

    #[test]
    fn scope_defining_any_predicates_are_kept() {
        // `(kind: , size: [0,10])` and `(size: [0,10])` are different
        // exploration scopes: normalization must not conflate them.
        let s = schema();
        let scoped = crate::parse_query("(kind: , size: [0,10])", &s).unwrap();
        let bare = crate::parse_query("(size: [0,10])", &s).unwrap();
        let rk = analyze(&scoped, &s).into_normalized().unwrap();
        let rb = analyze(&bare, &s).into_normalized().unwrap();
        assert_ne!(rk.cache_key(), rb.cache_key());
        assert!(rk.mentions("kind"));
    }

    #[test]
    fn normalization_normalizes_direct_constructed_constraints() {
        // Direct enum construction can bypass the validating
        // constructors; analysis re-normalizes (set dedup, discrete
        // half-open → closed).
        let q = Query::conjunction(vec![
            Predicate::new(
                "size",
                Constraint::Set(vec![Value::Int(2), Value::Int(1), Value::Int(2)]),
            ),
            Predicate::new(
                "score",
                Constraint::Range {
                    lo: Value::Float(0.0),
                    hi: Value::Float(1.0),
                    hi_inclusive: false,
                },
            ),
        ]);
        let r = analyze(&q, &schema());
        assert!(r.is_valid());
        let n = r.into_normalized().unwrap();
        assert_eq!(
            n.constraint("size"),
            Some(&Constraint::Set(vec![Value::Int(1), Value::Int(2)]))
        );
        assert!(well_formed(&n));
    }

    #[test]
    fn diagnostics_render_with_code_and_attr() {
        let d = Diagnostic::new(DiagnosticCode::EmptyRange, "size", "range [5, 3] is empty");
        assert_eq!(
            d.to_string(),
            "empty_range on \"size\": range [5, 3] is empty"
        );
        assert!(DiagnosticCode::EmptyRange.is_error());
        assert!(!DiagnosticCode::RedundantConjunct.is_error());
        assert!(!DiagnosticCode::UnsatisfiableConjunction.is_error());
    }

    #[test]
    fn well_formed_structural_checks() {
        let s = schema();
        assert!(well_formed(
            &crate::parse_query("(size: [0,10], kind: {a})", &s).unwrap()
        ));
        assert!(!well_formed(
            &crate::parse_query("(size: [0,10], size: [1,2])", &s).unwrap()
        ));
        assert!(!well_formed(&Query::conjunction(vec![Predicate::new(
            "size",
            Constraint::Range {
                lo: Value::Int(5),
                hi: Value::Int(3),
                hi_inclusive: true
            },
        )])));
        assert!(!well_formed(&Query::conjunction(vec![Predicate::new(
            "kind",
            Constraint::Set(vec![])
        )])));
        assert!(!well_formed(&Query::conjunction(vec![Predicate::new(
            "kind",
            Constraint::Set(vec![Value::Int(1), Value::str("a")])
        )])));
    }

    #[test]
    fn multiple_findings_accumulate() {
        let q = Query::conjunction(vec![
            Predicate::any("nope"),
            Predicate::new("kind", Constraint::Set(vec![])),
            Predicate::new(
                "size",
                Constraint::Range {
                    lo: Value::Int(9),
                    hi: Value::Int(1),
                    hi_inclusive: true,
                },
            ),
        ]);
        let r = analyze(&q, &schema());
        assert_eq!(
            codes(&r),
            vec![
                DiagnosticCode::UnknownAttribute,
                DiagnosticCode::EmptySet,
                DiagnosticCode::EmptyRange,
            ]
        );
        assert_eq!(r.errors().len(), 3);
        assert_eq!(r.clone().into_errors().len(), 3);
    }
}
