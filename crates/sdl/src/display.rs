//! Paper-style rendering of SDL constructs.
//!
//! The grammar printed here is exactly what [`crate::parser`] accepts, so
//! `parse(render(x)) == x` — a property the test suites lean on.
//!
//! * query — `(date: [1550,1650], tonnage: , type: {jacht, fluit})`
//! * half-open float range — `[0.5,2.5[` (the paper's `[min, med[`)
//! * segmentation — one query per line

use crate::predicate::{Constraint, Predicate};
use crate::query::Query;
use crate::segmentation::Segmentation;
use charles_store::Value;
use std::fmt;

/// Render a literal, quoting strings that would not survive re-parsing as
/// bare tokens (spaces, punctuation, or an all-digit spelling).
pub fn render_literal(v: &Value) -> String {
    match v {
        Value::Str(s) => {
            let bare_safe = !s.is_empty()
                && s.chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.')
                && !s.chars().all(|c| c.is_ascii_digit())
                && !matches!(s.as_str(), "true" | "false");
            if bare_safe {
                s.clone()
            } else {
                format!("'{}'", s.replace('\'', "''"))
            }
        }
        other => other.render(),
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Any => Ok(()),
            Constraint::Range {
                lo,
                hi,
                hi_inclusive,
            } => {
                let close = if *hi_inclusive { "]" } else { "[" };
                write!(f, "[{},{}{close}", render_literal(lo), render_literal(hi))
            }
            Constraint::Set(vals) => {
                write!(f, "{{")?;
                for (i, v) in vals.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", render_literal(v))?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.constraint.is_any() {
            write!(f, "{}: ", self.attr)
        } else {
            write!(f, "{}: {}", self.attr, self.constraint)
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.predicates().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Segmentation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, q) in self.queries().iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Constraint;

    #[test]
    fn literal_quoting() {
        assert_eq!(render_literal(&Value::str("jacht")), "jacht");
        assert_eq!(render_literal(&Value::str("de lange")), "'de lange'");
        assert_eq!(render_literal(&Value::str("1234")), "'1234'");
        assert_eq!(render_literal(&Value::str("o'neill")), "'o''neill'");
        assert_eq!(render_literal(&Value::str("true")), "'true'");
        assert_eq!(render_literal(&Value::Int(12)), "12");
    }

    #[test]
    fn constraint_rendering() {
        assert_eq!(
            Constraint::range(Value::Int(1550), Value::Int(1650))
                .unwrap()
                .to_string(),
            "[1550,1650]"
        );
        assert_eq!(
            Constraint::range_with(Value::Float(0.5), Value::Float(2.5), false)
                .unwrap()
                .to_string(),
            "[0.5,2.5["
        );
        assert_eq!(
            Constraint::set(vec![Value::str("jacht"), Value::str("fluit")])
                .unwrap()
                .to_string(),
            "{jacht, fluit}"
        );
    }

    #[test]
    fn int_half_open_renders_closed() {
        // [1000, 1151[ over ints normalises to the Figure 1 form.
        let c = Constraint::range_with(Value::Int(1000), Value::Int(1151), false).unwrap();
        assert_eq!(c.to_string(), "[1000,1150]");
    }

    #[test]
    fn query_rendering_matches_paper_example() {
        let q = Query::new(vec![
            Predicate::new(
                "date",
                Constraint::range(Value::Int(1550), Value::Int(1650)).unwrap(),
            ),
            Predicate::any("tonnage"),
            Predicate::new(
                "type",
                Constraint::set(vec![Value::str("jacht"), Value::str("fluit")]).unwrap(),
            ),
        ])
        .unwrap();
        assert_eq!(
            q.to_string(),
            "(date: [1550,1650], tonnage: , type: {jacht, fluit})"
        );
    }

    #[test]
    fn segmentation_renders_one_query_per_line() {
        let q1 = Query::wildcard(&["a"]);
        let q2 = Query::wildcard(&["b"]);
        let s = Segmentation::new(vec![q1, q2]);
        assert_eq!(s.to_string(), "(a: )\n(b: )");
    }
}
