//! Error type for SDL parsing and evaluation.

use charles_store::StoreError;
use std::fmt;

/// Errors produced by the SDL layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SdlError {
    /// Syntax error at a byte offset of the input.
    Syntax {
        /// Byte position where the error was detected.
        position: usize,
        /// Human-readable description.
        message: String,
    },
    /// A constraint mixes incompatible value types (e.g. `[1, 'abc']`).
    Malformed(String),
    /// The query names an attribute the schema does not contain. Kept
    /// distinct from [`SdlError::Syntax`] so admission layers (e.g. the
    /// HTTP server) can answer with a structured `invalid_context`
    /// diagnostic instead of a generic parse error.
    UnknownAttribute {
        /// The attribute as written.
        attr: String,
        /// Byte position in the parsed input (0 when the error was not
        /// produced by the parser).
        position: usize,
    },
    /// The underlying store rejected an operation.
    Store(StoreError),
}

impl fmt::Display for SdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdlError::Syntax { position, message } => {
                write!(f, "SDL syntax error at byte {position}: {message}")
            }
            SdlError::Malformed(msg) => write!(f, "malformed SDL: {msg}"),
            SdlError::UnknownAttribute { attr, position } => {
                write!(f, "unknown attribute {attr:?} at byte {position}")
            }
            SdlError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for SdlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdlError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for SdlError {
    fn from(e: StoreError) -> Self {
        SdlError::Store(e)
    }
}

/// Result alias for SDL operations.
pub type SdlResult<T> = Result<T, SdlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_syntax_error_mentions_position() {
        let e = SdlError::Syntax {
            position: 7,
            message: "expected ':'".into(),
        };
        assert!(e.to_string().contains("byte 7"));
    }

    #[test]
    fn unknown_attribute_display_names_the_attr() {
        let e = SdlError::UnknownAttribute {
            attr: "nope".into(),
            position: 1,
        };
        assert!(e.to_string().contains("\"nope\""));
        assert!(e.to_string().contains("byte 1"));
    }

    #[test]
    fn store_error_converts_and_sources() {
        use std::error::Error;
        let e: SdlError = StoreError::UnknownColumn("x".into()).into();
        assert!(e.source().is_some());
    }
}
