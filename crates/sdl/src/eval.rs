//! Evaluation: SDL queries → store predicates → selection bitmaps.

use crate::predicate::Constraint;
use crate::query::Query;
use charles_store::{Backend, Bitmap, StorePredicate, StoreResult};

/// Lower an SDL query into the store's physical predicate form.
pub fn lower(query: &Query) -> StorePredicate {
    let mut parts = Vec::new();
    for p in query.predicates() {
        match &p.constraint {
            Constraint::Any => {}
            Constraint::Range {
                lo,
                hi,
                hi_inclusive,
            } => parts.push(StorePredicate::range(
                p.attr.clone(),
                lo.clone(),
                hi.clone(),
                *hi_inclusive,
            )),
            Constraint::Set(values) => {
                parts.push(StorePredicate::set(p.attr.clone(), values.clone()))
            }
        }
    }
    StorePredicate::and(parts)
}

/// Evaluate a query into a selection bitmap: `R(Q)` of the paper.
pub fn selection(query: &Query, backend: &dyn Backend) -> StoreResult<Bitmap> {
    backend.eval(&lower(query))
}

/// Cardinality `|R(Q)|`.
pub fn count(query: &Query, backend: &dyn Backend) -> StoreResult<usize> {
    backend.count(&lower(query))
}

/// Cover of a query **relative to a context** of `context_size` rows.
///
/// The paper defines `C(Q) = |R(Q)|/|T|`; we generalise the denominator to
/// the segmented context so entropies of sub-database explorations stay
/// normalised (see DESIGN.md §1 note 1). Pass `backend.row_count()` to get
/// the paper's literal definition.
pub fn cover(query: &Query, backend: &dyn Backend, context_size: usize) -> StoreResult<f64> {
    if context_size == 0 {
        return Ok(0.0);
    }
    Ok(count(query, backend)? as f64 / context_size as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Constraint;
    use charles_store::{DataType, TableBuilder, Value};

    fn table() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int);
        b.add_column("k", DataType::Str);
        for (x, k) in [(1, "a"), (2, "b"), (3, "a"), (4, "b"), (5, "a")] {
            b.push_row(vec![Value::Int(x), Value::str(k)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn wildcard_lowers_to_true() {
        let q = Query::wildcard(&["x", "k"]);
        assert_eq!(lower(&q), StorePredicate::True);
        assert_eq!(count(&q, &table()).unwrap(), 5);
    }

    #[test]
    fn conjunction_lowering() {
        let q = Query::wildcard(&["x", "k"])
            .refined(
                "x",
                Constraint::range(Value::Int(2), Value::Int(5)).unwrap(),
            )
            .unwrap()
            .refined("k", Constraint::set(vec![Value::str("a")]).unwrap())
            .unwrap();
        let t = table();
        // x in [2,5] → {2,3,4,5}; k = a → {3, 5}
        assert_eq!(count(&q, &t).unwrap(), 2);
        let sel = selection(&q, &t).unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn half_open_range_evaluation() {
        let q = Query::wildcard(&["x"])
            .refined(
                "x",
                Constraint::range_with(Value::Int(1), Value::Int(3), false).unwrap(),
            )
            .unwrap();
        assert_eq!(count(&q, &table()).unwrap(), 2);
    }

    #[test]
    fn cover_relative_to_context() {
        let t = table();
        let q = Query::wildcard(&["k"])
            .refined("k", Constraint::set(vec![Value::str("a")]).unwrap())
            .unwrap();
        assert_eq!(cover(&q, &t, t.len()).unwrap(), 3.0 / 5.0);
        assert_eq!(cover(&q, &t, 3).unwrap(), 1.0);
        assert_eq!(cover(&q, &t, 0).unwrap(), 0.0);
    }
}
