//! `charles-sdl` — the Segmentation Description Language.
//!
//! SDL is the query language introduced by the Charles paper (§2). It can
//! express exactly one thing: **conjunctions of per-attribute predicates**
//! over a single relation. Three constraint forms exist (Definition 1):
//!
//! * a range constraint — `Attr: [a0, a1]`
//! * a set constraint — `Attr: {a0, a1, …, aK}`
//! * no constraint — `Attr:`
//!
//! An SDL *query* (Definition 2) is a tuple of such constraints; a
//! *segmentation* (Definition 3) is a set of queries that partitions a
//! dataset. This crate provides the AST ([`Constraint`], [`Predicate`],
//! [`Query`], [`Segmentation`]), a parser for the paper's textual syntax,
//! paper-style pretty printing, evaluation against a
//! [`charles_store::Backend`], and SQL `WHERE`-clause emission (Charles is
//! "a front-end for SQL systems").
//!
//! ```
//! use charles_store::{Schema, DataType};
//! use charles_sdl::parse_query;
//!
//! let schema = Schema::from_pairs(&[
//!     ("date", DataType::Int),
//!     ("tonnage", DataType::Int),
//!     ("type", DataType::Str),
//! ]).unwrap();
//! let q = parse_query("(date: [1550,1650], tonnage: , type: {jacht, fluit})", &schema).unwrap();
//! assert_eq!(q.to_string(), "(date: [1550,1650], tonnage: , type: {jacht, fluit})");
//! assert_eq!(q.constrained_attributes(), vec!["date", "type"]);
//! ```

pub mod analyze;
pub mod display;
pub mod error;
pub mod eval;
pub mod parser;
pub mod predicate;
pub mod query;
pub mod segmentation;
pub mod sql;

pub use analyze::{analyze, Diagnostic, DiagnosticCode, QueryReport, Satisfiability};
pub use error::{SdlError, SdlResult};
pub use eval::{cover, selection};
pub use parser::{parse_query, parse_segmentation};
pub use predicate::{Constraint, Predicate};
pub use query::Query;
pub use segmentation::Segmentation;
pub use sql::{query_to_sql, segmentation_to_sql};
