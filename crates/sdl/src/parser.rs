//! Recursive-descent parser for the paper's SDL surface syntax.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! segmentation := query ((';' | '\n') query)*
//! query        := '(' [pred (',' pred)*] ')'
//! pred         := ident ':' [constraint]
//! constraint   := '[' literal ',' literal (']' | '[')      -- range
//!               | '{' literal (',' literal)* '}'           -- set
//! literal      := quoted | bare token
//! ```
//!
//! Bare literals are typed by the schema of the relation being explored
//! (`date: [1550,1650]` parses its bounds as dates when `date` is a date
//! column); quoted literals (single quotes, `''` escape) are strings.

use crate::error::{SdlError, SdlResult};
use crate::predicate::{Constraint, Predicate};
use crate::query::Query;
use crate::segmentation::Segmentation;
use charles_store::{DataType, Schema, Value};

/// Parse a single SDL query against a schema.
pub fn parse_query(input: &str, schema: &Schema) -> SdlResult<Query> {
    let mut p = Parser::new(input, schema);
    let q = p.query()?;
    p.expect_end()?;
    Ok(q)
}

/// Parse a segmentation: queries separated by `;` or newlines.
pub fn parse_segmentation(input: &str, schema: &Schema) -> SdlResult<Segmentation> {
    let mut p = Parser::new(input, schema);
    let mut queries = vec![p.query()?];
    loop {
        p.skip_ws();
        match p.peek() {
            Some(';') | Some('\n') => {
                // A run of separators and blank lines counts as one.
                while matches!(
                    p.peek(),
                    Some(';') | Some('\n') | Some(' ') | Some('\t') | Some('\r')
                ) {
                    p.bump();
                }
                if p.peek().is_some() {
                    queries.push(p.query()?);
                }
            }
            None => break,
            Some(c) => {
                return Err(p.err(format!("expected ';' or end of input, found {c:?}")));
            }
        }
    }
    Ok(Segmentation::new(queries))
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    schema: &'a Schema,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, schema: &'a Schema) -> Parser<'a> {
        Parser {
            input,
            pos: 0,
            schema,
        }
    }

    fn err(&self, message: String) -> SdlError {
        SdlError::Syntax {
            position: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Skip spaces and tabs — but *not* newlines, which separate queries
    /// in segmentations.
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t') | Some('\r')) {
            self.bump();
        }
    }

    fn skip_ws_and_newlines(&mut self) {
        while matches!(
            self.peek(),
            Some(' ') | Some('\t') | Some('\r') | Some('\n')
        ) {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> SdlResult<()> {
        self.skip_ws();
        match self.peek() {
            Some(found) if found == c => {
                self.bump();
                Ok(())
            }
            Some(found) => Err(self.err(format!("expected {c:?}, found {found:?}"))),
            None => Err(self.err(format!("expected {c:?}, found end of input"))),
        }
    }

    fn expect_end(&mut self) -> SdlResult<()> {
        self.skip_ws_and_newlines();
        match self.peek() {
            None => Ok(()),
            Some(c) => Err(self.err(format!("trailing input starting at {c:?}"))),
        }
    }

    fn query(&mut self) -> SdlResult<Query> {
        self.skip_ws_and_newlines();
        self.expect('(')?;
        let mut predicates = Vec::new();
        self.skip_ws();
        if self.peek() == Some(')') {
            self.bump();
            return Ok(Query::conjunction(predicates));
        }
        loop {
            predicates.push(self.predicate()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(')') => break,
                Some(c) => return Err(self.err(format!("expected ',' or ')', found {c:?}"))),
                None => return Err(self.err("unterminated query".into())),
            }
        }
        // A repeated attribute is a legal conjunction (`a ∈ X ∧ a ∈ Y`),
        // not a syntax error: the static analyzer merges the conjuncts
        // per attribute or proves the conjunction empty, so admission
        // layers can answer with a semantic verdict instead of a parse
        // failure.
        Ok(Query::conjunction(predicates))
    }

    fn predicate(&mut self) -> SdlResult<Predicate> {
        self.skip_ws();
        let attr = self.ident()?;
        let ty = self
            .schema
            .type_of(&attr)
            .map_err(|_| SdlError::UnknownAttribute {
                attr: attr.clone(),
                position: self.pos,
            })?;
        self.expect(':')?;
        self.skip_ws();
        let constraint = match self.peek() {
            Some('[') => self.range(ty)?,
            Some('{') => self.set(ty)?,
            _ => Constraint::Any, // `attr:` followed by ',' or ')'
        };
        Ok(Predicate::new(attr, constraint))
    }

    fn ident(&mut self) -> SdlResult<String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            Err(self.err("expected attribute name".into()))
        } else {
            Ok(self.input[start..self.pos].to_string())
        }
    }

    fn range(&mut self, ty: DataType) -> SdlResult<Constraint> {
        self.expect('[')?;
        let lo = self.literal(ty)?;
        self.expect(',')?;
        let hi = self.literal(ty)?;
        self.skip_ws();
        match self.bump() {
            Some(']') => Constraint::range_with(lo, hi, true),
            Some('[') => Constraint::range_with(lo, hi, false),
            Some(c) => Err(self.err(format!("expected ']' or '[', found {c:?}"))),
            None => Err(self.err("unterminated range".into())),
        }
    }

    fn set(&mut self, ty: DataType) -> SdlResult<Constraint> {
        self.expect('{')?;
        let mut values = vec![self.literal(ty)?];
        loop {
            self.skip_ws();
            match self.bump() {
                Some(',') => values.push(self.literal(ty)?),
                Some('}') => break,
                Some(c) => return Err(self.err(format!("expected ',' or '}}', found {c:?}"))),
                None => return Err(self.err("unterminated set".into())),
            }
        }
        Constraint::set(values)
    }

    fn literal(&mut self, ty: DataType) -> SdlResult<Value> {
        self.skip_ws();
        match self.peek() {
            Some('\'') | Some('"') => {
                let quote = self.bump().expect("peeked");
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(c) if c == quote => {
                            // Doubled quote = escaped quote character.
                            if self.peek() == Some(quote) {
                                self.bump();
                                s.push(quote);
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => return Err(self.err("unterminated string literal".into())),
                    }
                }
                Ok(Value::Str(s))
            }
            Some(_) => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | '+') {
                        // A '-' only continues the token if it is a sign or
                        // an infix (date/identifier) dash.
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.pos == start {
                    return Err(self.err("expected literal".into()));
                }
                let text = &self.input[start..self.pos];
                Value::parse_typed(text, ty)
                    .map_err(|e| self.err(format!("bad literal {text:?}: {e}")))
            }
            None => Err(self.err("expected literal, found end of input".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("date", DataType::Date),
            ("tonnage", DataType::Int),
            ("type", DataType::Str),
            ("score", DataType::Float),
            ("armed", DataType::Bool),
        ])
        .unwrap()
    }

    #[test]
    fn parses_paper_example() {
        let q = parse_query(
            "(date : [1550,1650], tonnage :, type : {'jacht', 'fluit'})",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.attributes(), vec!["date", "tonnage", "type"]);
        assert_eq!(q.constrained_attributes(), vec!["date", "type"]);
        let c = q.constraint("type").unwrap();
        assert_eq!(
            c,
            &Constraint::Set(vec![Value::str("jacht"), Value::str("fluit")])
        );
    }

    #[test]
    fn bare_literals_typed_by_schema() {
        let q = parse_query("(tonnage: [1000,5000])", &schema()).unwrap();
        assert_eq!(
            q.constraint("tonnage").unwrap(),
            &Constraint::Range {
                lo: Value::Int(1000),
                hi: Value::Int(5000),
                hi_inclusive: true
            }
        );
        let q = parse_query("(date: [1550,1650])", &schema()).unwrap();
        assert_eq!(q.constraint("date").unwrap().literal_count(), 2);
        let q = parse_query("(score: [0.5, 2.5[)", &schema()).unwrap();
        assert_eq!(
            q.constraint("score").unwrap(),
            &Constraint::Range {
                lo: Value::Float(0.5),
                hi: Value::Float(2.5),
                hi_inclusive: false
            }
        );
    }

    #[test]
    fn half_open_int_range_normalises() {
        let q = parse_query("(tonnage: [1000,1151[)", &schema()).unwrap();
        assert_eq!(
            q.constraint("tonnage").unwrap(),
            &Constraint::Range {
                lo: Value::Int(1000),
                hi: Value::Int(1150),
                hi_inclusive: true
            }
        );
    }

    #[test]
    fn empty_and_wildcard_queries() {
        let q = parse_query("()", &schema()).unwrap();
        assert!(q.attributes().is_empty());
        let q = parse_query("(tonnage:, type:)", &schema()).unwrap();
        assert_eq!(q.constraint_count(), 0);
        assert_eq!(q.attributes().len(), 2);
    }

    #[test]
    fn bool_and_date_literals() {
        let q = parse_query("(armed: {true})", &schema()).unwrap();
        assert_eq!(
            q.constraint("armed").unwrap(),
            &Constraint::Set(vec![Value::Bool(true)])
        );
        let q = parse_query("(date: [1744-03-07, 1780-12-31])", &schema()).unwrap();
        assert!(q.constraint("date").is_some());
    }

    #[test]
    fn quoted_strings_with_escapes() {
        let q = parse_query("(type: {'de, lange', 'o''neill'})", &schema()).unwrap();
        assert_eq!(
            q.constraint("type").unwrap(),
            &Constraint::Set(vec![Value::str("de, lange"), Value::str("o'neill")])
        );
    }

    #[test]
    fn error_cases_carry_position() {
        for bad in [
            "tonnage: [1,2]",        // missing parens
            "(tonnage [1,2])",       // missing colon
            "(unknown: [1,2])",      // unknown attribute
            "(tonnage: [1,2)",       // unterminated range
            "(tonnage: {1,2)",       // unterminated set
            "(tonnage: [xyz,2])",    // bad literal for int column
            "(tonnage: [1,2]) junk", // trailing input
            "(tonnage: [5,1])",      // inverted range
            "(type: {})",            // empty set
            "(tonnage: [1,2],)",     // dangling comma
        ] {
            let e = parse_query(bad, &schema());
            assert!(e.is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn duplicate_attributes_parse_as_conjunction() {
        // Repeated attributes are structurally legal (AND semantics);
        // the static analyzer decides whether they merge or contradict.
        let q = parse_query("(tonnage: [0,100], tonnage: [50,200])", &schema()).unwrap();
        assert!(q.has_repeated_attributes());
        assert_eq!(q.predicates().len(), 2);
        assert!(q.matches_row(|_| Some(Value::Int(75))));
        assert!(!q.matches_row(|_| Some(Value::Int(10))));
    }

    #[test]
    fn unknown_attribute_gets_a_dedicated_error() {
        match parse_query("(nope: [1,2])", &schema()) {
            Err(SdlError::UnknownAttribute { attr, .. }) => assert_eq!(attr, "nope"),
            other => panic!("expected UnknownAttribute, got {other:?}"),
        }
    }

    #[test]
    fn segmentation_parsing() {
        let s = parse_segmentation(
            "(type: {jacht}); (type: {fluit})\n(type: {pinas})",
            &schema(),
        )
        .unwrap();
        assert_eq!(s.depth(), 3);
    }

    #[test]
    fn segmentation_tolerates_trailing_separator() {
        let s = parse_segmentation("(type: {jacht});\n", &schema()).unwrap();
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn display_parse_round_trip() {
        let inputs = [
            "(date: [1550-01-01,1650-01-01], tonnage: , type: {jacht, fluit})",
            "(tonnage: [1000,1150])",
            "(score: [0.5,2.5[)",
            "(type: {'de, lange'})",
            "(armed: {true, false})",
        ];
        let schema = schema();
        for input in inputs {
            let q = parse_query(input, &schema).unwrap();
            let printed = q.to_string();
            let q2 = parse_query(&printed, &schema).unwrap();
            assert_eq!(q, q2, "round trip failed for {input:?} → {printed:?}");
        }
    }
}
