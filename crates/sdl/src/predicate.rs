//! SDL constraints and predicates (paper Definition 1).

use crate::error::{SdlError, SdlResult};
use charles_store::Value;
use std::cmp::Ordering;

/// The three constraint forms of SDL.
///
/// `Range` carries an `hi_inclusive` flag because the CUT primitive
/// (Definition 5) produces half-open left pieces `[min, med[`; the paper's
/// surface syntax for closed ranges maps to `hi_inclusive == true`.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// No constraint (`Attr:`). Matches every (non-null) value.
    Any,
    /// Range constraint (`Attr: [a0, a1]` or the half-open `[a0, a1[`).
    Range {
        /// Inclusive lower bound.
        lo: Value,
        /// Upper bound.
        hi: Value,
        /// Whether `hi` itself is included.
        hi_inclusive: bool,
    },
    /// Set constraint (`Attr: {a0, …, aK}`). Values are kept de-duplicated
    /// and in insertion order (which CUT makes meaningful: frequency or
    /// alphabetical order).
    Set(Vec<Value>),
}

impl Constraint {
    /// Closed range constructor with validation (`lo ≤ hi`, comparable).
    pub fn range(lo: Value, hi: Value) -> SdlResult<Constraint> {
        Constraint::range_with(lo, hi, true)
    }

    /// Range constructor with explicit upper-bound inclusivity.
    ///
    /// Half-open ranges over discrete types (two `Int` or two `Date`
    /// bounds) are normalised to the closed form by decrementing the upper
    /// bound: `[1000, 1151[` becomes `[1000, 1150]`. This is how Figure 1
    /// of the paper displays integer cut pieces (`tonnage: 1000,1150` /
    /// `1151,1300`), and it makes the rendered syntax round-trip through
    /// the parser structurally.
    pub fn range_with(lo: Value, hi: Value, hi_inclusive: bool) -> SdlResult<Constraint> {
        let (hi, hi_inclusive) = match (&lo, &hi, hi_inclusive) {
            (Value::Int(_), Value::Int(h), false) => (Value::Int(*h - 1), true),
            (Value::Date(_), Value::Date(h), false) => (Value::Date(*h - 1), true),
            _ => (hi, hi_inclusive),
        };
        match lo.try_cmp(&hi) {
            Ok(Ordering::Greater) => Err(SdlError::Malformed(format!(
                "range lower bound {lo} exceeds upper bound {hi}"
            ))),
            Ok(Ordering::Equal) if !hi_inclusive => Err(SdlError::Malformed(format!(
                "half-open range [{lo},{hi}[ is empty"
            ))),
            Ok(_) => Ok(Constraint::Range {
                lo,
                hi,
                hi_inclusive,
            }),
            Err(_) => Err(SdlError::Malformed(format!(
                "range bounds {lo} and {hi} are not comparable"
            ))),
        }
    }

    /// Set constructor: de-duplicates while preserving first occurrence
    /// order; rejects empty sets and mixed incomparable types.
    pub fn set(values: Vec<Value>) -> SdlResult<Constraint> {
        if values.is_empty() {
            return Err(SdlError::Malformed("empty set constraint".into()));
        }
        let mut out: Vec<Value> = Vec::with_capacity(values.len());
        for v in values {
            if let Some(first) = out.first() {
                if !first.comparable_with(&v) {
                    return Err(SdlError::Malformed(format!(
                        "set mixes incomparable values {first} and {v}"
                    )));
                }
            }
            if !out.iter().any(|w| w == &v) {
                out.push(v);
            }
        }
        Ok(Constraint::Set(out))
    }

    /// True when this is the unconstrained form.
    pub fn is_any(&self) -> bool {
        matches!(self, Constraint::Any)
    }

    /// Whether a single value satisfies the constraint. Incomparable
    /// values simply do not match (they cannot occur when the constraint
    /// was built against the column's type).
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Constraint::Any => true,
            Constraint::Range {
                lo,
                hi,
                hi_inclusive,
            } => {
                let ge = matches!(v.try_cmp(lo), Ok(Ordering::Greater | Ordering::Equal));
                let le = match v.try_cmp(hi) {
                    Ok(Ordering::Less) => true,
                    Ok(Ordering::Equal) => *hi_inclusive,
                    _ => false,
                };
                ge && le
            }
            Constraint::Set(vals) => vals
                .iter()
                .any(|w| matches!(v.try_cmp(w), Ok(Ordering::Equal))),
        }
    }

    /// Conjunction of two constraints on the same attribute. Returns
    /// `None` when the intersection is provably empty (used by PRODUCT to
    /// prune impossible cells without touching the data).
    pub fn intersect(&self, other: &Constraint) -> Option<Constraint> {
        match (self, other) {
            (Constraint::Any, c) | (c, Constraint::Any) => Some(c.clone()),
            (
                Constraint::Range {
                    lo: lo1,
                    hi: hi1,
                    hi_inclusive: inc1,
                },
                Constraint::Range {
                    lo: lo2,
                    hi: hi2,
                    hi_inclusive: inc2,
                },
            ) => {
                let lo = if matches!(lo1.try_cmp(lo2), Ok(Ordering::Less)) {
                    lo2.clone()
                } else {
                    lo1.clone()
                };
                let (hi, inc) = match hi1.try_cmp(hi2) {
                    Ok(Ordering::Less) => (hi1.clone(), *inc1),
                    Ok(Ordering::Greater) => (hi2.clone(), *inc2),
                    _ => (hi1.clone(), *inc1 && *inc2),
                };
                match lo.try_cmp(&hi) {
                    Ok(Ordering::Less) => Some(Constraint::Range {
                        lo,
                        hi,
                        hi_inclusive: inc,
                    }),
                    Ok(Ordering::Equal) if inc => Some(Constraint::Range {
                        lo,
                        hi,
                        hi_inclusive: true,
                    }),
                    _ => None,
                }
            }
            (Constraint::Set(a), Constraint::Set(b)) => {
                let kept: Vec<Value> = a
                    .iter()
                    .filter(|v| {
                        b.iter()
                            .any(|w| matches!(v.try_cmp(w), Ok(Ordering::Equal)))
                    })
                    .cloned()
                    .collect();
                if kept.is_empty() {
                    None
                } else {
                    Some(Constraint::Set(kept))
                }
            }
            (Constraint::Set(vals), range @ Constraint::Range { .. })
            | (range @ Constraint::Range { .. }, Constraint::Set(vals)) => {
                let kept: Vec<Value> = vals.iter().filter(|v| range.matches(v)).cloned().collect();
                if kept.is_empty() {
                    None
                } else {
                    Some(Constraint::Set(kept))
                }
            }
        }
    }

    /// Number of literals this constraint carries (0 for `Any`): a proxy
    /// for textual complexity used in diagnostics.
    pub fn literal_count(&self) -> usize {
        match self {
            Constraint::Any => 0,
            Constraint::Range { .. } => 2,
            Constraint::Set(v) => v.len(),
        }
    }
}

/// A named constraint: one conjunct of an SDL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Attribute (column) name.
    pub attr: String,
    /// The constraint applied to it.
    pub constraint: Constraint,
}

impl Predicate {
    /// Build a predicate.
    pub fn new(attr: impl Into<String>, constraint: Constraint) -> Predicate {
        Predicate {
            attr: attr.into(),
            constraint,
        }
    }

    /// Unconstrained predicate (`attr:`).
    pub fn any(attr: impl Into<String>) -> Predicate {
        Predicate::new(attr, Constraint::Any)
    }

    /// True when the predicate actually constrains its attribute.
    pub fn is_constraining(&self) -> bool {
        !self.constraint.is_any()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_validation() {
        assert!(Constraint::range(Value::Int(5), Value::Int(1)).is_err());
        assert!(Constraint::range(Value::Int(1), Value::str("a")).is_err());
        assert!(Constraint::range_with(Value::Int(3), Value::Int(3), false).is_err());
        assert!(Constraint::range_with(Value::Int(3), Value::Int(3), true).is_ok());
    }

    #[test]
    fn set_validation_dedups() {
        let c = Constraint::set(vec![Value::Int(1), Value::Int(2), Value::Int(1)]).unwrap();
        assert_eq!(c.literal_count(), 2);
        assert!(Constraint::set(vec![]).is_err());
        assert!(Constraint::set(vec![Value::Int(1), Value::str("x")]).is_err());
    }

    #[test]
    fn matches_semantics() {
        let r = Constraint::range_with(Value::Int(10), Value::Int(20), false).unwrap();
        assert!(r.matches(&Value::Int(10)));
        assert!(r.matches(&Value::Int(19)));
        assert!(!r.matches(&Value::Int(20)));
        let rc = Constraint::range(Value::Int(10), Value::Int(20)).unwrap();
        assert!(rc.matches(&Value::Int(20)));
        let s = Constraint::set(vec![Value::str("a"), Value::str("b")]).unwrap();
        assert!(s.matches(&Value::str("a")));
        assert!(!s.matches(&Value::str("c")));
        assert!(Constraint::Any.matches(&Value::Int(1)));
    }

    #[test]
    fn cross_type_numeric_matching() {
        let r = Constraint::range(Value::Float(0.5), Value::Float(2.5)).unwrap();
        assert!(r.matches(&Value::Int(1)));
        assert!(!r.matches(&Value::Int(3)));
    }

    #[test]
    fn intersect_ranges() {
        let a = Constraint::range(Value::Int(0), Value::Int(10)).unwrap();
        let b = Constraint::range(Value::Int(5), Value::Int(15)).unwrap();
        let c = a.intersect(&b).unwrap();
        assert_eq!(
            c,
            Constraint::Range {
                lo: Value::Int(5),
                hi: Value::Int(10),
                hi_inclusive: true
            }
        );
        let disjoint = Constraint::range(Value::Int(20), Value::Int(30)).unwrap();
        assert_eq!(a.intersect(&disjoint), None);
    }

    #[test]
    fn intersect_touching_ranges_depends_on_inclusivity() {
        let a = Constraint::range_with(Value::Int(0), Value::Int(10), false).unwrap();
        let b = Constraint::range(Value::Int(10), Value::Int(20)).unwrap();
        // [0,10[ ∩ [10,20] = ∅
        assert_eq!(a.intersect(&b), None);
        let a_closed = Constraint::range(Value::Int(0), Value::Int(10)).unwrap();
        // [0,10] ∩ [10,20] = [10,10]
        let c = a_closed.intersect(&b).unwrap();
        assert!(c.matches(&Value::Int(10)));
        assert!(!c.matches(&Value::Int(9)));
    }

    #[test]
    fn intersect_sets_and_mixed() {
        let s1 = Constraint::set(vec![Value::str("a"), Value::str("b")]).unwrap();
        let s2 = Constraint::set(vec![Value::str("b"), Value::str("c")]).unwrap();
        assert_eq!(
            s1.intersect(&s2),
            Some(Constraint::Set(vec![Value::str("b")]))
        );
        let s3 = Constraint::set(vec![Value::str("x")]).unwrap();
        assert_eq!(s1.intersect(&s3), None);

        let nums = Constraint::set(vec![Value::Int(1), Value::Int(5), Value::Int(9)]).unwrap();
        let r = Constraint::range(Value::Int(2), Value::Int(6)).unwrap();
        assert_eq!(
            nums.intersect(&r),
            Some(Constraint::Set(vec![Value::Int(5)]))
        );
        assert_eq!(
            r.intersect(&nums),
            Some(Constraint::Set(vec![Value::Int(5)]))
        );
    }

    #[test]
    fn intersect_with_any_is_identity() {
        let r = Constraint::range(Value::Int(0), Value::Int(1)).unwrap();
        assert_eq!(Constraint::Any.intersect(&r), Some(r.clone()));
        assert_eq!(r.intersect(&Constraint::Any), Some(r.clone()));
        assert_eq!(
            Constraint::Any.intersect(&Constraint::Any),
            Some(Constraint::Any)
        );
    }

    #[test]
    fn predicate_constructors() {
        let p = Predicate::any("tonnage");
        assert!(!p.is_constraining());
        let q = Predicate::new("type", Constraint::set(vec![Value::str("jacht")]).unwrap());
        assert!(q.is_constraining());
    }
}
