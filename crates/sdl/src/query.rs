//! SDL queries (paper Definition 2): conjunctions of predicates.

use crate::error::{SdlError, SdlResult};
use crate::predicate::{Constraint, Predicate};

/// An SDL query `Q = (C0, C1, …, CN)`.
///
/// Attribute order is preserved (it is how the user framed the context and
/// how the paper prints queries). Each attribute appears at most once;
/// refining an attribute's constraint goes through [`Query::refined`],
/// which intersects with any existing constraint — exactly what the CUT
/// primitive needs when it narrows a piece that is already constrained.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    predicates: Vec<Predicate>,
}

impl Query {
    /// Query over the given attributes with no constraints — the typical
    /// starting context ("the whole database, these columns").
    pub fn wildcard(attrs: &[&str]) -> Query {
        Query {
            predicates: attrs.iter().map(|a| Predicate::any(*a)).collect(),
        }
    }

    /// Build from explicit predicates. Rejects duplicate attributes.
    pub fn new(predicates: Vec<Predicate>) -> SdlResult<Query> {
        for (i, p) in predicates.iter().enumerate() {
            if predicates[..i].iter().any(|q| q.attr == p.attr) {
                return Err(SdlError::Malformed(format!(
                    "attribute {:?} appears twice in query",
                    p.attr
                )));
            }
        }
        Ok(Query { predicates })
    }

    /// Build a raw conjunction from predicates, **permitting repeated
    /// attributes** — `(a: [0,100], a: [50,200])` is a legal conjunction
    /// meaning `a ∈ [0,100] ∧ a ∈ [50,200]`. Every evaluation path
    /// (lowering, [`Query::matches_row`], canonicalization) already
    /// treats the predicate list as an AND, so repeats are sound; the
    /// static analyzer ([`crate::analyze()`]) merges them into one
    /// constraint per attribute (or proves the conjunction empty). Use
    /// [`Query::new`] when repeated attributes should be an error.
    pub fn conjunction(predicates: Vec<Predicate>) -> Query {
        Query { predicates }
    }

    /// Whether any attribute appears in more than one conjunct (only
    /// possible for queries built with [`Query::conjunction`], e.g. by
    /// the parser). Such queries are advised on in merged, normalized
    /// form — see [`crate::analyze()`].
    pub fn has_repeated_attributes(&self) -> bool {
        self.predicates
            .iter()
            .enumerate()
            .any(|(i, p)| self.predicates[..i].iter().any(|q| q.attr == p.attr))
    }

    /// The predicates in declaration order.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// All attributes mentioned by the query (constrained or not). This is
    /// the exploration scope: "we choose to restrict the exploration to
    /// the columns mentioned by the user" (§2).
    pub fn attributes(&self) -> Vec<&str> {
        self.predicates.iter().map(|p| p.attr.as_str()).collect()
    }

    /// Only the attributes that carry an actual constraint.
    pub fn constrained_attributes(&self) -> Vec<&str> {
        self.predicates
            .iter()
            .filter(|p| p.is_constraining())
            .map(|p| p.attr.as_str())
            .collect()
    }

    /// Number of constraining predicates — the per-query complexity that
    /// the simplicity metric maximises over (§3 SIMPLICITY).
    pub fn constraint_count(&self) -> usize {
        self.predicates
            .iter()
            .filter(|p| p.is_constraining())
            .count()
    }

    /// The constraint on an attribute, if the attribute is mentioned.
    pub fn constraint(&self, attr: &str) -> Option<&Constraint> {
        self.predicates
            .iter()
            .find(|p| p.attr == attr)
            .map(|p| &p.constraint)
    }

    /// Whether the query mentions an attribute at all.
    pub fn mentions(&self, attr: &str) -> bool {
        self.predicates.iter().any(|p| p.attr == attr)
    }

    /// Refine the query with an additional constraint on `attr` — the
    /// `(Q, attk: […])` notation of Definition 5. If the attribute already
    /// carries a constraint the two are intersected; `None` is returned
    /// when the intersection is provably empty. Attributes not yet
    /// mentioned are appended (keeps PRODUCT general).
    pub fn refined(&self, attr: &str, constraint: Constraint) -> Option<Query> {
        let mut predicates = self.predicates.clone();
        match predicates.iter_mut().find(|p| p.attr == attr) {
            Some(p) => {
                let merged = p.constraint.intersect(&constraint)?;
                p.constraint = merged;
            }
            None => predicates.push(Predicate::new(attr, constraint)),
        }
        Some(Query { predicates })
    }

    /// Conjunction of two whole queries — the cell `(Qi, Qj)` of the SDL
    /// product (Definition 8). `None` when provably empty.
    pub fn conjoin(&self, other: &Query) -> Option<Query> {
        let mut out = self.clone();
        for p in &other.predicates {
            out = out.refined(&p.attr, p.constraint.clone())?;
        }
        Some(out)
    }

    /// Canonical form of the query: conjuncts sorted by attribute name,
    /// set-constraint literals sorted by value order. Two queries that
    /// differ only in conjunct order, set-literal order or surface
    /// whitespace parse/canonicalize to the same `Query` — the identity
    /// the cross-session advice cache keys on (see [`Query::cache_key`]).
    ///
    /// Canonicalization never changes which rows a query selects: the
    /// conjunction is order-insensitive and set constraints are
    /// membership tests. It *does* fix a rendering (and hence an advisor
    /// attribute order), which is what makes cached advice reproducible.
    pub fn canonicalized(&self) -> Query {
        let mut predicates = self.predicates.clone();
        for p in &mut predicates {
            if let Constraint::Set(vals) = &mut p.constraint {
                // Values within one set are comparable by construction;
                // Equal fallback keeps the sort total regardless.
                vals.sort_by(|a, b| a.try_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            }
        }
        predicates.sort_by(|a, b| a.attr.cmp(&b.attr));
        Query { predicates }
    }

    /// Cache key: the rendered canonical form. Equal keys imply equal
    /// selection semantics (the canonical forms are structurally equal),
    /// and semantically distinct queries get distinct keys unless their
    /// constraints are extensionally equal per attribute.
    pub fn cache_key(&self) -> String {
        self.canonicalized().to_string()
    }

    /// Whether a full tuple (attribute, value) assignment satisfies the
    /// query. Used by tests and the row-level fallback paths; bulk
    /// evaluation goes through [`crate::eval`].
    pub fn matches_row(&self, lookup: impl Fn(&str) -> Option<charles_store::Value>) -> bool {
        self.predicates.iter().all(|p| {
            if !p.is_constraining() {
                return true;
            }
            match lookup(&p.attr) {
                Some(v) => p.constraint.matches(&v),
                None => false, // nulls never match a constraint
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_store::Value;

    fn set(vals: &[&str]) -> Constraint {
        Constraint::set(vals.iter().map(|v| Value::str(*v)).collect()).unwrap()
    }

    #[test]
    fn wildcard_mentions_but_does_not_constrain() {
        let q = Query::wildcard(&["a", "b"]);
        assert_eq!(q.attributes(), vec!["a", "b"]);
        assert!(q.constrained_attributes().is_empty());
        assert_eq!(q.constraint_count(), 0);
    }

    #[test]
    fn duplicate_attributes_rejected() {
        let err = Query::new(vec![Predicate::any("a"), Predicate::any("a")]).unwrap_err();
        assert!(matches!(err, SdlError::Malformed(_)));
    }

    #[test]
    fn conjunction_permits_and_detects_repeats() {
        let q = Query::conjunction(vec![Predicate::any("a"), Predicate::any("a")]);
        assert!(q.has_repeated_attributes());
        assert_eq!(q.predicates().len(), 2);
        // AND semantics: both conjuncts must hold.
        let q = Query::conjunction(vec![
            Predicate::new(
                "a",
                Constraint::range(Value::Int(0), Value::Int(10)).unwrap(),
            ),
            Predicate::new(
                "a",
                Constraint::range(Value::Int(5), Value::Int(20)).unwrap(),
            ),
        ]);
        assert!(q.matches_row(|_| Some(Value::Int(7))));
        assert!(!q.matches_row(|_| Some(Value::Int(3))));
        assert!(!q.matches_row(|_| Some(Value::Int(15))));
        // Duplicate-free queries report no repeats.
        assert!(!Query::wildcard(&["a", "b"]).has_repeated_attributes());
    }

    #[test]
    fn refined_replaces_any() {
        let q = Query::wildcard(&["type", "tonnage"]);
        let q2 = q.refined("type", set(&["jacht"])).unwrap();
        assert_eq!(q2.constrained_attributes(), vec!["type"]);
        assert_eq!(q2.constraint_count(), 1);
        // original untouched
        assert_eq!(q.constraint_count(), 0);
    }

    #[test]
    fn refined_intersects_existing() {
        let q = Query::wildcard(&["type"])
            .refined("type", set(&["jacht", "fluit"]))
            .unwrap();
        let q2 = q.refined("type", set(&["fluit", "pinas"])).unwrap();
        assert_eq!(
            q2.constraint("type"),
            Some(&Constraint::Set(vec![Value::str("fluit")]))
        );
        assert!(q.refined("type", set(&["galjoen"])).is_none());
    }

    #[test]
    fn refined_appends_new_attribute() {
        let q = Query::wildcard(&["a"]);
        let q2 = q
            .refined(
                "b",
                Constraint::range(Value::Int(0), Value::Int(1)).unwrap(),
            )
            .unwrap();
        assert_eq!(q2.attributes(), vec!["a", "b"]);
    }

    #[test]
    fn conjoin_merges_attribute_wise() {
        let q1 = Query::wildcard(&["a", "b"])
            .refined(
                "a",
                Constraint::range(Value::Int(0), Value::Int(10)).unwrap(),
            )
            .unwrap();
        let q2 = Query::wildcard(&["a", "b"])
            .refined(
                "a",
                Constraint::range(Value::Int(5), Value::Int(20)).unwrap(),
            )
            .unwrap()
            .refined("b", set(&["x"]))
            .unwrap();
        let c = q1.conjoin(&q2).unwrap();
        assert!(c.constraint("a").unwrap().matches(&Value::Int(7)));
        assert!(!c.constraint("a").unwrap().matches(&Value::Int(3)));
        assert_eq!(c.constrained_attributes(), vec!["a", "b"]);
    }

    #[test]
    fn conjoin_detects_empty() {
        let q1 = Query::wildcard(&["a"])
            .refined(
                "a",
                Constraint::range(Value::Int(0), Value::Int(1)).unwrap(),
            )
            .unwrap();
        let q2 = Query::wildcard(&["a"])
            .refined(
                "a",
                Constraint::range(Value::Int(5), Value::Int(6)).unwrap(),
            )
            .unwrap();
        assert!(q1.conjoin(&q2).is_none());
    }

    #[test]
    fn canonicalized_sorts_conjuncts_and_set_literals() {
        let q1 = Query::new(vec![
            Predicate::new("type", set(&["jacht", "fluit"])),
            Predicate::any("tonnage"),
        ])
        .unwrap();
        let q2 = Query::new(vec![
            Predicate::any("tonnage"),
            Predicate::new("type", set(&["fluit", "jacht"])),
        ])
        .unwrap();
        // Different surface forms, same canonical form and key.
        assert_ne!(q1, q2);
        assert_eq!(q1.canonicalized(), q2.canonicalized());
        assert_eq!(q1.cache_key(), q2.cache_key());
        assert_eq!(q1.cache_key(), "(tonnage: , type: {fluit, jacht})");
        // Canonicalization is idempotent.
        assert_eq!(q1.canonicalized().canonicalized(), q1.canonicalized());
    }

    #[test]
    fn cache_key_separates_semantically_different_queries() {
        let q1 = Query::wildcard(&["type"])
            .refined("type", set(&["jacht"]))
            .unwrap();
        let q2 = Query::wildcard(&["type"])
            .refined("type", set(&["fluit"]))
            .unwrap();
        assert_ne!(q1.cache_key(), q2.cache_key());
        // Mentioning an extra (unconstrained) attribute changes the
        // exploration scope, so it must change the key too.
        let q3 = Query::wildcard(&["type", "tonnage"])
            .refined("type", set(&["jacht"]))
            .unwrap();
        assert_ne!(q1.cache_key(), q3.cache_key());
    }

    #[test]
    fn cache_key_is_injective_for_metacharacter_strings() {
        // The key is the canonical *render*, and rendering quotes any
        // string literal that could not re-parse as a bare token — so
        // values containing SDL metacharacters cannot splice: the
        // two-value set {a, b} and the one-value set {"a, b"} must get
        // different keys (and likewise for quote/brace-bearing values).
        let two = Query::wildcard(&["k"])
            .refined("k", set(&["a", "b"]))
            .unwrap();
        let one = Query::wildcard(&["k"])
            .refined("k", set(&["a, b"]))
            .unwrap();
        assert_ne!(two.cache_key(), one.cache_key());
        let q1 = Query::wildcard(&["k"])
            .refined("k", set(&["x'}", "y"]))
            .unwrap();
        let q2 = Query::wildcard(&["k"])
            .refined("k", set(&["x'}, y"]))
            .unwrap();
        assert_ne!(q1.cache_key(), q2.cache_key());
    }

    #[test]
    fn matches_row_with_nulls() {
        let q = Query::wildcard(&["a", "b"])
            .refined(
                "a",
                Constraint::range(Value::Int(0), Value::Int(10)).unwrap(),
            )
            .unwrap();
        assert!(q.matches_row(|attr| match attr {
            "a" => Some(Value::Int(5)),
            _ => None,
        }));
        // Null on a constrained attribute → no match.
        assert!(!q.matches_row(|_| None));
        // Null on an unconstrained attribute is fine.
        let w = Query::wildcard(&["a", "b"]);
        assert!(w.matches_row(|_| None));
    }
}
