//! Segmentations (paper Definition 3): sets of queries partitioning a
//! dataset.

use crate::eval::selection;
use crate::query::Query;
use charles_store::{Backend, Bitmap, StoreResult};

/// A segmentation `S = {Q_j}`: the unit Charles proposes to the user.
///
/// The struct itself does not enforce the partition property — queries are
/// symbolic and the property depends on the data — but
/// [`Segmentation::check_partition`] verifies it against a backend, and
/// the property tests in `charles-core` assert it for everything the
/// primitives and HB-cuts produce.
#[derive(Debug, Clone, PartialEq)]
pub struct Segmentation {
    queries: Vec<Query>,
}

impl Segmentation {
    /// Build from constituent queries ("segments").
    pub fn new(queries: Vec<Query>) -> Segmentation {
        Segmentation { queries }
    }

    /// The segmentation containing just the context query — the starting
    /// point of HB-cuts.
    pub fn singleton(query: Query) -> Segmentation {
        Segmentation {
            queries: vec![query],
        }
    }

    /// The constituent queries.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Number of queries — the paper's `depth(S)` (bounded by "a pie chart
    /// with more than a dozen slices is hard to read").
    pub fn depth(&self) -> usize {
        self.queries.len()
    }

    /// True when there are no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Distinct constrained attributes across all queries, in first-
    /// occurrence order — the basis of the breadth metric (§3 BREADTH).
    pub fn attributes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for q in &self.queries {
            for a in q.constrained_attributes() {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// Iterate over the queries.
    pub fn iter(&self) -> std::slice::Iter<'_, Query> {
        self.queries.iter()
    }

    /// Consume into the query vector.
    pub fn into_queries(self) -> Vec<Query> {
        self.queries
    }

    /// Materialise the selection bitmap of every segment.
    pub fn selections(&self, backend: &dyn Backend) -> StoreResult<Vec<Bitmap>> {
        self.queries.iter().map(|q| selection(q, backend)).collect()
    }

    /// Verify Definition 3 against a dataset: segments must be pairwise
    /// disjoint and their union must equal `context`. Returns a
    /// [`PartitionReport`] instead of a bool so tests can print *why* a
    /// segmentation is broken.
    pub fn check_partition(
        &self,
        backend: &dyn Backend,
        context: &Bitmap,
    ) -> StoreResult<PartitionReport> {
        let sels = self.selections(backend)?;
        let mut union = Bitmap::new(context.len());
        let mut overlapping_pairs = Vec::new();
        for (i, a) in sels.iter().enumerate() {
            for (j, b) in sels.iter().enumerate().skip(i + 1) {
                if !a.is_disjoint(b) {
                    overlapping_pairs.push((i, j));
                }
            }
            union = union.or(a);
        }
        let missing = context.and_not(&union).count_ones();
        let extra = union.and_not(context).count_ones();
        Ok(PartitionReport {
            overlapping_pairs,
            missing,
            extra,
        })
    }
}

impl std::ops::Index<usize> for Segmentation {
    type Output = Query;
    fn index(&self, i: usize) -> &Query {
        &self.queries[i]
    }
}

/// Outcome of a partition check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionReport {
    /// Pairs of segment indices with a non-empty intersection.
    pub overlapping_pairs: Vec<(usize, usize)>,
    /// Context rows covered by no segment.
    pub missing: usize,
    /// Rows covered by some segment but outside the context.
    pub extra: usize,
}

impl PartitionReport {
    /// True when the segmentation is a partition of the context.
    pub fn is_partition(&self) -> bool {
        self.overlapping_pairs.is_empty() && self.missing == 0 && self.extra == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Constraint;
    use charles_store::{DataType, TableBuilder, Value};

    fn table() -> charles_store::Table {
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int);
        for i in 0..10 {
            b.push_row(vec![Value::Int(i)]).unwrap();
        }
        b.finish()
    }

    fn range_query(lo: i64, hi: i64, hi_inclusive: bool) -> Query {
        Query::wildcard(&["x"])
            .refined(
                "x",
                Constraint::range_with(Value::Int(lo), Value::Int(hi), hi_inclusive).unwrap(),
            )
            .unwrap()
    }

    #[test]
    fn partition_check_accepts_partition() {
        let t = table();
        let s = Segmentation::new(vec![range_query(0, 5, false), range_query(5, 9, true)]);
        let report = s.check_partition(&t, &t.all_rows()).unwrap();
        assert!(report.is_partition(), "{report:?}");
    }

    #[test]
    fn partition_check_flags_overlap() {
        let t = table();
        let s = Segmentation::new(vec![range_query(0, 5, true), range_query(5, 9, true)]);
        let report = s.check_partition(&t, &t.all_rows()).unwrap();
        assert_eq!(report.overlapping_pairs, vec![(0, 1)]);
        assert!(!report.is_partition());
    }

    #[test]
    fn partition_check_flags_hole() {
        let t = table();
        let s = Segmentation::new(vec![range_query(0, 3, true), range_query(7, 9, true)]);
        let report = s.check_partition(&t, &t.all_rows()).unwrap();
        assert_eq!(report.missing, 3); // rows 4, 5, 6
        assert!(!report.is_partition());
    }

    #[test]
    fn partition_check_flags_spill() {
        let t = table();
        // Context = first half, but a segment reaches outside it.
        let ctx = selection(&range_query(0, 4, true), &t).unwrap();
        let s = Segmentation::new(vec![range_query(0, 9, true)]);
        let report = s.check_partition(&t, &ctx).unwrap();
        assert_eq!(report.extra, 5);
    }

    #[test]
    fn attributes_are_distinct_constrained() {
        let q1 = range_query(0, 4, true);
        let q2 = range_query(5, 9, true);
        let s = Segmentation::new(vec![q1, q2, Query::wildcard(&["x", "y"])]);
        assert_eq!(s.attributes(), vec!["x"]);
        assert_eq!(s.depth(), 3);
    }

    #[test]
    fn singleton_and_index() {
        let q = Query::wildcard(&["x"]);
        let s = Segmentation::singleton(q.clone());
        assert_eq!(s.depth(), 1);
        assert_eq!(s[0], q);
    }
}
