//! SQL emission: SDL queries as `WHERE` clauses.
//!
//! The paper positions Charles as "a front-end for SQL systems. This
//! simplifies experimentation and portability of the code" (§1). This
//! module is that portability seam: any segment the advisor proposes can
//! be exported as a standard SQL statement and run against MonetDB,
//! DuckDB, SQLite, … once the user leaves the advisor.

use crate::predicate::Constraint;
use crate::query::Query;
use crate::segmentation::Segmentation;
use charles_store::Value;

/// Render a value as a SQL literal (strings quoted with `''` escaping,
/// dates quoted in ISO form).
pub fn sql_literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(_) => format!("DATE '{}'", v.render()),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        other => other.render(),
    }
}

/// Quote an identifier defensively (double quotes, doubled to escape).
pub fn sql_ident(name: &str) -> String {
    if name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
    {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

/// The `WHERE` condition of a query, or `"TRUE"` for an unconstrained one.
///
/// Expects an analyzed (or constructor-validated) query: no repeated
/// attributes, no empty ranges or mixed-type sets. Rendering a malformed
/// query would ship the inconsistency into an external SQL engine where
/// it fails far from its cause, so this is debug-asserted here.
pub fn where_clause(query: &Query) -> String {
    debug_assert!(
        crate::analyze::well_formed(query),
        "where_clause expects an analyzed query; run charles_sdl::analyze first: {query}"
    );
    let parts: Vec<String> = query
        .predicates()
        .iter()
        .filter(|p| p.is_constraining())
        .map(|p| {
            let col = sql_ident(&p.attr);
            match &p.constraint {
                Constraint::Any => unreachable!("filtered above"),
                Constraint::Range {
                    lo,
                    hi,
                    hi_inclusive: true,
                } => format!("{col} BETWEEN {} AND {}", sql_literal(lo), sql_literal(hi)),
                Constraint::Range {
                    lo,
                    hi,
                    hi_inclusive: false,
                } => format!(
                    "({col} >= {} AND {col} < {})",
                    sql_literal(lo),
                    sql_literal(hi)
                ),
                Constraint::Set(vals) => {
                    let list: Vec<String> = vals.iter().map(sql_literal).collect();
                    format!("{col} IN ({})", list.join(", "))
                }
            }
        })
        .collect();
    if parts.is_empty() {
        "TRUE".to_string()
    } else {
        parts.join(" AND ")
    }
}

/// A full `SELECT *` statement for one segment.
pub fn query_to_sql(query: &Query, table: &str) -> String {
    format!(
        "SELECT * FROM {} WHERE {};",
        sql_ident(table),
        where_clause(query)
    )
}

/// One `SELECT COUNT(*)` per segment — the statements Charles would issue
/// to a SQL back-end to compute covers.
pub fn segmentation_to_sql(seg: &Segmentation, table: &str) -> Vec<String> {
    seg.queries()
        .iter()
        .map(|q| {
            format!(
                "SELECT COUNT(*) FROM {} WHERE {};",
                sql_ident(table),
                where_clause(q)
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Constraint, Predicate};

    fn sample_query() -> Query {
        Query::new(vec![
            Predicate::new(
                "tonnage",
                Constraint::range(Value::Int(1000), Value::Int(1150)).unwrap(),
            ),
            Predicate::any("built"),
            Predicate::new(
                "type",
                Constraint::set(vec![Value::str("jacht"), Value::str("o'neill")]).unwrap(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn where_clause_renders_all_forms() {
        assert_eq!(
            where_clause(&sample_query()),
            "tonnage BETWEEN 1000 AND 1150 AND type IN ('jacht', 'o''neill')"
        );
    }

    #[test]
    fn half_open_float_range_uses_comparisons() {
        let q = Query::new(vec![Predicate::new(
            "score",
            Constraint::range_with(Value::Float(0.5), Value::Float(2.5), false).unwrap(),
        )])
        .unwrap();
        assert_eq!(where_clause(&q), "(score >= 0.5 AND score < 2.5)");
    }

    #[test]
    fn wildcard_query_is_true() {
        assert_eq!(where_clause(&Query::wildcard(&["a", "b"])), "TRUE");
    }

    #[test]
    fn full_statement() {
        let q = Query::wildcard(&["a"]);
        assert_eq!(query_to_sql(&q, "voc"), "SELECT * FROM voc WHERE TRUE;");
    }

    #[test]
    fn identifiers_quoted_when_needed() {
        assert_eq!(sql_ident("tonnage"), "tonnage");
        assert_eq!(sql_ident("Type"), "\"Type\"");
        assert_eq!(sql_ident("départ"), "\"départ\"");
        assert_eq!(sql_ident("0col"), "\"0col\"");
    }

    #[test]
    fn date_literals_are_typed() {
        let v = Value::parse_typed("1744-03-07", charles_store::DataType::Date).unwrap();
        assert_eq!(sql_literal(&v), "DATE '1744-03-07'");
    }

    #[test]
    fn segmentation_emits_count_statements() {
        let s =
            crate::segmentation::Segmentation::new(vec![Query::wildcard(&["a"]), sample_query()]);
        let sqls = segmentation_to_sql(&s, "voc");
        assert_eq!(sqls.len(), 2);
        assert!(sqls[0].starts_with("SELECT COUNT(*)"));
        assert!(sqls[1].contains("BETWEEN"));
    }
}
