//! Property-based oracle for the static analyzer: its symbolic verdicts
//! must agree with actual evaluation over random tables.
//!
//! * **No false unsatisfiability** — whenever `analyze` says
//!   `Unsatisfiable`, evaluating the query over any random table
//!   selects zero rows.
//! * **Normalization preserves semantics** — the normalized (merged,
//!   canonical) query's selection bitmap is bitwise-equal to the
//!   original conjunction's, row by row.
//! * **Normalization converges** — cache keys of all conjunct
//!   permutations of one conjunction collapse to a single key, and
//!   re-analyzing a normalized query is the identity.

use charles_sdl::{analyze, Constraint, Predicate, Query, Satisfiability};
use charles_store::{DataType, Schema, TableBuilder, Value};
use proptest::prelude::*;

const NAMES: [&str; 5] = ["fluit", "jacht", "pinas", "hoeker", "galjoot"];

fn arb_int_constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        Just(Constraint::Any),
        (-50i64..50, 0i64..60).prop_map(|(lo, w)| {
            Constraint::range(Value::Int(lo), Value::Int(lo + w)).expect("lo ≤ hi")
        }),
        proptest::collection::btree_set(-50i64..50, 1..6).prop_map(|vals| {
            Constraint::set(vals.into_iter().map(Value::Int).collect()).expect("non-empty")
        }),
    ]
}

fn arb_str_constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        Just(Constraint::Any),
        proptest::collection::btree_set(0usize..NAMES.len(), 1..4).prop_map(|idx| {
            Constraint::set(idx.into_iter().map(|i| Value::str(NAMES[i])).collect())
                .expect("non-empty")
        }),
    ]
}

/// A conjunction that may constrain the same attribute several times —
/// the form the analyzer exists to merge or refute.
fn arb_conjunction() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec(arb_int_constraint(), 1..4),
        proptest::collection::vec(arb_str_constraint(), 0..3),
    )
        .prop_map(|(xs, ks)| {
            let mut predicates: Vec<Predicate> =
                xs.into_iter().map(|c| Predicate::new("x", c)).collect();
            predicates.extend(ks.into_iter().map(|c| Predicate::new("k", c)));
            Query::conjunction(predicates)
        })
}

fn schema() -> Schema {
    Schema::from_pairs(&[("x", DataType::Int), ("k", DataType::Str)]).unwrap()
}

fn table(rows: &[(i64, usize)]) -> charles_store::Table {
    let mut b = TableBuilder::new("t");
    b.add_column("x", DataType::Int)
        .add_column("k", DataType::Str);
    for &(x, k) in rows {
        b.push_row(vec![Value::Int(x), Value::str(NAMES[k])])
            .unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn unsatisfiable_verdicts_never_lie(
        q in arb_conjunction(),
        rows in proptest::collection::vec((-60i64..60, 0usize..NAMES.len()), 1..80),
    ) {
        let report = analyze(&q, &schema());
        if report.satisfiability == Satisfiability::Unsatisfiable {
            let t = table(&rows);
            let count = charles_sdl::eval::count(&q, &t).unwrap();
            prop_assert_eq!(
                count, 0,
                "analyzer called {} unsatisfiable but it selected {} of {} rows",
                q, count, rows.len()
            );
        }
    }

    #[test]
    fn normalized_selection_is_bitwise_equal(
        q in arb_conjunction(),
        rows in proptest::collection::vec((-60i64..60, 0usize..NAMES.len()), 1..80),
    ) {
        let report = analyze(&q, &schema());
        let Some(normalized) = report.normalized() else { return Ok(()) };
        let t = table(&rows);
        let original = charles_sdl::eval::selection(&q, &t).unwrap();
        let merged = charles_sdl::eval::selection(normalized, &t).unwrap();
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(
                original.get(i), merged.get(i),
                "row {} of {:?} differs between {} and its normal form {}",
                i, row, q, normalized
            );
        }
    }

    #[test]
    fn permuted_conjuncts_collapse_to_one_cache_key(
        q in arb_conjunction(),
        rotate in 0usize..6,
    ) {
        let report = analyze(&q, &schema());
        let Some(normalized) = report.normalized() else { return Ok(()) };
        // Rotating the conjuncts is a permutation; analysis must land on
        // the same canonical key.
        let mut predicates = q.predicates().to_vec();
        let n = predicates.len();
        predicates.rotate_left(rotate % n.max(1));
        let permuted = Query::conjunction(predicates);
        let report2 = analyze(&permuted, &schema());
        let n2 = report2.normalized().expect("permutation preserves satisfiability");
        prop_assert_eq!(normalized.cache_key(), n2.cache_key(), "from {}", q);
    }

    #[test]
    fn analysis_of_normal_forms_is_identity(q in arb_conjunction()) {
        let report = analyze(&q, &schema());
        let Some(normalized) = report.normalized() else { return Ok(()) };
        // A normalized query is well-formed, duplicate-free, and a fixed
        // point: re-analyzing adds no findings and changes nothing.
        prop_assert!(charles_sdl::analyze::well_formed(normalized));
        prop_assert!(!normalized.has_repeated_attributes());
        let again = analyze(normalized, &schema());
        prop_assert!(again.diagnostics.is_empty(), "{:?}", again.diagnostics);
        prop_assert_eq!(again.normalized(), Some(normalized), "from {}", q);
    }
}
