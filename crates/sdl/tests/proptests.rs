//! Property-based tests of the SDL layer: constraint algebra, query
//! refinement, display/parse round-trips, and evaluation consistency.

use charles_sdl::{parse_query, Constraint, Predicate, Query};
use charles_store::{DataType, Schema, TableBuilder, Value};
use proptest::prelude::*;

fn arb_int_constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        Just(Constraint::Any),
        (-50i64..50, 0i64..60).prop_map(|(lo, w)| {
            Constraint::range(Value::Int(lo), Value::Int(lo + w)).expect("lo ≤ hi")
        }),
        proptest::collection::btree_set(-50i64..50, 1..6).prop_map(|vals| {
            Constraint::set(vals.into_iter().map(Value::Int).collect()).expect("non-empty")
        }),
    ]
}

fn arb_str_constraint() -> impl Strategy<Value = Constraint> {
    let names = ["fluit", "jacht", "pinas", "hoeker", "galjoot"];
    prop_oneof![
        Just(Constraint::Any),
        proptest::collection::btree_set(0usize..names.len(), 1..4).prop_map(move |idx| {
            Constraint::set(idx.into_iter().map(|i| Value::str(names[i])).collect())
                .expect("non-empty")
        }),
    ]
}

fn schema() -> Schema {
    Schema::from_pairs(&[("x", DataType::Int), ("k", DataType::Str)]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn intersection_is_sound_and_commutative(
        a in arb_int_constraint(),
        b in arb_int_constraint(),
        probe in -60i64..60,
    ) {
        let v = Value::Int(probe);
        let both = a.matches(&v) && b.matches(&v);
        match a.intersect(&b) {
            Some(c) => {
                // Soundness: the intersection matches exactly the common values.
                prop_assert_eq!(c.matches(&v), both, "{} ∩ {} at {}", a, b, probe);
            }
            None => {
                // Provably empty: no probe may match both.
                prop_assert!(!both, "{} ∩ {} claimed empty but {} matches", a, b, probe);
            }
        }
        // Commutativity up to matching semantics.
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        match (&ab, &ba) {
            (Some(c1), Some(c2)) => prop_assert_eq!(c1.matches(&v), c2.matches(&v)),
            (None, None) => {}
            other => prop_assert!(false, "asymmetric intersection: {other:?}"),
        }
    }

    #[test]
    fn intersection_with_any_is_identity(a in arb_int_constraint(), probe in -60i64..60) {
        let v = Value::Int(probe);
        let c = Constraint::Any.intersect(&a).expect("Any never empties");
        prop_assert_eq!(c.matches(&v), a.matches(&v));
    }

    #[test]
    fn refined_query_matches_conjunction(
        cx in arb_int_constraint(),
        ck in arb_str_constraint(),
        probe_x in -60i64..60,
        probe_k in 0usize..5,
    ) {
        let names = ["fluit", "jacht", "pinas", "hoeker", "galjoot"];
        let q = Query::wildcard(&["x", "k"]);
        let q = match q.refined("x", cx.clone()) {
            Some(q) => q,
            None => return Ok(()), // provably empty refinement: nothing to check
        };
        let q = match q.refined("k", ck.clone()) {
            Some(q) => q,
            None => return Ok(()),
        };
        let vx = Value::Int(probe_x);
        let vk = Value::str(names[probe_k]);
        let expected = cx.matches(&vx) && ck.matches(&vk);
        let got = q.matches_row(|attr| match attr {
            "x" => Some(vx.clone()),
            "k" => Some(vk.clone()),
            _ => None,
        });
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn display_parse_round_trip(
        cx in arb_int_constraint(),
        ck in arb_str_constraint(),
    ) {
        let q = Query::new(vec![
            Predicate::new("x", cx),
            Predicate::new("k", ck),
        ]).unwrap();
        let printed = q.to_string();
        let reparsed = parse_query(&printed, &schema()).unwrap();
        prop_assert_eq!(q, reparsed, "printed: {}", printed);
    }

    #[test]
    fn eval_matches_row_by_row(
        cx in arb_int_constraint(),
        ck in arb_str_constraint(),
        rows in proptest::collection::vec((-60i64..60, 0usize..5), 1..80),
    ) {
        let names = ["fluit", "jacht", "pinas", "hoeker", "galjoot"];
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int).add_column("k", DataType::Str);
        for &(x, k) in &rows {
            b.push_row(vec![Value::Int(x), Value::str(names[k])]).unwrap();
        }
        let t = b.finish();
        let Some(q) = Query::wildcard(&["x", "k"])
            .refined("x", cx)
            .and_then(|q| q.refined("k", ck)) else { return Ok(()) };
        let sel = charles_sdl::eval::selection(&q, &t).unwrap();
        for (i, &(x, k)) in rows.iter().enumerate() {
            let expected = q.matches_row(|attr| match attr {
                "x" => Some(Value::Int(x)),
                "k" => Some(Value::str(names[k])),
                _ => None,
            });
            prop_assert_eq!(sel.get(i), expected, "row {} = ({}, {})", i, x, names[k]);
        }
    }

    #[test]
    fn sql_where_clause_is_faithful_for_ranges(
        lo in -50i64..50,
        w in 0i64..50,
    ) {
        let q = Query::wildcard(&["x"])
            .refined("x", Constraint::range(Value::Int(lo), Value::Int(lo + w)).unwrap())
            .unwrap();
        let clause = charles_sdl::sql::where_clause(&q);
        prop_assert_eq!(clause, format!("x BETWEEN {} AND {}", lo, lo + w));
    }

    #[test]
    fn cache_key_ignores_conjunct_order_and_whitespace(
        cx in arb_int_constraint(),
        ck in arb_str_constraint(),
    ) {
        let q_xk = Query::new(vec![
            Predicate::new("x", cx.clone()),
            Predicate::new("k", ck.clone()),
        ]).unwrap();
        let q_kx = Query::new(vec![
            Predicate::new("k", ck),
            Predicate::new("x", cx),
        ]).unwrap();
        // Permuted conjuncts: same key.
        prop_assert_eq!(q_xk.cache_key(), q_kx.cache_key());
        // Whitespace variants of the rendered form parse back to the
        // same key (the parser is whitespace-insensitive, the key is a
        // canonical render).
        let spaced = q_xk
            .to_string()
            .replace(", ", " ,   ")
            .replace('(', "(  ");
        let reparsed = parse_query(&spaced, &schema()).unwrap();
        prop_assert_eq!(reparsed.cache_key(), q_xk.cache_key());
    }

    #[test]
    fn cache_key_collision_freedom(
        cx1 in arb_int_constraint(),
        ck1 in arb_str_constraint(),
        cx2 in arb_int_constraint(),
        ck2 in arb_str_constraint(),
        probe_x in -60i64..60,
        probe_k in 0usize..5,
    ) {
        // Two independently generated contexts: equal keys must mean
        // equal selection semantics on every probe row (no collisions
        // between semantically different contexts).
        let names = ["fluit", "jacht", "pinas", "hoeker", "galjoot"];
        let q1 = Query::new(vec![
            Predicate::new("x", cx1),
            Predicate::new("k", ck1),
        ]).unwrap();
        let q2 = Query::new(vec![
            Predicate::new("k", ck2),
            Predicate::new("x", cx2),
        ]).unwrap();
        if q1.cache_key() == q2.cache_key() {
            let vx = Value::Int(probe_x);
            let vk = Value::str(names[probe_k]);
            let lookup = |attr: &str| match attr {
                "x" => Some(vx.clone()),
                "k" => Some(vk.clone()),
                _ => None,
            };
            prop_assert_eq!(
                q1.matches_row(lookup),
                q2.matches_row(|attr| match attr {
                    "x" => Some(vx.clone()),
                    "k" => Some(vk.clone()),
                    _ => None,
                }),
                "colliding keys with different semantics: {} vs {}", q1, q2
            );
        }
        // And canonicalization itself never changes semantics.
        let canon = q1.canonicalized();
        let vx = Value::Int(probe_x);
        let vk = Value::str(names[probe_k]);
        prop_assert_eq!(
            q1.matches_row(|attr| match attr {
                "x" => Some(vx.clone()),
                "k" => Some(vk.clone()),
                _ => None,
            }),
            canon.matches_row(|attr| match attr {
                "x" => Some(vx.clone()),
                "k" => Some(vk.clone()),
                _ => None,
            })
        );
    }

    #[test]
    fn conjoin_count_never_exceeds_factors(
        rows in proptest::collection::vec((-30i64..30, 0usize..3), 1..60),
        lo1 in -30i64..30, w1 in 0i64..30,
        lo2 in -30i64..30, w2 in 0i64..30,
    ) {
        let names = ["a", "b", "c"];
        let mut b = TableBuilder::new("t");
        b.add_column("x", DataType::Int).add_column("k", DataType::Str);
        for &(x, k) in &rows {
            b.push_row(vec![Value::Int(x), Value::str(names[k])]).unwrap();
        }
        let t = b.finish();
        let q1 = Query::wildcard(&["x", "k"])
            .refined("x", Constraint::range(Value::Int(lo1), Value::Int(lo1 + w1)).unwrap())
            .unwrap();
        let q2 = Query::wildcard(&["x", "k"])
            .refined("x", Constraint::range(Value::Int(lo2), Value::Int(lo2 + w2)).unwrap())
            .unwrap();
        let c1 = charles_sdl::eval::count(&q1, &t).unwrap();
        let c2 = charles_sdl::eval::count(&q2, &t).unwrap();
        match q1.conjoin(&q2) {
            Some(q12) => {
                let c12 = charles_sdl::eval::count(&q12, &t).unwrap();
                prop_assert!(c12 <= c1.min(c2));
            }
            None => {
                // Provably empty conjunction: verify against the data.
                let both = rows.iter().filter(|&&(x, _)| {
                    x >= lo1 && x <= lo1 + w1 && x >= lo2 && x <= lo2 + w2
                }).count();
                prop_assert_eq!(both, 0);
            }
        }
    }
}
