//! A one-shot HTTP client, just big enough to drive the advisory
//! server from tests, examples and smoke checks without pulling in a
//! dependency. It sends `Connection: close` and reads to EOF — the
//! server honours the request by answering with `Connection: close`
//! and hanging up (persistent connections are available to clients
//! that don't ask to close; this helper simply doesn't need them).

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Issue one request and return `(status, body)`.
///
/// `method` is sent verbatim (the server decides what it supports); the
/// body, when non-empty, is framed with `Content-Length`.
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: charles\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 response"))?;

    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response without header terminator"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    Ok((status, payload.to_string()))
}
