//! HTTP clients for the advisory server: a persistent keep-alive
//! [`Client`] (the load harness's workhorse) and the one-shot
//! [`http_request`] helper tests and smoke checks have always used.
//!
//! Both are dependency-free and both are **bounded in time**: every
//! connect, read and write carries a timeout, so a stalled or silent
//! server produces a `TimedOut` error instead of hanging the caller
//! forever (the original one-shot helper had no deadline at all).
//! Sockets are opened with `TCP_NODELAY` — request and response are
//! each one small write, exactly the shape Nagle's algorithm delays.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Upper bound on a response head (status line + headers) the clients
/// will buffer.
const MAX_RESPONSE_HEAD: usize = 64 * 1024;

/// Timeouts and socket options for [`Client`] (and the one-shot
/// helpers, which use the same defaults).
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-read socket deadline while receiving a response.
    pub read_timeout: Duration,
    /// Per-write socket deadline while sending a request.
    pub write_timeout: Duration,
    /// Set `TCP_NODELAY` on the socket (on by default: advice exchanges
    /// are small request/response pairs, the worst case for Nagle).
    pub nodelay: bool,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            nodelay: true,
        }
    }
}

impl ClientConfig {
    /// One duration for connect, read and write alike.
    pub fn with_timeout(timeout: Duration) -> ClientConfig {
        ClientConfig {
            connect_timeout: timeout,
            read_timeout: timeout,
            write_timeout: timeout,
            nodelay: true,
        }
    }
}

/// One parsed response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// `Content-Length`-framed body.
    pub body: String,
    /// Whether the server will keep the connection open (`Connection:
    /// keep-alive`). When false the client drops its socket and the
    /// next request reconnects.
    pub keep_alive: bool,
}

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Resolve `addr` and connect within `config`'s deadline, applying the
/// configured socket options. Shared with the binary-protocol client
/// ([`crate::wire::WireConn`]) so both transports get identical
/// connect/read/write deadlines and `TCP_NODELAY` handling.
pub(crate) fn connect(addr: &SocketAddr, config: &ClientConfig) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(addr, config.connect_timeout)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    if config.nodelay {
        stream.set_nodelay(true)?;
    }
    Ok(stream)
}

/// Write one request. `connection` is the `Connection:` header value.
fn write_request<W: Write>(
    writer: &mut W,
    method: &str,
    path: &str,
    body: &str,
    connection: &str,
) -> std::io::Result<()> {
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: charles\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

/// Read one CRLF-terminated header line, bounded by `budget`.
fn read_head_line<R: BufRead>(reader: &mut R, budget: &mut usize) -> std::io::Result<String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                if line.is_empty() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed before a response arrived",
                    ));
                }
                break;
            }
            _ => {
                if *budget == 0 {
                    return Err(invalid("response head too large"));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| invalid("non-UTF-8 response head"))
}

/// Parse one `Content-Length`-framed response off a buffered reader.
fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<Response> {
    let mut budget = MAX_RESPONSE_HEAD;
    let status_line = read_head_line(reader, &mut budget)?;
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("malformed status line: {status_line:?}")))?;
    let mut content_length = 0usize;
    // The server states its intent on every response; absent a header,
    // assume close (the conservative reading for a one-shot exchange).
    let mut keep_alive = false;
    loop {
        let line = read_head_line(reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| invalid(format!("bad Content-Length: {value:?}")))?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| invalid("non-UTF-8 response body"))?;
    Ok(Response {
        status,
        body,
        keep_alive,
    })
}

/// A persistent keep-alive client: one TCP connection reused across
/// requests, reconnecting transparently when the server closes it
/// (request budget exhausted, idle reap, restart).
///
/// Not thread-safe by design — a connection is a serial request/response
/// pipe. Load generators hold one `Client` per worker.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<BufReader<TcpStream>>,
    requests: u64,
    connects: u64,
}

impl Client {
    /// Resolve `addr` once and prepare a client (no connection is opened
    /// until the first request).
    pub fn new(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| invalid("address resolved to nothing"))?;
        Ok(Client {
            addr,
            config,
            conn: None,
            requests: 0,
            connects: 0,
        })
    }

    /// Total requests successfully exchanged.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// TCP connections opened so far (1 for a fully reused connection;
    /// each server-side close or transport error adds one).
    pub fn connects(&self) -> u64 {
        self.connects
    }

    fn ensure_conn(&mut self) -> std::io::Result<(&mut BufReader<TcpStream>, bool)> {
        let fresh = self.conn.is_none();
        if fresh {
            let stream = connect(&self.addr, &self.config)?;
            self.connects += 1;
            self.conn = Some(BufReader::new(stream));
        }
        Ok((self.conn.as_mut().expect("just ensured"), fresh))
    }

    /// Issue one request over the persistent connection.
    ///
    /// A failure on a *reused* connection is retried once on a fresh
    /// one: the server may have legitimately closed the socket between
    /// requests (idle deadline) and the race is only observable as a
    /// reset on the next write or read. Failures on a fresh connection
    /// are returned as-is — including `TimedOut` when the server
    /// accepts but never answers within the read deadline.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<Response> {
        match self.request_once(method, path, body) {
            Ok(resp) => Ok(resp),
            Err((e, reused)) => {
                if !reused {
                    return Err(e);
                }
                self.request_once(method, path, body).map_err(|(e, _)| e)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<Response, (std::io::Error, bool)> {
        let (conn, fresh) = self.ensure_conn().map_err(|e| (e, false))?;
        let reused = !fresh;
        let exchange = (|| {
            write_request(conn.get_mut(), method, path, body, "keep-alive")?;
            read_response(conn)
        })();
        match exchange {
            Ok(resp) => {
                self.requests += 1;
                if !resp.keep_alive {
                    self.conn = None;
                }
                Ok(resp)
            }
            Err(e) => {
                // Whatever went wrong, the connection's framing is no
                // longer trustworthy.
                self.conn = None;
                Err((e, reused))
            }
        }
    }
}

/// Issue one request on a throwaway connection and return
/// `(status, body)`, with the default [`ClientConfig`] deadlines
/// applied (a stalled server times out instead of hanging forever).
///
/// `method` is sent verbatim (the server decides what it supports); the
/// body, when non-empty, is framed with `Content-Length`.
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    http_request_with(addr, method, path, body, &ClientConfig::default())
}

/// [`http_request`] with one explicit deadline covering connect, read
/// and write.
pub fn http_request_timeout(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    http_request_with(
        addr,
        method,
        path,
        body,
        &ClientConfig::with_timeout(timeout),
    )
}

/// The configurable one-shot request all the helpers above reduce to.
/// Sends `Connection: close` and reads one framed response.
pub fn http_request_with(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
    config: &ClientConfig,
) -> std::io::Result<(u16, String)> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| invalid("address resolved to nothing"))?;
    let stream = connect(&addr, config)?;
    let mut reader = BufReader::new(stream);
    write_request(reader.get_mut(), method, path, body, "close")?;
    let resp = read_response(&mut reader)?;
    Ok((resp.status, resp.body))
}
