//! A minimal, panic-free HTTP/1.1 request parser and response writer.
//!
//! Only what the advisory protocol needs: `GET`/`POST`/`DELETE`, a
//! `Content-Length`-framed body, and standard `Connection` semantics —
//! HTTP/1.1 connections persist by default (the server loops reading
//! requests until the client asks to close or an idle deadline fires),
//! HTTP/1.0 closes unless the client sends `Connection: keep-alive`.
//! Every response states its framing explicitly (`Connection:
//! keep-alive` or `Connection: close`), so conforming clients never
//! attempt to reuse a connection the server is about to reset. Every
//! malformed input path returns an [`HttpError`] with a 4xx/5xx status
//! — never a panic — which the proptest suite pins by feeding the
//! parser arbitrary bytes.

use std::io::{BufRead, Write};

/// Upper bound on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// The request methods the advisory protocol uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read a resource.
    Get,
    /// Create or act on a resource.
    Post,
    /// Remove a resource.
    Delete,
}

impl Method {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Delete => "DELETE",
        }
    }
}

/// A parsed request: method, path, UTF-8 body, connection intent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request path (must start with `/`; no query-string handling).
    pub path: String,
    /// Decoded body (empty when no `Content-Length`).
    pub body: String,
    /// Whether the connection may serve another request after this one:
    /// HTTP/1.1 unless the client sent `Connection: close`, HTTP/1.0
    /// only when it sent `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// Everything that can go wrong while reading a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line was not `METHOD SP PATH SP VERSION`.
    BadRequestLine(String),
    /// Method token is not GET/POST/DELETE.
    UnsupportedMethod(String),
    /// Version is not HTTP/1.0 or HTTP/1.1.
    UnsupportedVersion(String),
    /// A header line had no `:` separator.
    BadHeader(String),
    /// `Content-Length` was missing digits or duplicated inconsistently.
    BadContentLength(String),
    /// The request declared a `Transfer-Encoding` this server does not
    /// implement. Accepting and mis-framing such a body would desync a
    /// persistent connection (the chunk data would be parsed as the
    /// next request — a smuggling primitive behind proxies), so it is
    /// rejected outright per RFC 7230 §3.3.1.
    UnsupportedTransferEncoding(String),
    /// Request line + headers exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// Declared body length exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// The body was not valid UTF-8.
    BodyNotUtf8,
    /// The connection closed mid-request.
    UnexpectedEof,
    /// Transport error.
    Io(String),
}

impl HttpError {
    /// The response status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequestLine(_)
            | HttpError::BadHeader(_)
            | HttpError::BadContentLength(_)
            | HttpError::BodyNotUtf8
            | HttpError::UnexpectedEof
            | HttpError::Io(_) => 400,
            HttpError::UnsupportedMethod(_) | HttpError::UnsupportedTransferEncoding(_) => 501,
            HttpError::UnsupportedVersion(_) => 505,
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge(_) => 413,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequestLine(line) => write!(f, "malformed request line: {line:?}"),
            HttpError::UnsupportedMethod(m) => write!(f, "unsupported method: {m:?}"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version: {v:?}"),
            HttpError::BadHeader(h) => write!(f, "malformed header: {h:?}"),
            HttpError::BadContentLength(v) => write!(f, "bad Content-Length: {v:?}"),
            HttpError::UnsupportedTransferEncoding(v) => {
                write!(f, "unsupported Transfer-Encoding: {v:?}")
            }
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge(n) => {
                write!(f, "declared body of {n} bytes exceeds {MAX_BODY_BYTES}")
            }
            HttpError::BodyNotUtf8 => write!(f, "request body is not valid UTF-8"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-request"),
            HttpError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Read one `\n`-terminated line without ever buffering more than
/// `budget` bytes. Returns the line with the terminator trimmed.
fn read_line_limited<R: BufRead>(reader: &mut R, budget: &mut usize) -> Result<String, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(HttpError::UnexpectedEof);
                }
                break; // EOF terminates the final line
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(HttpError::HeadTooLarge);
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::BadRequestLine("non-UTF-8 bytes".into()))
}

/// Parse one request from a buffered reader.
pub fn parse_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line_limited(reader, &mut budget)?;
    let mut parts = request_line.split_ascii_whitespace();
    let (method_tok, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(HttpError::BadRequestLine(request_line.clone())),
    };
    let method = match method_tok {
        "GET" => Method::Get,
        "POST" => Method::Post,
        "DELETE" => Method::Delete,
        other => return Err(HttpError::UnsupportedMethod(other.to_string())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version.to_string()));
    }
    if !path.starts_with('/') {
        return Err(HttpError::BadRequestLine(request_line.clone()));
    }

    let mut content_length: Option<usize> = None;
    // Persistence default per version; a Connection header overrides
    // ("close" beats "keep-alive" no matter the token order).
    let mut keep_alive = version == "HTTP/1.1";
    let mut close_requested = false;
    loop {
        let line = read_line_limited(reader, &mut budget)?;
        if line.is_empty() {
            break; // end of headers
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadHeader(line));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let value = value.trim();
            let parsed: usize = value
                .parse()
                .map_err(|_| HttpError::BadContentLength(value.to_string()))?;
            if let Some(prev) = content_length {
                if prev != parsed {
                    return Err(HttpError::BadContentLength(format!("{prev} vs {parsed}")));
                }
            }
            content_length = Some(parsed);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // This server only frames bodies by Content-Length; any
            // transfer coding (chunked included) would desync the
            // connection if ignored. "identity" is a no-op and legal.
            let value = value.trim();
            if !value.eq_ignore_ascii_case("identity") {
                return Err(HttpError::UnsupportedTransferEncoding(value.to_string()));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            // Token list: "close" wins over anything else; "keep-alive"
            // opts an HTTP/1.0 client in.
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    close_requested = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    if close_requested {
        keep_alive = false;
    }

    let body = match content_length {
        None | Some(0) => String::new(),
        Some(n) if n > MAX_BODY_BYTES => return Err(HttpError::BodyTooLarge(n)),
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    HttpError::UnexpectedEof
                } else {
                    HttpError::Io(e.to_string())
                }
            })?;
            String::from_utf8(buf).map_err(|_| HttpError::BodyNotUtf8)?
        }
    };

    Ok(Request {
        method,
        path: path.to_string(),
        body,
        keep_alive,
    })
}

/// Reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Write a complete JSON response. The `Connection` header always
/// states what the server will actually do next — `keep-alive` when it
/// will read another request from this connection, `close` when it is
/// about to hang up — so conforming clients never try to reuse a
/// connection that is being torn down.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
        status,
        status_reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
        body
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        parse_request(&mut Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /session HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n(kind: , s)")
                .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.path, "/session");
        assert_eq!(req.body, "(kind: , s)");
        assert!(req.keep_alive, "HTTP/1.1 persists by default");
    }

    #[test]
    fn parses_get_without_body_and_bare_lf() {
        let req = parse(b"GET /session/s1 HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/session/s1");
        assert_eq!(req.body, "");
    }

    #[test]
    fn connection_semantics_follow_version_and_header() {
        // HTTP/1.1 defaults to keep-alive; Connection: close opts out.
        assert!(parse(b"GET / HTTP/1.1\r\n\r\n").unwrap().keep_alive);
        assert!(
            !parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        assert!(
            !parse(b"GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n")
                .unwrap()
                .keep_alive,
            "token match is case-insensitive"
        );
        // HTTP/1.0 defaults to close; Connection: keep-alive opts in.
        assert!(!parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        assert!(
            parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        // "close" wins regardless of token order.
        assert!(
            !parse(b"GET / HTTP/1.1\r\nConnection: close, keep-alive\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        assert!(
            !parse(b"GET / HTTP/1.0\r\nConnection: keep-alive, close\r\n\r\n")
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert!(matches!(
            parse(b"\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse(b"GET\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1 extra\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse(b"GET nopath HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
    }

    #[test]
    fn rejects_unsupported_method_and_version() {
        assert!(matches!(
            parse(b"BREW /pot HTTP/1.1\r\n\r\n"),
            Err(HttpError::UnsupportedMethod(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2\r\n\r\n"),
            Err(HttpError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::BadContentLength(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"),
            Err(HttpError::BodyTooLarge(_))
        ));
        // Body shorter than declared.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::UnexpectedEof)
        ));
        // Conflicting duplicates.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nab"),
            Err(HttpError::BadContentLength(_))
        ));
    }

    #[test]
    fn accepts_agreeing_duplicate_content_lengths() {
        // RFC 7230 §3.3.2: repeated Content-Length headers whose values
        // all agree are treated as one; only *inconsistent* duplicates
        // are invalid (rejected above).
        let req =
            parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nab").unwrap();
        assert_eq!(req.body, "ab");
        // Agreement is on the parsed value, not the spelling.
        let req =
            parse(b"POST / HTTP/1.1\r\nContent-Length: 02\r\nContent-Length: 2\r\n\r\nab").unwrap();
        assert_eq!(req.body, "ab");
        // Three-way agreement still frames one body.
        let req = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nab",
        )
        .unwrap();
        assert_eq!(req.body, "ab");
    }

    #[test]
    fn rejects_transfer_encodings() {
        // Chunked (or any non-identity coding) must be rejected, not
        // silently mis-framed — on a persistent connection the chunk
        // data would otherwise be read as the next request.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n"),
            Err(HttpError::UnsupportedTransferEncoding(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip, chunked\r\n\r\n"),
            Err(HttpError::UnsupportedTransferEncoding(_))
        ));
        assert_eq!(
            HttpError::UnsupportedTransferEncoding("chunked".into()).status(),
            501
        );
        // "identity" is a no-op and stays accepted.
        let req =
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: identity\r\nContent-Length: 2\r\n\r\nok")
                .unwrap();
        assert_eq!(req.body, "ok");
    }

    #[test]
    fn rejects_oversized_head() {
        let mut req = b"GET / HTTP/1.1\r\n".to_vec();
        req.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert!(matches!(parse(&req), Err(HttpError::HeadTooLarge)));
    }

    #[test]
    fn rejects_non_utf8_body() {
        let mut req = b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\n".to_vec();
        req.extend([0xff, 0xfe]);
        assert!(matches!(parse(&req), Err(HttpError::BodyNotUtf8)));
    }

    #[test]
    fn empty_input_is_eof() {
        assert!(matches!(parse(b""), Err(HttpError::UnexpectedEof)));
    }

    #[test]
    fn status_lines_render() {
        let mut out = Vec::new();
        write_response(&mut out, 201, "{\"x\":1}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 201 Created\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("{\"x\":1}"));
    }

    #[test]
    fn responses_always_state_their_connection_framing() {
        // The header must match what the server will do: close on the
        // last response of a connection, keep-alive otherwise. (The bug
        // this pins: a server that closes after every response but
        // never says so invites conforming clients to reuse the
        // connection and hit resets.)
        let mut out = Vec::new();
        write_response(&mut out, 200, "{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nConnection: close\r\n"), "{text}");

        let mut out = Vec::new();
        write_response(&mut out, 200, "{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nConnection: keep-alive\r\n"), "{text}");
        assert!(!text.contains("Connection: close"), "{text}");
    }

    #[test]
    fn error_statuses_are_4xx_5xx() {
        for e in [
            HttpError::BadRequestLine("x".into()),
            HttpError::UnsupportedMethod("x".into()),
            HttpError::UnsupportedVersion("x".into()),
            HttpError::BadHeader("x".into()),
            HttpError::BadContentLength("x".into()),
            HttpError::UnsupportedTransferEncoding("chunked".into()),
            HttpError::HeadTooLarge,
            HttpError::BodyTooLarge(9),
            HttpError::BodyNotUtf8,
            HttpError::UnexpectedEof,
            HttpError::Io("x".into()),
        ] {
            assert!((400..=599).contains(&e.status()), "{e}");
        }
    }
}
