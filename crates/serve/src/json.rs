//! Hand-rolled JSON encoding of advisor payloads.
//!
//! crates.io (and hence serde) is unreachable in this build environment,
//! so the wire format is produced by a small writer with two hard
//! guarantees the serving layer leans on:
//!
//! * **Determinism** — object keys are emitted in a fixed order with no
//!   whitespace, floats use Rust's shortest round-trip `Display`, and
//!   only the deterministic fields of an [`Advice`] are encoded
//!   (`backend_ops` / `cache` are per-run diagnostics whose counts vary
//!   under threads, so they are deliberately left out). Encoding the
//!   same advice twice — or advice produced by a cache hit versus a
//!   fresh advisor run on the same canonical context — yields identical
//!   bytes.
//! * **Validity** — strings are escaped per RFC 8259 (`"`/`\\`/control
//!   characters), non-finite floats (which the advisor never produces,
//!   but the encoder cannot prove that) become `null` instead of
//!   invalid tokens.

use charles_core::hbcuts::{ComposeStep, SkippedPair, StopReason, Trace};
use charles_core::{Advice, Ranked, Score};

/// Escape and double-quote a string.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float as a JSON number (shortest round-trip form); `null`
/// for non-finite values, which JSON cannot represent.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A JSON array of strings.
pub fn json_string_array<I, S>(items: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(item.as_ref()));
    }
    out.push(']');
    out
}

/// `{"error":{"code":"...","message":"..."}}` — the body of every
/// non-2xx response. `code` is a stable snake_case machine-readable
/// identifier (clients branch on it; the set is documented in the
/// README's serving section); `message` is the human-readable detail.
pub fn encode_error(code: &str, message: &str) -> String {
    debug_assert!(
        code.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
        "error codes are stable snake_case identifiers, got {code:?}"
    );
    format!(
        "{{\"error\":{{\"code\":{},\"message\":{}}}}}",
        json_string(code),
        json_string(message)
    )
}

/// [`encode_error`] with the static-analysis findings attached:
/// `{"error":{"code":…,"message":…,"diagnostics":[{"code":…,"attr":…,"detail":…},…]}}`.
/// Each diagnostic's `code` is its stable snake_case
/// [`charles_sdl::DiagnosticCode`] name, so clients can branch per
/// finding, not just per response.
pub fn encode_error_with_diagnostics(
    code: &str,
    message: &str,
    diagnostics: &[charles_sdl::Diagnostic],
) -> String {
    debug_assert!(
        code.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
        "error codes are stable snake_case identifiers, got {code:?}"
    );
    let mut diags = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            diags.push(',');
        }
        diags.push_str(&format!(
            "{{\"code\":{},\"attr\":{},\"detail\":{}}}",
            json_string(d.code.name()),
            json_string(&d.attr),
            json_string(&d.detail)
        ));
    }
    diags.push(']');
    format!(
        "{{\"error\":{{\"code\":{},\"message\":{},\"diagnostics\":{}}}}}",
        json_string(code),
        json_string(message),
        diags
    )
}

/// The wire name of a stop reason (snake_case, stable).
pub fn stop_reason_name(stop: StopReason) -> &'static str {
    match stop {
        StopReason::IndependenceThreshold => "independence_threshold",
        StopReason::DepthLimit => "depth_limit",
        StopReason::ExhaustedCandidates => "exhausted_candidates",
        StopReason::ComposeFailed => "compose_failed",
    }
}

/// Encode a score card.
pub fn encode_score(score: &Score) -> String {
    format!(
        "{{\"entropy\":{},\"simplicity\":{},\"breadth\":{},\"depth\":{}}}",
        json_f64(score.entropy),
        score.simplicity,
        score.breadth,
        score.depth
    )
}

/// Encode one ranked answer: the segmentation as its rendered queries
/// (exactly what `POST /session/{id}/drill` lets the client select by
/// index) plus the score card.
pub fn encode_ranked(ranked: &Ranked) -> String {
    format!(
        "{{\"segmentation\":{},\"score\":{}}}",
        json_string_array(ranked.segmentation.queries().iter().map(|q| q.to_string())),
        encode_score(&ranked.score)
    )
}

/// Encode one composition step of the trace.
pub fn encode_step(step: &ComposeStep) -> String {
    format!(
        "{{\"left\":{},\"right\":{},\"indep\":{},\"depth\":{},\"accepted\":{}}}",
        json_string_array(&step.left_attrs),
        json_string_array(&step.right_attrs),
        json_f64(step.indep),
        step.depth,
        step.accepted
    )
}

/// Encode one skipped (uncomposable) pair of the trace.
pub fn encode_skipped_pair(pair: &SkippedPair) -> String {
    format!(
        "{{\"left\":{},\"right\":{},\"indep\":{}}}",
        json_string_array(&pair.left_attrs),
        json_string_array(&pair.right_attrs),
        json_f64(pair.indep)
    )
}

/// Encode the HB-cuts execution trace.
pub fn encode_trace(trace: &Trace) -> String {
    let mut steps = String::from("[");
    for (i, s) in trace.steps.iter().enumerate() {
        if i > 0 {
            steps.push(',');
        }
        steps.push_str(&encode_step(s));
    }
    steps.push(']');
    let mut skipped_pairs = String::from("[");
    for (i, p) in trace.skipped_pairs.iter().enumerate() {
        if i > 0 {
            skipped_pairs.push(',');
        }
        skipped_pairs.push_str(&encode_skipped_pair(p));
    }
    skipped_pairs.push(']');
    let stop = match trace.stop {
        Some(s) => json_string(stop_reason_name(s)),
        None => "null".to_string(),
    };
    format!(
        "{{\"seeds\":{},\"skipped\":{},\"steps\":{},\"skipped_pairs\":{},\"stop\":{}}}",
        json_string_array(&trace.seeds),
        json_string_array(&trace.skipped),
        steps,
        skipped_pairs,
        stop
    )
}

/// Encode a full advice payload (deterministic fields only — see the
/// module docs for why the op/cache diagnostics are excluded).
pub fn encode_advice(advice: &Advice) -> String {
    let mut ranked = String::from("[");
    for (i, r) in advice.ranked.iter().enumerate() {
        if i > 0 {
            ranked.push(',');
        }
        ranked.push_str(&encode_ranked(r));
    }
    ranked.push(']');
    format!(
        "{{\"context\":{},\"context_size\":{},\"ranked\":{},\"trace\":{}}}",
        json_string(&advice.context.to_string()),
        advice.context_size,
        ranked,
        encode_trace(&advice.trace)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_core::Advisor;
    use charles_store::{DataType, TableBuilder, Value};

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        // Non-ASCII passes through as UTF-8.
        assert_eq!(json_string("ünïcode"), "\"ünïcode\"");
    }

    #[test]
    fn error_bodies_are_structured() {
        assert_eq!(
            encode_error("no_such_session", "no session \"s9\""),
            "{\"error\":{\"code\":\"no_such_session\",\"message\":\"no session \\\"s9\\\"\"}}"
        );
    }

    #[test]
    fn float_rendering() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2");
        assert_eq!(json_f64(-0.0), "-0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        // Shortest round-trip: re-parsing reproduces the bits.
        let v = std::f64::consts::LN_2;
        let s = json_f64(v);
        assert_eq!(s.parse::<f64>().unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn advice_encoding_is_deterministic_and_json_shaped() {
        let mut b = TableBuilder::new("t");
        b.add_column("kind", DataType::Str)
            .add_column("size", DataType::Int);
        for i in 0..32i64 {
            let kind = if i % 2 == 0 { "even" } else { "odd" };
            b.push_row(vec![Value::str(kind), Value::Int(i)]).unwrap();
        }
        let t = b.finish();
        let advice = Advisor::new(&t).advise_str("(kind: , size: )").unwrap();
        let one = encode_advice(&advice);
        let two = encode_advice(&advice);
        assert_eq!(one, two);
        assert!(one.starts_with("{\"context\":\"(kind: , size: )\""));
        assert!(one.contains("\"context_size\":32"));
        assert!(one.contains("\"ranked\":["));
        assert!(one.contains("\"trace\":{\"seeds\":"));
        // No stray raw control characters or trailing whitespace.
        assert!(!one.chars().any(|c| (c as u32) < 0x20));
    }

    #[test]
    fn error_with_diagnostics_shape_is_pinned() {
        use charles_sdl::{Diagnostic, DiagnosticCode};
        let body = encode_error_with_diagnostics(
            "invalid_context",
            "context failed static analysis",
            &[
                Diagnostic::new(DiagnosticCode::UnknownAttribute, "nope", "no such column"),
                Diagnostic::new(DiagnosticCode::TypeMismatch, "size", "got \"str\""),
            ],
        );
        assert_eq!(
            body,
            "{\"error\":{\"code\":\"invalid_context\",\
             \"message\":\"context failed static analysis\",\
             \"diagnostics\":[\
             {\"code\":\"unknown_attribute\",\"attr\":\"nope\",\"detail\":\"no such column\"},\
             {\"code\":\"type_mismatch\",\"attr\":\"size\",\"detail\":\"got \\\"str\\\"\"}]}}"
        );
        // Empty diagnostics still produce a valid (empty) array.
        let body = encode_error_with_diagnostics("invalid_context", "m", &[]);
        assert!(body.ends_with("\"diagnostics\":[]}}"));
    }

    #[test]
    fn stop_reasons_have_stable_names() {
        assert_eq!(
            stop_reason_name(StopReason::IndependenceThreshold),
            "independence_threshold"
        );
        assert_eq!(stop_reason_name(StopReason::DepthLimit), "depth_limit");
        assert_eq!(
            stop_reason_name(StopReason::ExhaustedCandidates),
            "exhausted_candidates"
        );
        assert_eq!(
            stop_reason_name(StopReason::ComposeFailed),
            "compose_failed"
        );
    }
}
