//! `charles-serve` — the concurrent advisory server.
//!
//! The paper frames Charles as an interactive advisor guiding many
//! analysts through drill-down sessions; this crate is the serving
//! layer that makes that multi-tenant: sessions become server-side
//! state addressed by id, and contexts become **cache keys shared
//! across users** — N concurrent sessions drilling into the same region
//! of the data pay for one HB-cuts run
//! ([`charles_core::AdviceCache`]).
//!
//! Everything is dependency-free by necessity (crates.io is unreachable
//! in this build environment): a std `TcpListener` accept loop feeding
//! a [`charles_parallel::WorkerPool`], a hand-rolled HTTP/1.1 request
//! parser ([`http`]), and a deterministic JSON encoder ([`json`]) for
//! `Advice`/`Ranked`/`Trace` payloads. A versioned, length-prefixed
//! binary protocol ([`wire`]) can be served on a second listener for
//! pipelined high-throughput clients; both listeners dispatch through
//! the same API layer, so they differ only in framing.
//!
//! Determinism contract: served advice — cached or not, under any
//! interleaving — is byte-identical to
//! `Advisor::advise(context.canonicalized())` on the same backend and
//! config, encoded with [`json::encode_advice`]. The multi-session
//! concurrency harness (`tests/serve_concurrency.rs` at the workspace
//! root) pins this against a single-threaded oracle.
//!
//! ```no_run
//! use charles_serve::{Server, ServeConfig, http_request};
//! use std::sync::Arc;
//!
//! # fn table() -> charles_store::Table { unimplemented!() }
//! let backend: Arc<dyn charles_store::Backend> = Arc::new(table());
//! let server = Server::bind("127.0.0.1:0", backend, ServeConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.spawn().unwrap();
//! let (status, body) = http_request(addr, "POST", "/session", "(type: , tonnage: )").unwrap();
//! assert_eq!(status, 201);
//! handle.shutdown();
//! ```

pub mod client;
pub mod http;
pub mod json;
pub mod server;
pub mod wire;

pub use client::{
    http_request, http_request_timeout, http_request_with, Client, ClientConfig, Response,
};
pub use http::{Method, Request};
pub use server::{MetricsSnapshot, ServeConfig, Server, ServerHandle, ServerMetrics};
pub use wire::{
    wire_request, WireClient, WireConn, WireError, WireRequest, WireResponse, WireSummary,
};
