//! The advisory server: session lifecycle over HTTP, advice shared
//! across sessions through one [`AdviceCache`].
//!
//! | Route | Body | Effect |
//! |---|---|---|
//! | `POST /session` | SDL context text | start a session → 201 |
//! | `GET /session/{id}` | — | breadcrumbs + current advice |
//! | `POST /session/{id}/drill` | `rank seg` | drill into a segment |
//! | `POST /session/{id}/back` | — | pop one breadcrumb |
//! | `DELETE /session/{id}` | — | drop the session → 204 |
//! | `GET /cache/stats` | — | shared-cache counters |
//! | `GET /metrics` | — | serving-layer counters |
//! | `GET /healthz` | — | liveness probe |
//!
//! Requests are handled by a fixed [`WorkerPool`]; per-session state is
//! an [`OwnedSession`] behind its own mutex, so requests to different
//! sessions never serialize on each other and requests to the same
//! session are ordered. All advice flows through the shared cache:
//! N sessions asking for the same canonical context cost one HB-cuts
//! run, and the payload served from the cache is byte-identical to a
//! fresh advisor run on the same canonical context.

use crate::http::{parse_request, write_response, HttpError, Method, Request};
use crate::json::{
    encode_advice, encode_error, encode_error_with_diagnostics, json_string, json_string_array,
};
use charles_core::{Advice, AdviceCache, Config, CoreError, OwnedSession};
use charles_parallel::WorkerPool;
use charles_sdl::{Diagnostic, DiagnosticCode, SdlError};
use charles_store::{Backend, DiskTable};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Shard count of the cross-session advice cache.
    pub cache_shards: usize,
    /// Upper bound on cached advice entries (per cache — the default
    /// backend's and each loaded dataset's). Once full, the
    /// least-recently-used settled entry is evicted, so a long-running
    /// server does not grow without bound with the number of distinct
    /// contexts ever advised. `0` disables the bound entirely.
    pub cache_capacity: usize,
    /// Whole-request read deadline, re-armed per request on persistent
    /// connections: a connection that has not delivered its complete
    /// next request within this window — whether idle between requests
    /// or trickling bytes — is dropped (anti-slowloris: a fixed worker
    /// pool must not be pinnable by slow or idle clients).
    pub read_timeout: Duration,
    /// Upper bound on requests served over one keep-alive connection;
    /// the last allowed response is sent with `Connection: close`. Keeps
    /// a single client from pinning a pool worker indefinitely — note
    /// the bound this buys: a client pacing tiny requests just inside
    /// the read deadline can hold one worker for up to
    /// `max_requests_per_connection × read_timeout` (~21 min at the
    /// defaults) before it must reconnect. Facing untrusted clients,
    /// lower one or both (or raise `workers`).
    pub max_requests_per_connection: usize,
    /// Upper bound on live sessions; `POST /session` answers 503 once
    /// reached (sessions are server-side state, so an uncapped registry
    /// would let clients grow memory without bound).
    pub max_sessions: usize,
    /// When set, `POST /session` bodies may begin with an `@<path>`
    /// line naming a `.charles` file **under this directory**; the
    /// session then explores that dataset (lazily loaded on first use,
    /// cached per canonical path, each with its own advice cache)
    /// instead of the server's default backend. `None` (the default)
    /// disables dataset-by-path bodies entirely — paths outside the
    /// root are rejected with `dataset_forbidden` either way.
    pub dataset_root: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 8,
            cache_shards: 16,
            cache_capacity: 1024,
            read_timeout: Duration::from_secs(10),
            max_requests_per_connection: 128,
            max_sessions: 4096,
            dataset_root: None,
        }
    }
}

/// One loaded dataset: its backend plus its own advice cache (cache
/// keys are canonical contexts, so distinct datasets must never share
/// one cache — identical contexts over different data would collide).
#[derive(Clone)]
struct Dataset {
    backend: Arc<dyn Backend>,
    cache: Arc<AdviceCache>,
}

/// Monotonic serving-layer counters, incremented at the connection
/// layer (so the pure `route` dispatcher stays side-effect free).
/// Exposed in-process via [`Server::metrics`]/[`ServerHandle::metrics`]
/// and over the wire at `GET /metrics` — the load harness reads both
/// ends to cross-check that every request it sent was accounted for.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    connections: AtomicU64,
    requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    analysis_rejects: AtomicU64,
    analysis_prunes: AtomicU64,
}

impl ServerMetrics {
    pub(crate) fn record_response(&self, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    fn record_analysis_reject(&self) {
        self.analysis_rejects.fetch_add(1, Ordering::Relaxed);
    }

    fn record_analysis_prune(&self) {
        self.analysis_prunes.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the counters (each is read
    /// atomically; the set is not a snapshot under concurrent traffic).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses_2xx: self.responses_2xx.load(Ordering::Relaxed),
            responses_4xx: self.responses_4xx.load(Ordering::Relaxed),
            responses_5xx: self.responses_5xx.load(Ordering::Relaxed),
            analysis_rejects: self.analysis_rejects.load(Ordering::Relaxed),
            analysis_prunes: self.analysis_prunes.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`ServerMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered (every response, success or error).
    pub requests: u64,
    /// Responses with a 2xx status.
    pub responses_2xx: u64,
    /// Responses with a 4xx status.
    pub responses_4xx: u64,
    /// Responses with a 5xx status (or any status outside 2xx/4xx).
    pub responses_5xx: u64,
    /// Contexts rejected at admission by static analysis (ill-typed for
    /// the dataset's schema: unknown attribute, type mismatch, …).
    pub analysis_rejects: u64,
    /// Contexts pruned at admission as provably empty — answered with
    /// zero backend operations.
    pub analysis_prunes: u64,
}

/// One successful API outcome, listener-agnostic: the HTTP listener
/// renders these to JSON ([`render_ok`]), the binary listener to typed
/// frames (`wire::encode_api_reply`). Keeping the session logic behind
/// this seam is what makes the two listeners answer with the *same
/// decisions* by construction — only the encoding differs.
pub(crate) enum ApiOk {
    /// `POST /session` → 201.
    Created { id: String, advice: Arc<Advice> },
    /// Drill / back → 200.
    Advice { id: String, advice: Arc<Advice> },
    /// `GET /session/{id}` → 200.
    Info {
        id: String,
        depth: usize,
        breadcrumbs: Vec<String>,
        advice: Arc<Advice>,
    },
    /// `DELETE /session/{id}` → 204, empty body.
    Deleted,
    /// `GET /cache/stats`.
    CacheStats(CacheStatsReply),
    /// `GET /metrics`.
    Metrics(MetricsSnapshot),
    /// `GET /healthz`.
    Health,
}

/// Shared-cache counters as served to clients.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CacheStatsReply {
    pub hits: u64,
    pub misses: u64,
    pub runs: u64,
    pub evictions: u64,
    pub entries: u64,
    /// `None` = unbounded cache.
    pub capacity: Option<u64>,
}

/// One failed API outcome: status, stable snake_case code, human
/// detail, and (for admission rejections) the static-analysis findings.
pub(crate) struct ApiError {
    pub status: u16,
    pub code: &'static str,
    pub message: String,
    /// `Some` ⇒ the JSON rendering attaches a `diagnostics` array
    /// (even when empty, matching the established wire shape).
    pub diagnostics: Option<Vec<Diagnostic>>,
}

impl ApiError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            code,
            message: message.into(),
            diagnostics: None,
        }
    }
}

pub(crate) struct ServerState {
    backend: Arc<dyn Backend>,
    advisor_config: Config,
    cache: Arc<AdviceCache>,
    sessions: Mutex<HashMap<String, Arc<Mutex<OwnedSession>>>>,
    next_id: AtomicU64,
    max_sessions: usize,
    /// Advice-cache shard count and entry bound (0 = unbounded),
    /// applied to every cache this server creates — the default
    /// backend's and each loaded dataset's.
    cache_shards: usize,
    cache_capacity: usize,
    dataset_root: Option<PathBuf>,
    /// Datasets loaded through `@path` session bodies, keyed by
    /// canonical path so aliases of one file share a single load.
    datasets: Mutex<HashMap<PathBuf, Dataset>>,
    metrics: Arc<ServerMetrics>,
    /// Clones of every live connection's socket, so shutdown can
    /// `shutdown(2)` them and unblock workers parked in reads. Without
    /// this, draining the pool waits out the full read deadline of every
    /// idle keep-alive connection — a stop that should take milliseconds
    /// took `read_timeout` (10 s at the defaults); the load harness,
    /// which starts and stops a server per scenario, made that stall
    /// impossible to ignore.
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_seq: AtomicU64,
}

/// Build an advice cache honouring the configured bound (0 = unbounded).
fn new_cache(shards: usize, capacity: usize) -> AdviceCache {
    if capacity == 0 {
        AdviceCache::with_shards(shards)
    } else {
        AdviceCache::bounded(shards, capacity)
    }
}

/// A bound advisory server, ready to [`run`](Server::run) or
/// [`spawn`](Server::spawn).
pub struct Server {
    listener: TcpListener,
    /// Optional second listener speaking the binary wire protocol
    /// (see [`crate::wire`]); both listeners share one worker pool,
    /// session registry, advice cache, and metrics.
    wire_listener: Option<TcpListener>,
    state: Arc<ServerState>,
    config: ServeConfig,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) over a shared
    /// backend, with the paper-default advisor configuration.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn Backend>,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        Server::bind_with_advisor_config(addr, backend, config, Config::default())
    }

    /// Bind with an explicit advisor configuration (shared by every
    /// session — the cache key space assumes one config per server).
    pub fn bind_with_advisor_config(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn Backend>,
        config: ServeConfig,
        advisor_config: Config,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(ServerState {
            backend,
            advisor_config,
            cache: Arc::new(new_cache(config.cache_shards, config.cache_capacity)),
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            max_sessions: config.max_sessions.max(1),
            cache_shards: config.cache_shards,
            cache_capacity: config.cache_capacity,
            dataset_root: config.dataset_root.clone(),
            datasets: Mutex::new(HashMap::new()),
            metrics: Arc::new(ServerMetrics::default()),
            conns: Mutex::new(HashMap::new()),
            conn_seq: AtomicU64::new(0),
        });
        Ok(Server {
            listener,
            wire_listener: None,
            state,
            config,
        })
    }

    /// Additionally listen for the binary wire protocol on `addr` (use
    /// port 0 for an ephemeral port). Wire connections are served by
    /// the same worker pool and operate on the same sessions, caches,
    /// and metrics as HTTP ones — a session started over HTTP can be
    /// drilled over the wire protocol and vice versa.
    pub fn with_wire_listener(mut self, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        self.wire_listener = Some(TcpListener::bind(addr)?);
        Ok(self)
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The binary wire listener's address, if one was configured.
    pub fn wire_addr(&self) -> Option<SocketAddr> {
        self.wire_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The shared advice cache (for in-process stats inspection).
    pub fn cache(&self) -> Arc<AdviceCache> {
        Arc::clone(&self.state.cache)
    }

    /// The serving-layer counters (for in-process inspection).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.state.metrics)
    }

    /// Serve connections until `shutdown` flips true (checked between
    /// accepts; connect once per listener after flipping to unblock the
    /// accepts).
    fn serve(self, shutdown: Arc<AtomicBool>) {
        let pool = Arc::new(WorkerPool::new(self.config.workers));
        // The wire listener (if any) accepts on its own thread; both
        // loops hand connections to the one shared pool.
        let wire_thread = self.wire_listener.map(|listener| {
            let state = Arc::clone(&self.state);
            let pool = Arc::clone(&pool);
            let config = self.config.clone();
            let flag = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                accept_loop(listener, &state, &pool, &config, &flag, ConnKind::Wire)
            })
        });
        accept_loop(
            self.listener,
            &self.state,
            &pool,
            &self.config,
            &shutdown,
            ConnKind::Http,
        );
        if let Some(thread) = wire_thread {
            let _ = thread.join();
        }
        // Force every live connection closed before draining the pool:
        // a worker blocked in a read returns immediately instead of
        // waiting out its deadline, so shutdown is bounded by in-flight
        // *work*, not by idle keep-alive timers.
        for (_, conn) in self
            .state
            .conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain()
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // Dropping the pool drains in-flight connections.
    }

    /// Run the accept loop on the calling thread, forever.
    pub fn run(self) {
        self.serve(Arc::new(AtomicBool::new(false)));
    }

    /// Run the accept loop on a background thread; the returned handle
    /// stops the server when dropped (or via [`ServerHandle::shutdown`]).
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let wire_addr = self.wire_addr();
        let cache = self.cache();
        let metrics = self.metrics();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::spawn(move || self.serve(flag));
        Ok(ServerHandle {
            addr,
            wire_addr,
            cache,
            metrics,
            shutdown,
            thread: Some(thread),
        })
    }
}

/// Handle to a background server; shuts the server down on drop.
pub struct ServerHandle {
    addr: SocketAddr,
    wire_addr: Option<SocketAddr>,
    cache: Arc<AdviceCache>,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The binary wire listener's address, if one was configured.
    pub fn wire_addr(&self) -> Option<SocketAddr> {
        self.wire_addr
    }

    /// The server's shared advice cache.
    pub fn cache(&self) -> Arc<AdviceCache> {
        Arc::clone(&self.cache)
    }

    /// The server's serving-layer counters.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Stop accepting, drain in-flight requests, join the accept loop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock each accept call with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(wire) = self.wire_addr {
            let _ = TcpStream::connect(wire);
        }
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A `TcpStream` reader that enforces one absolute deadline across the
/// *whole* request: before every read the socket timeout is re-armed
/// with the time remaining, so a client trickling one byte per
/// near-timeout interval still gets cut off at the deadline instead of
/// resetting the clock with each byte.
pub(crate) struct DeadlineStream {
    stream: TcpStream,
    deadline: std::time::Instant,
}

impl DeadlineStream {
    pub(crate) fn new(stream: TcpStream, timeout: Duration) -> DeadlineStream {
        DeadlineStream {
            stream,
            deadline: std::time::Instant::now() + timeout,
        }
    }

    /// Start a fresh whole-request deadline (once per request on a
    /// persistent connection — idle time between requests counts too).
    pub(crate) fn rearm(&mut self, timeout: Duration) {
        self.deadline = std::time::Instant::now() + timeout;
    }
}

impl std::io::Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self
            .deadline
            .checked_duration_since(std::time::Instant::now())
            .filter(|d| !d.is_zero())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::TimedOut, "request deadline exceeded")
            })?;
        self.stream.set_read_timeout(Some(remaining))?;
        self.stream.read(buf)
    }
}

/// Which protocol a listener's connections speak.
#[derive(Clone, Copy)]
enum ConnKind {
    Http,
    Wire,
}

/// Accept connections until `shutdown` flips true, handing each to the
/// shared worker pool with the per-kind connection handler.
fn accept_loop(
    listener: TcpListener,
    state: &Arc<ServerState>,
    pool: &Arc<WorkerPool>,
    config: &ServeConfig,
    shutdown: &Arc<AtomicBool>,
    kind: ConnKind,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => {
                // Transient accept failures (fd exhaustion, aborted
                // handshakes) must not busy-spin the accept thread.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        // Advice exchanges are one small write per direction — the
        // worst case for Nagle's algorithm, which would hold a tiny
        // response back waiting for an ACK that the client's
        // delayed-ACK timer won't send for tens of ms. Best-effort:
        // a socket that rejects the option still gets served.
        let _ = stream.set_nodelay(true);
        state.metrics.connections.fetch_add(1, Ordering::Relaxed);
        let state = Arc::clone(state);
        let timeout = config.read_timeout;
        let max_requests = config.max_requests_per_connection.max(1);
        // Register the socket so shutdown can unblock the worker if
        // it is parked reading this connection when the flag flips.
        let conn_id = state.conn_seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            state
                .conns
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(conn_id, clone);
        }
        pool.execute(move || {
            match kind {
                ConnKind::Http => handle_connection(stream, &state, timeout, max_requests),
                ConnKind::Wire => crate::wire::handle_wire_connection(stream, &state, timeout),
            }
            state
                .conns
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .remove(&conn_id);
        });
    }
}

/// Serve requests from one connection until the client closes, asks to
/// close, errs, exhausts its request budget, or goes idle past the
/// deadline (HTTP/1.1 keep-alive — the ROADMAP follow-up from the
/// one-request-per-connection first cut).
fn handle_connection(
    stream: TcpStream,
    state: &ServerState,
    timeout: Duration,
    max_requests: usize,
) {
    use std::io::BufRead;
    let reader = match stream.try_clone() {
        Ok(s) => DeadlineStream::new(s, timeout),
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader);
    let mut writer = stream;
    let _ = writer.set_write_timeout(Some(timeout));
    for served in 1..=max_requests {
        // Each request gets a fresh whole-request deadline; the time a
        // persistent connection sits idle counts against it too.
        reader.get_mut().rearm(timeout);
        // Peek before parsing: a connection closed (or idle-expired)
        // between requests ends quietly, with no error response.
        match reader.fill_buf() {
            Ok([]) => return, // clean EOF between requests
            Ok(_) => {}       // next request has begun
            Err(_) => return, // idle deadline or transport error
        }
        let (status, body, keep_alive) = match parse_request(&mut reader) {
            Ok(req) => {
                let keep = req.keep_alive && served < max_requests;
                let (status, body) = route(state, &req);
                (status, body, keep)
            }
            // A malformed request poisons the framing: answer and close.
            Err(e) => (
                e.status(),
                encode_error(http_error_code(&e), &e.to_string()),
                false,
            ),
        };
        state.metrics.record_response(status);
        if write_response(&mut writer, status, &body, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// The stable machine-readable code for a transport-layer error.
fn http_error_code(e: &HttpError) -> &'static str {
    match e {
        HttpError::UnsupportedMethod(_) => "unsupported_method",
        HttpError::UnsupportedVersion(_) => "unsupported_http_version",
        HttpError::UnsupportedTransferEncoding(_) => "unsupported_transfer_encoding",
        HttpError::HeadTooLarge => "head_too_large",
        HttpError::BodyTooLarge(_) => "body_too_large",
        _ => "bad_request",
    }
}

/// Split a path into non-empty segments.
fn segments(path: &str) -> Vec<&str> {
    path.split('/').filter(|s| !s.is_empty()).collect()
}

/// Dispatch one request to (status, JSON body). Everything that can
/// also arrive over the binary listener goes through the shared `api_*`
/// layer; only HTTP-specific concerns (path routing, the textual drill
/// body) live here.
fn route(state: &ServerState, req: &Request) -> (u16, String) {
    match (req.method, segments(&req.path).as_slice()) {
        (Method::Get, ["healthz"]) => render(Ok(ApiOk::Health)),
        (Method::Get, ["cache", "stats"]) => render(Ok(api_cache_stats(state))),
        (Method::Get, ["metrics"]) => render(Ok(api_metrics(state))),
        (Method::Post, ["session"]) => render(api_create_session(state, &req.body)),
        (Method::Get, ["session", id]) => render(api_session_info(state, id)),
        (Method::Delete, ["session", id]) => render(api_delete_session(state, id)),
        (Method::Post, ["session", id, "drill"]) => match parse_drill_body(&req.body) {
            Some((rank, seg)) => render(api_drill(state, id, rank, seg)),
            None => (
                400,
                encode_error(
                    "bad_request",
                    "drill body must be two indices: \"rank seg\"",
                ),
            ),
        },
        (Method::Post, ["session", id, "back"]) => render(api_back(state, id)),
        // Known paths with the wrong method get a 405, the rest 404.
        (_, ["session"]) | (_, ["session", _]) | (_, ["session", _, "drill" | "back"]) => (
            405,
            encode_error("method_not_allowed", "method not allowed for this route"),
        ),
        _ => (404, encode_error("no_such_route", "no such route")),
    }
}

/// Parse an HTTP drill body: exactly two whitespace-separated indices.
fn parse_drill_body(body: &str) -> Option<(usize, usize)> {
    let mut parts = body.split_ascii_whitespace();
    match (
        parts.next().and_then(|t| t.parse::<usize>().ok()),
        parts.next().and_then(|t| t.parse::<usize>().ok()),
        parts.next(),
    ) {
        (Some(rank), Some(seg), None) => Some((rank, seg)),
        _ => None,
    }
}

/// Render an API outcome as this listener's (status, JSON body).
fn render(result: Result<ApiOk, ApiError>) -> (u16, String) {
    match result {
        Ok(ok) => render_ok(&ok),
        Err(e) => render_err(&e),
    }
}

fn render_ok(ok: &ApiOk) -> (u16, String) {
    match ok {
        ApiOk::Created { id, advice } => (201, advice_envelope(id, advice)),
        ApiOk::Advice { id, advice } => (200, advice_envelope(id, advice)),
        ApiOk::Info {
            id,
            depth,
            breadcrumbs,
            advice,
        } => (
            200,
            format!(
                "{{\"session\":{},\"depth\":{},\"breadcrumbs\":{},\"advice\":{}}}",
                json_string(id),
                depth,
                json_string_array(breadcrumbs),
                encode_advice(advice)
            ),
        ),
        ApiOk::Deleted => (204, String::new()),
        ApiOk::CacheStats(c) => {
            let capacity = match c.capacity {
                Some(cap) => cap.to_string(),
                None => "null".to_string(),
            };
            (
                200,
                format!(
                    "{{\"hits\":{},\"misses\":{},\"runs\":{},\"evictions\":{},\"entries\":{},\"capacity\":{}}}",
                    c.hits, c.misses, c.runs, c.evictions, c.entries, capacity
                ),
            )
        }
        ApiOk::Metrics(m) => (
            200,
            format!(
                "{{\"connections\":{},\"requests\":{},\"responses_2xx\":{},\"responses_4xx\":{},\"responses_5xx\":{},\"analysis_rejects\":{},\"analysis_prunes\":{}}}",
                m.connections,
                m.requests,
                m.responses_2xx,
                m.responses_4xx,
                m.responses_5xx,
                m.analysis_rejects,
                m.analysis_prunes
            ),
        ),
        ApiOk::Health => (200, "{\"ok\":true}".to_string()),
    }
}

fn render_err(e: &ApiError) -> (u16, String) {
    let body = match &e.diagnostics {
        Some(diags) => encode_error_with_diagnostics(e.code, &e.message, diags),
        None => encode_error(e.code, &e.message),
    };
    (e.status, body)
}

/// Split an optional leading `@<path>` line off a session body,
/// returning `(dataset path, SDL context)`.
fn split_dataset_directive(body: &str) -> (Option<&str>, &str) {
    let trimmed = body.trim_start();
    let Some(rest) = trimmed.strip_prefix('@') else {
        return (None, body);
    };
    match rest.split_once('\n') {
        Some((path, sdl)) => (Some(path.trim()), sdl),
        None => (Some(rest.trim()), ""),
    }
}

impl ServerState {
    /// Resolve an `@path` dataset directive: confine the path to the
    /// configured root, then load (or reuse) the `.charles` file. The
    /// registry lock is held across `DiskTable::open`, which reads only
    /// header + footer — a few hundred bytes — so the hold is short and
    /// concurrent first requests for one dataset load it exactly once.
    fn dataset(&self, rel: &str) -> Result<Dataset, ApiError> {
        let Some(root) = &self.dataset_root else {
            return Err(ApiError::new(
                403,
                "dataset_disabled",
                "this server has no dataset root; '@path' session bodies are disabled",
            ));
        };
        let root = root.canonicalize().map_err(|e| {
            ApiError::new(
                500,
                "backend_failure",
                format!("dataset root unavailable: {e}"),
            )
        })?;
        let joined = root.join(rel);
        let canonical = joined
            .canonicalize()
            .map_err(|_| ApiError::new(404, "no_such_dataset", format!("no dataset at {rel:?}")))?;
        if !canonical.starts_with(&root) {
            return Err(ApiError::new(
                403,
                "dataset_forbidden",
                format!("dataset path {rel:?} escapes the dataset root"),
            ));
        }
        let mut registry = self.datasets.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(d) = registry.get(&canonical) {
            return Ok(d.clone());
        }
        match DiskTable::open(&canonical) {
            Ok(table) => {
                let dataset = Dataset {
                    backend: Arc::new(table),
                    cache: Arc::new(new_cache(self.cache_shards, self.cache_capacity)),
                };
                registry.insert(canonical, dataset.clone());
                Ok(dataset)
            }
            Err(e) => Err(ApiError::new(
                422,
                "bad_dataset",
                format!("failed to load dataset {rel:?}: {e}"),
            )),
        }
    }

    /// The serving-layer counters (for the binary listener's handler).
    pub(crate) fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }
}

pub(crate) fn api_create_session(state: &ServerState, body: &str) -> Result<ApiOk, ApiError> {
    let (dataset_path, sdl) = split_dataset_directive(body);
    if sdl.trim().is_empty() {
        return Err(ApiError::new(
            400,
            "bad_request",
            "request body must be an SDL context",
        ));
    }
    let dataset = match dataset_path {
        None => Dataset {
            backend: Arc::clone(&state.backend),
            cache: Arc::clone(&state.cache),
        },
        Some(rel) => state.dataset(rel)?,
    };
    let mut session = OwnedSession::with_config(dataset.backend, state.advisor_config.clone())
        .with_cache(dataset.cache);
    let advice = match session.start(sdl) {
        Ok(advice) => Arc::clone(advice),
        Err(e) => return Err(admission_error(&state.metrics, &e)),
    };
    let id = format!("s{}", state.next_id.fetch_add(1, Ordering::Relaxed));
    {
        // Cap check and insert under one lock so racing creates cannot
        // overshoot the bound. (The advise work above is not wasted on
        // rejection: it landed in the shared cache.)
        let mut sessions = state.sessions.lock().unwrap_or_else(|p| p.into_inner());
        if sessions.len() >= state.max_sessions {
            return Err(ApiError::new(
                503,
                "capacity_exhausted",
                "session capacity exhausted; DELETE finished sessions and retry",
            ));
        }
        sessions.insert(id.clone(), Arc::new(Mutex::new(session)));
    }
    Ok(ApiOk::Created { id, advice })
}

pub(crate) fn api_delete_session(state: &ServerState, id: &str) -> Result<ApiOk, ApiError> {
    let removed = state
        .sessions
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .remove(id);
    match removed {
        Some(_) => Ok(ApiOk::Deleted),
        None => Err(no_such_session(id)),
    }
}

pub(crate) fn api_session_info(state: &ServerState, id: &str) -> Result<ApiOk, ApiError> {
    with_session(state, id, |id, session| {
        let Some(advice) = session.current() else {
            return Err(core_error(&CoreError::SessionNotStarted));
        };
        let advice = Arc::clone(advice);
        Ok(ApiOk::Info {
            id: id.to_string(),
            depth: session.depth(),
            breadcrumbs: session
                .breadcrumbs()
                .iter()
                .map(|q| q.to_string())
                .collect(),
            advice,
        })
    })
}

pub(crate) fn api_drill(
    state: &ServerState,
    id: &str,
    rank: usize,
    seg: usize,
) -> Result<ApiOk, ApiError> {
    with_session(state, id, |id, session| match session.drill(rank, seg) {
        Ok(advice) => Ok(ApiOk::Advice {
            id: id.to_string(),
            advice: Arc::clone(advice),
        }),
        Err(e) => Err(admission_error(&state.metrics, &e)),
    })
}

pub(crate) fn api_back(state: &ServerState, id: &str) -> Result<ApiOk, ApiError> {
    with_session(state, id, |id, session| match session.try_back() {
        Ok(advice) => Ok(ApiOk::Advice {
            id: id.to_string(),
            advice: Arc::clone(advice),
        }),
        Err(e) => Err(core_error(&e)),
    })
}

pub(crate) fn api_cache_stats(state: &ServerState) -> ApiOk {
    let stats = state.cache.stats();
    ApiOk::CacheStats(CacheStatsReply {
        hits: stats.hits,
        misses: stats.misses,
        runs: stats.runs,
        evictions: stats.evictions,
        entries: state.cache.len() as u64,
        capacity: state.cache.capacity().map(|c| c as u64),
    })
}

pub(crate) fn api_metrics(state: &ServerState) -> ApiOk {
    ApiOk::Metrics(state.metrics.snapshot())
}

fn no_such_session(id: &str) -> ApiError {
    ApiError::new(404, "no_such_session", format!("no session {id:?}"))
}

/// Look a session up and run `f` on it under its own lock (the registry
/// lock is released first, so sessions never serialize on each other).
fn with_session<F>(state: &ServerState, id: &str, f: F) -> Result<ApiOk, ApiError>
where
    F: FnOnce(&str, &mut OwnedSession) -> Result<ApiOk, ApiError>,
{
    let session = state
        .sessions
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get(id)
        .cloned();
    match session {
        Some(cell) => {
            let mut session = cell.lock().unwrap_or_else(|p| p.into_inner());
            f(id, &mut session)
        }
        None => Err(no_such_session(id)),
    }
}

/// The standard success envelope: session id + full advice payload.
fn advice_envelope(id: &str, advice: &Advice) -> String {
    format!(
        "{{\"session\":{},\"advice\":{}}}",
        json_string(id),
        encode_advice(advice)
    )
}

/// Map advisor errors onto statuses and stable codes: client mistakes
/// are 4xx, backend faults are the only 500s.
fn core_error(e: &CoreError) -> ApiError {
    let message = e.to_string();
    let (status, code) = match e {
        // Static-analysis rejections: the context parsed but is
        // ill-typed for this dataset's schema. 422 with the findings
        // attached, so clients see every problem at once.
        CoreError::InvalidContext(diags) => {
            return ApiError {
                status: 422,
                code: "invalid_context",
                message,
                diagnostics: Some(diags.clone()),
            };
        }
        // An unknown attribute surfaces from the parser (it resolves
        // names against the schema), but to a client it is the same
        // admission failure — answer it in the same shape.
        CoreError::Sdl(SdlError::UnknownAttribute { attr, .. }) => {
            let diag = Diagnostic::new(
                DiagnosticCode::UnknownAttribute,
                attr.clone(),
                format!("the dataset's schema has no attribute {attr:?}"),
            );
            return ApiError {
                status: 422,
                code: "invalid_context",
                message,
                diagnostics: Some(vec![diag]),
            };
        }
        // Provably-empty conjunction: valid, but answered without any
        // backend work.
        CoreError::UnsatisfiableContext => (422, "unsatisfiable_context"),
        // The context didn't parse or validate: the request was wrong.
        CoreError::Sdl(_) => (400, "bad_context"),
        CoreError::BadConfig(_) => (400, "bad_config"),
        // Stable session-state errors: the request is well-formed but
        // cannot apply to the current state.
        CoreError::SessionNotStarted => (409, "session_not_started"),
        CoreError::NoSuchSegment { .. } => (422, "no_such_segment"),
        CoreError::AtRoot => (422, "at_root"),
        // Semantically empty/uniform contexts are client-visible dead
        // ends, not server faults.
        CoreError::EmptyContext => (422, "empty_context"),
        CoreError::NoCuttableAttribute => (422, "no_cuttable_attribute"),
        CoreError::Store(_) => (500, "backend_failure"),
    };
    ApiError::new(status, code, message)
}

/// [`core_error`] for the two operations that advise (start and drill),
/// additionally counting static-analysis outcomes: rejects (ill-typed
/// contexts) and prunes (provably-empty contexts answered with zero
/// backend operations). Kept separate so `core_error` stays a pure
/// mapping.
fn admission_error(metrics: &ServerMetrics, e: &CoreError) -> ApiError {
    match e {
        CoreError::InvalidContext(_) | CoreError::Sdl(SdlError::UnknownAttribute { .. }) => {
            metrics.record_analysis_reject();
        }
        CoreError::UnsatisfiableContext => metrics.record_analysis_prune(),
        _ => {}
    }
    core_error(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charles_store::{DataType, TableBuilder, Value};

    fn backend() -> Arc<dyn Backend> {
        let mut b = TableBuilder::new("t");
        b.add_column("kind", DataType::Str)
            .add_column("size", DataType::Int);
        for i in 0..48i64 {
            let kind = if i % 2 == 0 { "even" } else { "odd" };
            b.push_row(vec![Value::str(kind), Value::Int(i)]).unwrap();
        }
        Arc::new(b.finish())
    }

    fn state() -> ServerState {
        ServerState {
            backend: backend(),
            advisor_config: Config::default(),
            cache: Arc::new(AdviceCache::bounded(4, 64)),
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            max_sessions: 4096,
            cache_shards: 4,
            cache_capacity: 64,
            dataset_root: None,
            datasets: Mutex::new(HashMap::new()),
            metrics: Arc::new(ServerMetrics::default()),
            conns: Mutex::new(HashMap::new()),
            conn_seq: AtomicU64::new(0),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: Method::Post,
            path: path.to_string(),
            body: body.to_string(),
            keep_alive: true,
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: Method::Get,
            path: path.to_string(),
            body: String::new(),
            keep_alive: true,
        }
    }

    #[test]
    fn full_lifecycle_through_route() {
        let st = state();
        let (status, body) = route(&st, &post("/session", "(kind: , size: )"));
        assert_eq!(status, 201, "{body}");
        assert!(body.starts_with("{\"session\":\"s1\",\"advice\":"));

        let (status, info) = route(&st, &get("/session/s1"));
        assert_eq!(status, 200);
        assert!(info.contains("\"depth\":1"));
        assert!(info.contains("\"breadcrumbs\":[\"(kind: , size: )\"]"));

        let (status, drilled) = route(&st, &post("/session/s1/drill", "0 0"));
        assert_eq!(status, 200, "{drilled}");

        let (status, back) = route(&st, &post("/session/s1/back", ""));
        assert_eq!(status, 200, "{back}");

        // Back at the root: 422 with a stable message.
        let (status, err) = route(&st, &post("/session/s1/back", ""));
        assert_eq!(status, 422);
        assert!(err.contains("root"));

        let (status, _) = route(
            &st,
            &Request {
                method: Method::Delete,
                path: "/session/s1".into(),
                body: String::new(),
                keep_alive: true,
            },
        );
        assert_eq!(status, 204);
        let (status, _) = route(&st, &get("/session/s1"));
        assert_eq!(status, 404);
    }

    #[test]
    fn error_statuses() {
        let st = state();
        // Unknown attribute → 422 admission rejection (see
        // `analysis_rejections_are_structured_and_counted`).
        let (status, _) = route(&st, &post("/session", "(nope: )"));
        assert_eq!(status, 422);
        // Unparseable SDL → 400.
        let (status, _) = route(&st, &post("/session", "garbage"));
        assert_eq!(status, 400);
        // Empty body → 400.
        let (status, _) = route(&st, &post("/session", "   "));
        assert_eq!(status, 400);
        // Unknown session → 404.
        let (status, _) = route(&st, &get("/session/zzz"));
        assert_eq!(status, 404);
        // Unknown route → 404; known route, wrong method → 405.
        let (status, _) = route(&st, &get("/frobnicate"));
        assert_eq!(status, 404);
        let (status, _) = route(&st, &get("/session/s1/drill"));
        assert_eq!(status, 405);
        // Out-of-range drill → 422 with the indices echoed.
        route(&st, &post("/session", "(kind: , size: )"));
        let (status, body) = route(&st, &post("/session/s1/drill", "99 7"));
        assert_eq!(status, 422);
        assert!(body.contains("(99, 7)"));
        // Malformed drill body → 400.
        let (status, _) = route(&st, &post("/session/s1/drill", "one two"));
        assert_eq!(status, 400);
        let (status, _) = route(&st, &post("/session/s1/drill", "1 2 3"));
        assert_eq!(status, 400);
        // Empty context (selects no rows) → 422.
        let (status, _) = route(&st, &post("/session", "(kind: {neither}, size: )"));
        assert_eq!(status, 422);
    }

    #[test]
    fn cache_is_shared_across_sessions() {
        let st = state();
        let (s1, _) = route(&st, &post("/session", "(kind: , size: )"));
        // Permuted conjuncts: same canonical context, so a cache hit.
        let (s2, _) = route(&st, &post("/session", "(size: , kind: )"));
        assert_eq!((s1, s2), (201, 201));
        assert_eq!(st.cache.stats().runs, 1);
        let (status, stats) = route(&st, &get("/cache/stats"));
        assert_eq!(status, 200);
        assert!(stats.contains("\"runs\":1"), "{stats}");
        assert!(stats.contains("\"entries\":1"), "{stats}");
        assert!(stats.contains("\"evictions\":0"), "{stats}");
        assert!(stats.contains("\"capacity\":64"), "{stats}");
    }

    #[test]
    fn cache_stats_report_evictions_and_the_bound_holds() {
        // A tiny bounded cache: more distinct contexts than capacity
        // must evict rather than grow, and /cache/stats must say so.
        let st = ServerState {
            cache: Arc::new(AdviceCache::bounded(1, 2)),
            cache_capacity: 2,
            ..state()
        };
        for body in ["(kind: )", "(size: )", "(kind: , size: )", "(size: [3,9])"] {
            let (status, resp) = route(&st, &post("/session", body));
            assert_eq!(status, 201, "{resp}");
        }
        assert!(st.cache.len() <= 2, "cache grew to {}", st.cache.len());
        let stats = st.cache.stats();
        assert_eq!(stats.runs, 4, "every distinct context ran");
        assert!(stats.evictions >= 2, "evictions: {}", stats.evictions);
        let (_, body) = route(&st, &get("/cache/stats"));
        assert!(body.contains("\"capacity\":2"), "{body}");
        let evictions_field = body
            .split("\"evictions\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .unwrap()
            .parse::<u64>()
            .unwrap();
        assert!(evictions_field >= 2, "{body}");
    }

    #[test]
    fn unknown_session_errors_are_structured() {
        // The documented error shape: {"error":{"code","message"}} with
        // a stable code — on GET and DELETE of a dead session id alike.
        let st = state();
        let (status, body) = route(&st, &get("/session/s42"));
        assert_eq!(status, 404);
        assert_eq!(
            body,
            "{\"error\":{\"code\":\"no_such_session\",\"message\":\"no session \\\"s42\\\"\"}}"
        );
        let (status, body) = route(
            &st,
            &Request {
                method: Method::Delete,
                path: "/session/s42".into(),
                body: String::new(),
                keep_alive: true,
            },
        );
        assert_eq!(status, 404);
        assert!(body.contains("\"code\":\"no_such_session\""), "{body}");
        // Other error classes carry their own stable codes.
        let (_, body) = route(&st, &get("/frobnicate"));
        assert!(body.contains("\"code\":\"no_such_route\""), "{body}");
        let (_, body) = route(&st, &get("/session/s1/drill"));
        assert!(body.contains("\"code\":\"method_not_allowed\""), "{body}");
        let (_, body) = route(&st, &post("/session", "garbage"));
        assert!(body.contains("\"code\":\"bad_context\""), "{body}");
    }

    #[test]
    fn analysis_rejections_are_structured_and_counted() {
        let st = state();
        // Unknown attribute: previously a 400 parse error; now a 422
        // admission rejection carrying a machine-readable diagnostic.
        let (status, body) = route(&st, &post("/session", "(nope: , kind: )"));
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("\"code\":\"invalid_context\""), "{body}");
        assert!(body.contains("\"diagnostics\":["), "{body}");
        assert!(body.contains("\"code\":\"unknown_attribute\""), "{body}");
        assert!(body.contains("\"attr\":\"nope\""), "{body}");
        // Ill-typed literal: previously crossed admission and died at
        // eval as a 500 backend failure; now a 422 with the finding.
        let (status, body) = route(&st, &post("/session", "(size: {'abc'})"));
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("\"code\":\"invalid_context\""), "{body}");
        assert!(body.contains("\"code\":\"type_mismatch\""), "{body}");
        assert!(body.contains("\"attr\":\"size\""), "{body}");
        assert_eq!(st.metrics.snapshot().analysis_rejects, 2);
        assert_eq!(st.metrics.snapshot().analysis_prunes, 0);
    }

    #[test]
    fn unsatisfiable_context_is_pruned_without_backend_work() {
        let st = state();
        // Warm up with a real session so backend counters are non-zero
        // and would move if the pruned request touched the backend.
        let (status, _) = route(&st, &post("/session", "(kind: , size: )"));
        assert_eq!(status, 201);
        let before = st.backend.stats();
        assert!(before.scans > 0);
        let (status, body) = route(
            &st,
            &post("/session", "(size: [0,10], size: [20,30], kind: )"),
        );
        assert_eq!(status, 422, "{body}");
        assert!(
            body.contains("\"code\":\"unsatisfiable_context\""),
            "{body}"
        );
        assert!(body.contains("provably empty"), "{body}");
        assert_eq!(
            st.backend.stats(),
            before,
            "pruned context must cost zero backend operations"
        );
        assert_eq!(st.metrics.snapshot().analysis_prunes, 1);
        // The counters are on the wire too. (`route` is the pure
        // dispatcher — 4xx/5xx totals are recorded at the connection
        // layer, covered by the end-to-end tests below.)
        let (status, metrics) = route(&st, &get("/metrics"));
        assert_eq!(status, 200);
        assert!(metrics.contains("\"analysis_prunes\":1"), "{metrics}");
        assert!(metrics.contains("\"analysis_rejects\":0"), "{metrics}");
    }

    #[test]
    fn repeated_attribute_contexts_share_one_cache_entry() {
        let st = state();
        // Three spellings of one context: a plain one, a redundant
        // conjunction, and its permutation. Analysis normalizes all
        // three to a single cache key.
        for body in [
            "(size: [10,40], kind: )",
            "(size: [0,40], size: [10,99], kind: )",
            "(kind: , size: [10,50], size: [0,40])",
        ] {
            let (status, resp) = route(&st, &post("/session", body));
            assert_eq!(status, 201, "{resp}");
        }
        assert_eq!(st.cache.stats().runs, 1, "one advisor run for all three");
        assert_eq!(st.cache.len(), 1);
        // The session's breadcrumb is the merged canonical context.
        let (_, info) = route(&st, &get("/session/s2"));
        assert!(
            info.contains("\"breadcrumbs\":[\"(kind: , size: [10,40])\"]"),
            "{info}"
        );
    }

    #[test]
    fn drill_requests_count_analysis_metrics_too() {
        let st = state();
        let (status, _) = route(&st, &post("/session", "(kind: , size: )"));
        assert_eq!(status, 201);
        // A plain out-of-range drill is not an analysis event.
        let (status, _) = route(&st, &post("/session/s1/drill", "99 0"));
        assert_eq!(status, 422);
        let snap = st.metrics.snapshot();
        assert_eq!(snap.analysis_rejects + snap.analysis_prunes, 0);
    }

    #[test]
    fn dataset_directive_parsing() {
        assert_eq!(split_dataset_directive("(kind: )"), (None, "(kind: )"));
        assert_eq!(
            split_dataset_directive("@boats.charles\n(kind: )"),
            (Some("boats.charles"), "(kind: )")
        );
        assert_eq!(
            split_dataset_directive("  @ sub/boats.charles \r\n(kind: )"),
            (Some("sub/boats.charles"), "(kind: )")
        );
        // Directive without a context line: empty SDL (rejected later).
        assert_eq!(
            split_dataset_directive("@boats.charles"),
            (Some("boats.charles"), "")
        );
    }

    #[test]
    fn dataset_sessions_load_from_disk_within_the_root() {
        use charles_store::disk::write_table;
        // A root directory holding one saved dataset.
        let root = std::env::temp_dir().join(format!("charles-ds-root-{}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();
        let mut b = TableBuilder::new("saved");
        b.add_column("kind", DataType::Str)
            .add_column("size", DataType::Int);
        for i in 0..40i64 {
            let kind = if i % 2 == 0 { "even" } else { "odd" };
            b.push_row(vec![Value::str(kind), Value::Int(i)]).unwrap();
        }
        let saved = b.finish();
        write_table(&saved, root.join("boats.charles")).unwrap();

        let st = ServerState {
            dataset_root: Some(root.clone()),
            ..state()
        };

        // A dataset session starts, drills, and is served from the file.
        let (status, body) = route(&st, &post("/session", "@boats.charles\n(kind: , size: )"));
        assert_eq!(status, 201, "{body}");
        let (status, body) = route(&st, &post("/session/s1/drill", "0 0"));
        assert_eq!(status, 200, "{body}");
        // Same path again reuses the loaded dataset (one registry entry).
        let (status, _) = route(&st, &post("/session", "@boats.charles\n(kind: )"));
        assert_eq!(status, 201);
        assert_eq!(st.datasets.lock().unwrap().len(), 1);

        // Traversal out of the root is forbidden; missing files are 404;
        // non-.charles files are rejected as bad datasets.
        let (status, body) = route(&st, &post("/session", "@../../etc/passwd\n(kind: )"));
        assert!(
            status == 403 || status == 404,
            "traversal must not resolve: {status} {body}"
        );
        assert!(
            body.contains("dataset_forbidden") || body.contains("no_such_dataset"),
            "{body}"
        );
        let (status, body) = route(&st, &post("/session", "@nope.charles\n(kind: )"));
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("\"code\":\"no_such_dataset\""), "{body}");
        std::fs::write(root.join("junk.charles"), b"not a charles file").unwrap();
        let (status, body) = route(&st, &post("/session", "@junk.charles\n(kind: )"));
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("\"code\":\"bad_dataset\""), "{body}");

        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn dataset_sessions_disabled_without_a_root() {
        let st = state();
        let (status, body) = route(&st, &post("/session", "@boats.charles\n(kind: )"));
        assert_eq!(status, 403, "{body}");
        assert!(body.contains("\"code\":\"dataset_disabled\""), "{body}");
    }

    #[test]
    fn healthz() {
        let st = state();
        let (status, body) = route(&st, &get("/healthz"));
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
    }

    #[test]
    fn session_capacity_is_capped() {
        let st = ServerState {
            max_sessions: 2,
            ..state()
        };
        let (s1, _) = route(&st, &post("/session", "(kind: , size: )"));
        let (s2, _) = route(&st, &post("/session", "(kind: )"));
        assert_eq!((s1, s2), (201, 201));
        // Third session bounces with 503 until one is deleted.
        let (status, body) = route(&st, &post("/session", "(size: )"));
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("capacity"));
        let (status, _) = route(
            &st,
            &Request {
                method: Method::Delete,
                path: "/session/s1".into(),
                body: String::new(),
                keep_alive: true,
            },
        );
        assert_eq!(status, 204);
        let (status, _) = route(&st, &post("/session", "(size: )"));
        assert_eq!(status, 201);
    }

    /// Read one `Content-Length`-framed response off a keep-alive
    /// connection, returning (status line, Connection header, body).
    fn read_framed_response(stream: &mut TcpStream) -> (String, String, String) {
        use std::io::Read;
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).expect("response head");
            head.push(byte[0]);
        }
        let head = String::from_utf8(head).unwrap();
        let status = head.lines().next().unwrap().to_string();
        let mut connection = String::new();
        let mut len = 0usize;
        for line in head.lines().skip(1) {
            if let Some((name, value)) = line.split_once(':') {
                match name.trim().to_ascii_lowercase().as_str() {
                    "connection" => connection = value.trim().to_string(),
                    "content-length" => len = value.trim().parse().unwrap(),
                    _ => {}
                }
            }
        }
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).expect("response body");
        (status, connection, String::from_utf8(body).unwrap())
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        use std::io::Write;
        let server = Server::bind("127.0.0.1:0", backend(), ServeConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.spawn().unwrap();

        let mut stream = TcpStream::connect(addr).unwrap();
        // Three requests, one connection: the first two persist...
        for _ in 0..2 {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let (status, connection, body) = read_framed_response(&mut stream);
            assert!(status.starts_with("HTTP/1.1 200"), "{status}");
            assert_eq!(connection, "keep-alive");
            assert_eq!(body, "{\"ok\":true}");
        }
        // ...and a request asking to close is answered with close and
        // the connection actually ends.
        stream
            .write_all(b"GET /cache/stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (status, connection, _) = read_framed_response(&mut stream);
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        assert_eq!(connection, "close");
        let mut rest = Vec::new();
        std::io::Read::read_to_end(&mut stream, &mut rest).unwrap();
        assert!(rest.is_empty(), "server must close after Connection: close");
        handle.shutdown();
    }

    #[test]
    fn http10_without_keep_alive_closes_after_one_response() {
        use std::io::{Read, Write};
        let server = Server::bind("127.0.0.1:0", backend(), ServeConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.spawn().unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut all = String::new();
        stream.read_to_string(&mut all).unwrap();
        assert!(all.starts_with("HTTP/1.1 200"), "{all}");
        assert!(all.contains("\r\nConnection: close\r\n"), "{all}");
        handle.shutdown();
    }

    #[test]
    fn request_budget_closes_the_connection_with_notice() {
        use std::io::Write;
        let server = Server::bind(
            "127.0.0.1:0",
            backend(),
            ServeConfig {
                max_requests_per_connection: 2,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.spawn().unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let (_, connection, _) = read_framed_response(&mut stream);
        assert_eq!(connection, "keep-alive");
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let (_, connection, _) = read_framed_response(&mut stream);
        assert_eq!(connection, "close", "budget exhausted → close announced");
        let mut rest = Vec::new();
        std::io::Read::read_to_end(&mut stream, &mut rest).unwrap();
        assert!(rest.is_empty());
        handle.shutdown();
    }

    #[test]
    fn idle_keep_alive_connections_are_reaped_at_the_deadline() {
        use std::io::{Read, Write};
        let server = Server::bind(
            "127.0.0.1:0",
            backend(),
            ServeConfig {
                read_timeout: Duration::from_millis(200),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.spawn().unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let (_, connection, _) = read_framed_response(&mut stream);
        assert_eq!(connection, "keep-alive");
        // Go idle: the server must hang up (quietly) at the deadline
        // instead of pinning a pool worker forever.
        let start = std::time::Instant::now();
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "idle reap sends no error response");
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "idle connection not reaped: {:?}",
            start.elapsed()
        );
        handle.shutdown();
    }

    #[test]
    fn trickling_clients_hit_the_request_deadline() {
        use std::io::{Read, Write};
        let server = Server::bind(
            "127.0.0.1:0",
            backend(),
            ServeConfig {
                read_timeout: Duration::from_millis(250),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.spawn().unwrap();

        // Drip request-line bytes forever, never completing the line:
        // every read on the server side succeeds within ~80 ms, so a
        // *per-read* timeout would never fire — only the absolute
        // deadline cuts this client off.
        let mut stream = TcpStream::connect(addr).unwrap();
        let writer = stream.try_clone().unwrap();
        let start = std::time::Instant::now();
        let drip = std::thread::spawn(move || {
            let mut writer = writer;
            for _ in 0..25 {
                if writer.write_all(b"P").is_err() {
                    break; // server hung up: the deadline fired
                }
                std::thread::sleep(Duration::from_millis(80));
            }
        });
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        let elapsed = start.elapsed();
        drip.join().unwrap();
        // 25 drips × 80 ms = 2 s of per-read-tolerable traffic; the
        // 250 ms deadline must have ended the request long before that.
        assert!(
            elapsed < Duration::from_millis(1500),
            "deadline did not bound the slow request: {elapsed:?}"
        );
        if !out.is_empty() {
            assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        }
        handle.shutdown();
    }
}
