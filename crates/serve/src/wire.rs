//! The binary wire protocol: a versioned, length-prefixed framing of
//! the same session API the HTTP listener serves, built for
//! cached-advice throughput.
//!
//! # Frame layout
//!
//! Every frame — request or response — starts with a 10-byte header:
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0 | 4 | magic `b"CHRW"` |
//! | 4 | 1 | protocol version (currently [`VERSION`]) |
//! | 5 | 1 | opcode (request `0x01..=0x08`, response `0x81..=0x87` / `0xEE`) |
//! | 6 | 4 | payload length, little-endian `u32` |
//!
//! followed by `payload length` bytes of opcode-specific payload. All
//! integers are little-endian fixed-width; strings are a `u32` byte
//! length followed by UTF-8 bytes; floats travel as their verbatim
//! IEEE-754 bits (`f64::to_bits`), so advice payloads round-trip
//! bit-exactly — no text formatting or parsing anywhere on the path.
//!
//! # Versioning
//!
//! The version byte is checked before the opcode is interpreted: a
//! server answers a frame with an unknown version with one `0xEE` error
//! frame (still version-1-framed, which any client can skip by length)
//! and closes. Payload layouts never change within a version; new
//! opcodes may be added (old servers answer unknown opcodes with an
//! error frame, old clients never see new response opcodes unless they
//! asked for them).
//!
//! # Pipelining
//!
//! Responses are returned strictly in request order, so clients may
//! write many frames before reading any response and match them up
//! FIFO. The server decouples reading from writing per connection — the
//! pool worker decodes and dispatches, a writer thread drains a bounded
//! in-order queue — so a burst of pipelined frames is parsed and
//! answered without head-of-line blocking on the client's read pace
//! (until the queue fills, which is the backpressure).
//!
//! # Relationship to the HTTP listener
//!
//! Both listeners dispatch through the same crate-internal API layer,
//! so every decision (status, error code, advice bytes) is shared by
//! construction. [`WireResponse::to_http`] renders a decoded binary
//! response as the exact `(status, JSON body)` the HTTP listener would
//! have produced for the equivalent request — the cross-listener
//! equivalence oracle in `tests/serve_concurrency.rs` leans on this.

use crate::client::ClientConfig;
use crate::json::{json_f64, json_string, json_string_array, stop_reason_name};
use crate::server::{
    api_back, api_cache_stats, api_create_session, api_delete_session, api_drill, api_metrics,
    api_session_info, ApiError, ApiOk, CacheStatsReply, DeadlineStream, ServerState,
};
use crate::MetricsSnapshot;
use charles_core::hbcuts::StopReason;
use charles_core::Advice;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::Duration;

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"CHRW";
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Fixed frame-header length (magic + version + opcode + payload len).
pub const HEADER_LEN: usize = 10;
/// Largest request payload a server accepts (an SDL context plus a
/// dataset directive fits in a fraction of this).
pub const MAX_REQUEST_PAYLOAD: u32 = 1 << 20;
/// Largest response payload a client accepts (a deep advice trace is
/// tens of kilobytes; this is headroom, not a target).
pub const MAX_RESPONSE_PAYLOAD: u32 = 64 << 20;

/// Response frames queued per connection before the decoding worker
/// blocks (the pipelining backpressure bound).
const PIPELINE_DEPTH: usize = 32;
/// The writer thread coalesces queued frames into one `write` syscall
/// up to roughly this many bytes.
const WRITE_BATCH_BYTES: usize = 256 * 1024;

const OP_START: u8 = 0x01;
const OP_INSPECT: u8 = 0x02;
const OP_DRILL: u8 = 0x03;
const OP_BACK: u8 = 0x04;
const OP_DELETE: u8 = 0x05;
const OP_CACHE_STATS: u8 = 0x06;
const OP_METRICS: u8 = 0x07;
const OP_HEALTH: u8 = 0x08;

const RESP_STARTED: u8 = 0x81;
const RESP_ADVICE: u8 = 0x82;
const RESP_INFO: u8 = 0x83;
const RESP_DELETED: u8 = 0x84;
const RESP_CACHE_STATS: u8 = 0x85;
const RESP_METRICS: u8 = 0x86;
const RESP_HEALTH: u8 = 0x87;
const RESP_ERROR: u8 = 0xEE;

/// Everything that can go wrong speaking the protocol. Decoding
/// arbitrary bytes yields one of these — never a panic.
#[derive(Debug)]
pub enum WireError {
    /// Transport-level failure (includes `UnexpectedEof` when the peer
    /// closes mid-frame).
    Io(std::io::Error),
    /// The frame did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// The opcode byte is not one this decoder knows.
    UnknownOpcode(u8),
    /// The declared payload length exceeds the decoder's bound.
    FrameTooLarge {
        /// Declared payload length.
        len: u32,
        /// The decoder's limit.
        max: u32,
    },
    /// The payload ended before the opcode's fields did.
    Truncated,
    /// The payload had bytes left over after the opcode's fields.
    TrailingBytes,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A field held a value outside its domain (named).
    BadValue(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
            WireError::Truncated => write!(f, "frame payload truncated"),
            WireError::TrailingBytes => write!(f, "frame payload has trailing bytes"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadValue(what) => write!(f, "field out of domain: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// One request frame, borrowing its strings from the decode buffer (the
/// server's request path allocates nothing in steady state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireRequest<'a> {
    /// Start a session from an SDL context (may begin with an `@path`
    /// dataset directive, exactly like the HTTP `POST /session` body).
    Start {
        /// The session body: optional directive line + SDL context.
        body: &'a str,
    },
    /// Breadcrumbs + current advice for a session.
    Inspect {
        /// Session id.
        id: &'a str,
    },
    /// Drill into segment `seg` of ranked segmentation `rank`.
    Drill {
        /// Session id.
        id: &'a str,
        /// Index into the ranked segmentations.
        rank: u32,
        /// Index of the segment within that segmentation.
        seg: u32,
    },
    /// Pop one breadcrumb.
    Back {
        /// Session id.
        id: &'a str,
    },
    /// Drop a session.
    Delete {
        /// Session id.
        id: &'a str,
    },
    /// Shared advice-cache counters.
    CacheStats,
    /// Serving-layer counters.
    Metrics,
    /// Liveness probe.
    Health,
}

impl<'a> WireRequest<'a> {
    /// This request's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            WireRequest::Start { .. } => OP_START,
            WireRequest::Inspect { .. } => OP_INSPECT,
            WireRequest::Drill { .. } => OP_DRILL,
            WireRequest::Back { .. } => OP_BACK,
            WireRequest::Delete { .. } => OP_DELETE,
            WireRequest::CacheStats => OP_CACHE_STATS,
            WireRequest::Metrics => OP_METRICS,
            WireRequest::Health => OP_HEALTH,
        }
    }

    /// Append this request as one complete frame to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let start = begin_frame(buf, self.opcode());
        match self {
            WireRequest::Start { body } => put_str(buf, body),
            WireRequest::Inspect { id } | WireRequest::Back { id } | WireRequest::Delete { id } => {
                put_str(buf, id);
            }
            WireRequest::Drill { id, rank, seg } => {
                put_str(buf, id);
                put_u32(buf, *rank);
                put_u32(buf, *seg);
            }
            WireRequest::CacheStats | WireRequest::Metrics | WireRequest::Health => {}
        }
        end_frame(buf, start);
    }

    /// Decode the payload of a frame whose header carried `opcode`.
    pub fn decode(opcode: u8, payload: &'a [u8]) -> Result<WireRequest<'a>, WireError> {
        let mut cur = Cur::new(payload);
        let req = match opcode {
            OP_START => WireRequest::Start {
                body: cur.str_field()?,
            },
            OP_INSPECT => WireRequest::Inspect {
                id: cur.str_field()?,
            },
            OP_DRILL => WireRequest::Drill {
                id: cur.str_field()?,
                rank: cur.u32()?,
                seg: cur.u32()?,
            },
            OP_BACK => WireRequest::Back {
                id: cur.str_field()?,
            },
            OP_DELETE => WireRequest::Delete {
                id: cur.str_field()?,
            },
            OP_CACHE_STATS => WireRequest::CacheStats,
            OP_METRICS => WireRequest::Metrics,
            OP_HEALTH => WireRequest::Health,
            other => return Err(WireError::UnknownOpcode(other)),
        };
        cur.finish()?;
        Ok(req)
    }
}

/// One ranked segmentation of a decoded advice payload.
#[derive(Debug, Clone)]
pub struct WireRanked {
    /// The segmentation's queries, rendered exactly as the JSON path
    /// renders them (what drill indices select).
    pub segmentation: Vec<String>,
    /// Entropy (nats) — bit-exact across the wire.
    pub entropy: f64,
    /// Max constraints per query.
    pub simplicity: u64,
    /// Distinct constrained columns.
    pub breadth: u64,
    /// Number of queries.
    pub depth: u64,
}

/// One composition step of a decoded trace.
#[derive(Debug, Clone)]
pub struct WireStep {
    /// Attributes of the first operand.
    pub left: Vec<String>,
    /// Attributes of the second operand.
    pub right: Vec<String>,
    /// INDEP of the chosen pair — bit-exact across the wire.
    pub indep: f64,
    /// Depth of the composition result.
    pub depth: u64,
    /// Whether the step was accepted.
    pub accepted: bool,
}

/// One skipped (uncomposable) pair of a decoded trace.
#[derive(Debug, Clone)]
pub struct WirePair {
    /// Attributes of the first operand.
    pub left: Vec<String>,
    /// Attributes of the second operand.
    pub right: Vec<String>,
    /// INDEP of the skipped pair — bit-exact across the wire.
    pub indep: f64,
}

/// A decoded HB-cuts execution trace.
#[derive(Debug, Clone, Default)]
pub struct WireTrace {
    /// Attributes successfully seeded.
    pub seeds: Vec<String>,
    /// Attributes that could not be cut.
    pub skipped: Vec<String>,
    /// Composition steps in order.
    pub steps: Vec<WireStep>,
    /// Best pairs skipped as uncomposable.
    pub skipped_pairs: Vec<WirePair>,
    /// Why the loop stopped.
    pub stop: Option<StopReason>,
}

/// A decoded advice payload — the deterministic fields of
/// [`charles_core::Advice`], exactly the set the JSON encoder serves.
#[derive(Debug, Clone)]
pub struct WireAdvice {
    /// The canonical context advised on, rendered.
    pub context: String,
    /// Rows in the context extent.
    pub context_size: u64,
    /// Ranked segmentations, best first.
    pub ranked: Vec<WireRanked>,
    /// Execution trace.
    pub trace: WireTrace,
}

impl WireAdvice {
    /// Render this advice as JSON, byte-identical to
    /// [`crate::json::encode_advice`] on the originating `Advice` (the
    /// floats travelled as bits, so the shortest-round-trip text form
    /// is reproduced exactly).
    pub fn to_json(&self) -> String {
        let mut ranked = String::from("[");
        for (i, r) in self.ranked.iter().enumerate() {
            if i > 0 {
                ranked.push(',');
            }
            ranked.push_str(&format!(
                "{{\"segmentation\":{},\"score\":{{\"entropy\":{},\"simplicity\":{},\"breadth\":{},\"depth\":{}}}}}",
                json_string_array(&r.segmentation),
                json_f64(r.entropy),
                r.simplicity,
                r.breadth,
                r.depth
            ));
        }
        ranked.push(']');
        let mut steps = String::from("[");
        for (i, s) in self.trace.steps.iter().enumerate() {
            if i > 0 {
                steps.push(',');
            }
            steps.push_str(&format!(
                "{{\"left\":{},\"right\":{},\"indep\":{},\"depth\":{},\"accepted\":{}}}",
                json_string_array(&s.left),
                json_string_array(&s.right),
                json_f64(s.indep),
                s.depth,
                s.accepted
            ));
        }
        steps.push(']');
        let mut skipped_pairs = String::from("[");
        for (i, p) in self.trace.skipped_pairs.iter().enumerate() {
            if i > 0 {
                skipped_pairs.push(',');
            }
            skipped_pairs.push_str(&format!(
                "{{\"left\":{},\"right\":{},\"indep\":{}}}",
                json_string_array(&p.left),
                json_string_array(&p.right),
                json_f64(p.indep)
            ));
        }
        skipped_pairs.push(']');
        let stop = match self.trace.stop {
            Some(s) => json_string(stop_reason_name(s)),
            None => "null".to_string(),
        };
        format!(
            "{{\"context\":{},\"context_size\":{},\"ranked\":{},\"trace\":{{\"seeds\":{},\"skipped\":{},\"steps\":{},\"skipped_pairs\":{},\"stop\":{}}}}}",
            json_string(&self.context),
            self.context_size,
            ranked,
            json_string_array(&self.trace.seeds),
            json_string_array(&self.trace.skipped),
            steps,
            skipped_pairs,
            stop
        )
    }
}

/// Shared advice-cache counters off the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireCacheStats {
    /// Lookups that found a settled entry.
    pub hits: u64,
    /// Lookups that found none.
    pub misses: u64,
    /// Advisor executions performed.
    pub runs: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: u64,
    /// Entry bound; `None` = unbounded.
    pub capacity: Option<u64>,
}

/// Serving-layer counters off the wire (the shared
/// [`MetricsSnapshot`], which both listeners' traffic feeds).
pub type WireMetrics = MetricsSnapshot;

/// A structured error response: the binary rendering of the JSON
/// `{"error":{...}}` body.
#[derive(Debug, Clone)]
pub struct WireFault {
    /// The status the HTTP listener would have answered with.
    pub status: u16,
    /// Stable snake_case error code.
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// Static-analysis findings, when the error carries them (`Some`
    /// renders a `diagnostics` array in JSON, even when empty).
    pub diagnostics: Option<Vec<WireDiagnostic>>,
}

/// One static-analysis finding of a [`WireFault`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDiagnostic {
    /// Stable snake_case finding code.
    pub code: String,
    /// The attribute the finding is about.
    pub attr: String,
    /// Human-readable detail.
    pub detail: String,
}

/// One decoded response frame.
#[derive(Debug, Clone)]
pub enum WireResponse {
    /// A session was created (HTTP 201).
    Started {
        /// The new session's id.
        id: String,
        /// Root advice.
        advice: WireAdvice,
    },
    /// Advice after a drill or back (HTTP 200).
    Advice {
        /// Session id.
        id: String,
        /// Current advice.
        advice: WireAdvice,
    },
    /// Session inspection (HTTP 200).
    Info {
        /// Session id.
        id: String,
        /// Breadcrumb depth.
        depth: u64,
        /// Rendered breadcrumb contexts, root first.
        breadcrumbs: Vec<String>,
        /// Current advice.
        advice: WireAdvice,
    },
    /// A session was deleted (HTTP 204).
    Deleted,
    /// Cache counters.
    CacheStats(WireCacheStats),
    /// Serving-layer counters.
    Metrics(WireMetrics),
    /// Liveness.
    Health,
    /// Any failure (HTTP 4xx/5xx).
    Error(WireFault),
}

impl WireResponse {
    /// The HTTP status the equivalent JSON-path response would carry.
    pub fn status(&self) -> u16 {
        match self {
            WireResponse::Started { .. } => 201,
            WireResponse::Advice { .. }
            | WireResponse::Info { .. }
            | WireResponse::CacheStats(_)
            | WireResponse::Metrics(_)
            | WireResponse::Health => 200,
            WireResponse::Deleted => 204,
            WireResponse::Error(f) => f.status,
        }
    }

    /// Render this response as the exact `(status, JSON body)` the HTTP
    /// listener produces for the equivalent request — the two listeners
    /// are interchangeable up to framing, and this is the function that
    /// makes that testable byte-for-byte.
    pub fn to_http(&self) -> (u16, String) {
        match self {
            WireResponse::Started { id, advice } => (
                201,
                format!(
                    "{{\"session\":{},\"advice\":{}}}",
                    json_string(id),
                    advice.to_json()
                ),
            ),
            WireResponse::Advice { id, advice } => (
                200,
                format!(
                    "{{\"session\":{},\"advice\":{}}}",
                    json_string(id),
                    advice.to_json()
                ),
            ),
            WireResponse::Info {
                id,
                depth,
                breadcrumbs,
                advice,
            } => (
                200,
                format!(
                    "{{\"session\":{},\"depth\":{},\"breadcrumbs\":{},\"advice\":{}}}",
                    json_string(id),
                    depth,
                    json_string_array(breadcrumbs),
                    advice.to_json()
                ),
            ),
            WireResponse::Deleted => (204, String::new()),
            WireResponse::CacheStats(c) => {
                let capacity = match c.capacity {
                    Some(cap) => cap.to_string(),
                    None => "null".to_string(),
                };
                (
                    200,
                    format!(
                        "{{\"hits\":{},\"misses\":{},\"runs\":{},\"evictions\":{},\"entries\":{},\"capacity\":{}}}",
                        c.hits, c.misses, c.runs, c.evictions, c.entries, capacity
                    ),
                )
            }
            WireResponse::Metrics(m) => (
                200,
                format!(
                    "{{\"connections\":{},\"requests\":{},\"responses_2xx\":{},\"responses_4xx\":{},\"responses_5xx\":{},\"analysis_rejects\":{},\"analysis_prunes\":{}}}",
                    m.connections,
                    m.requests,
                    m.responses_2xx,
                    m.responses_4xx,
                    m.responses_5xx,
                    m.analysis_rejects,
                    m.analysis_prunes
                ),
            ),
            WireResponse::Health => (200, "{\"ok\":true}".to_string()),
            WireResponse::Error(f) => {
                let body = match &f.diagnostics {
                    None => format!(
                        "{{\"error\":{{\"code\":{},\"message\":{}}}}}",
                        json_string(&f.code),
                        json_string(&f.message)
                    ),
                    Some(diags) => {
                        let mut list = String::from("[");
                        for (i, d) in diags.iter().enumerate() {
                            if i > 0 {
                                list.push(',');
                            }
                            list.push_str(&format!(
                                "{{\"code\":{},\"attr\":{},\"detail\":{}}}",
                                json_string(&d.code),
                                json_string(&d.attr),
                                json_string(&d.detail)
                            ));
                        }
                        list.push(']');
                        format!(
                            "{{\"error\":{{\"code\":{},\"message\":{},\"diagnostics\":{}}}}}",
                            json_string(&f.code),
                            json_string(&f.message),
                            list
                        )
                    }
                };
                (f.status, body)
            }
        }
    }

    /// This response's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            WireResponse::Started { .. } => RESP_STARTED,
            WireResponse::Advice { .. } => RESP_ADVICE,
            WireResponse::Info { .. } => RESP_INFO,
            WireResponse::Deleted => RESP_DELETED,
            WireResponse::CacheStats(_) => RESP_CACHE_STATS,
            WireResponse::Metrics(_) => RESP_METRICS,
            WireResponse::Health => RESP_HEALTH,
            WireResponse::Error(_) => RESP_ERROR,
        }
    }

    /// Append this response as one complete frame to `buf`. The server
    /// encodes straight from its own types (`encode_api_result`);
    /// this owned-side encoder exists for tests and for proxying, and
    /// is pinned byte-identical to the server's by the round-trip
    /// suites.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let start = begin_frame(buf, self.opcode());
        match self {
            WireResponse::Started { id, advice } | WireResponse::Advice { id, advice } => {
                put_str(buf, id);
                put_wire_advice(buf, advice);
            }
            WireResponse::Info {
                id,
                depth,
                breadcrumbs,
                advice,
            } => {
                put_str(buf, id);
                put_u64(buf, *depth);
                put_u32(buf, breadcrumbs.len() as u32);
                for b in breadcrumbs {
                    put_str(buf, b);
                }
                put_wire_advice(buf, advice);
            }
            WireResponse::Deleted | WireResponse::Health => {}
            WireResponse::CacheStats(c) => {
                put_u64(buf, c.hits);
                put_u64(buf, c.misses);
                put_u64(buf, c.runs);
                put_u64(buf, c.evictions);
                put_u64(buf, c.entries);
                match c.capacity {
                    None => put_u8(buf, 0),
                    Some(cap) => {
                        put_u8(buf, 1);
                        put_u64(buf, cap);
                    }
                }
            }
            WireResponse::Metrics(m) => put_metrics(buf, m),
            WireResponse::Error(f) => {
                put_u16(buf, f.status);
                put_str(buf, &f.code);
                put_str(buf, &f.message);
                match &f.diagnostics {
                    None => put_u8(buf, 0),
                    Some(diags) => {
                        put_u8(buf, 1);
                        put_u32(buf, diags.len() as u32);
                        for d in diags {
                            put_str(buf, &d.code);
                            put_str(buf, &d.attr);
                            put_str(buf, &d.detail);
                        }
                    }
                }
            }
        }
        end_frame(buf, start);
    }

    /// Decode the payload of a frame whose header carried `opcode`.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<WireResponse, WireError> {
        let mut cur = Cur::new(payload);
        let resp = match opcode {
            RESP_STARTED => WireResponse::Started {
                id: cur.string()?,
                advice: get_advice(&mut cur)?,
            },
            RESP_ADVICE => WireResponse::Advice {
                id: cur.string()?,
                advice: get_advice(&mut cur)?,
            },
            RESP_INFO => {
                let id = cur.string()?;
                let depth = cur.u64()?;
                let n = cur.count()?;
                let mut breadcrumbs = Vec::new();
                for _ in 0..n {
                    breadcrumbs.push(cur.string()?);
                }
                WireResponse::Info {
                    id,
                    depth,
                    breadcrumbs,
                    advice: get_advice(&mut cur)?,
                }
            }
            RESP_DELETED => WireResponse::Deleted,
            RESP_CACHE_STATS => {
                let (hits, misses, runs) = (cur.u64()?, cur.u64()?, cur.u64()?);
                let (evictions, entries) = (cur.u64()?, cur.u64()?);
                let capacity = match cur.u8()? {
                    0 => None,
                    1 => Some(cur.u64()?),
                    _ => return Err(WireError::BadValue("capacity tag")),
                };
                WireResponse::CacheStats(WireCacheStats {
                    hits,
                    misses,
                    runs,
                    evictions,
                    entries,
                    capacity,
                })
            }
            RESP_METRICS => WireResponse::Metrics(MetricsSnapshot {
                connections: cur.u64()?,
                requests: cur.u64()?,
                responses_2xx: cur.u64()?,
                responses_4xx: cur.u64()?,
                responses_5xx: cur.u64()?,
                analysis_rejects: cur.u64()?,
                analysis_prunes: cur.u64()?,
            }),
            RESP_HEALTH => WireResponse::Health,
            RESP_ERROR => {
                let status = cur.u16()?;
                let code = cur.string()?;
                let message = cur.string()?;
                let diagnostics = match cur.u8()? {
                    0 => None,
                    1 => {
                        let n = cur.count()?;
                        let mut diags = Vec::new();
                        for _ in 0..n {
                            diags.push(WireDiagnostic {
                                code: cur.string()?,
                                attr: cur.string()?,
                                detail: cur.string()?,
                            });
                        }
                        Some(diags)
                    }
                    _ => return Err(WireError::BadValue("diagnostics tag")),
                };
                WireResponse::Error(WireFault {
                    status,
                    code,
                    message,
                    diagnostics,
                })
            }
            other => return Err(WireError::UnknownOpcode(other)),
        };
        cur.finish()?;
        Ok(resp)
    }
}

/// The cheap decode of a response frame: status plus (for session
/// responses) the session id, skipping the advice payload wholesale.
/// This is what a load generator needs per response — full decoding is
/// for consumers that read the advice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSummary {
    /// The HTTP-equivalent status.
    pub status: u16,
    /// The session id, when the response carries one.
    pub session_id: Option<String>,
    /// `code: message` of an error frame.
    pub error: Option<String>,
}

/// Summarize a response payload without materializing it (see
/// [`WireSummary`]). Validates framing of the fields it reads; the
/// skipped advice bytes are not inspected.
pub fn summarize_response(opcode: u8, payload: &[u8]) -> Result<WireSummary, WireError> {
    let mut cur = Cur::new(payload);
    let summary = match opcode {
        RESP_STARTED => WireSummary {
            status: 201,
            session_id: Some(cur.string()?),
            error: None,
        },
        RESP_ADVICE | RESP_INFO => WireSummary {
            status: 200,
            session_id: Some(cur.string()?),
            error: None,
        },
        RESP_DELETED => WireSummary {
            status: 204,
            session_id: None,
            error: None,
        },
        RESP_CACHE_STATS | RESP_METRICS | RESP_HEALTH => WireSummary {
            status: 200,
            session_id: None,
            error: None,
        },
        RESP_ERROR => {
            let status = cur.u16()?;
            let code = cur.string()?;
            let message = cur.string()?;
            WireSummary {
                status,
                session_id: None,
                error: Some(format!("{code}: {message}")),
            }
        }
        other => return Err(WireError::UnknownOpcode(other)),
    };
    Ok(summary)
}

// ---------------------------------------------------------------------
// Server side: encoding straight from the API types (alloc-free).
// ---------------------------------------------------------------------

/// The status [`encode_api_result`] will frame for `result` (shared
/// with the metrics accounting; identical to the HTTP rendering's).
pub(crate) fn api_status(result: &Result<ApiOk, ApiError>) -> u16 {
    match result {
        Ok(ApiOk::Created { .. }) => 201,
        Ok(ApiOk::Deleted) => 204,
        Ok(_) => 200,
        Err(e) => e.status,
    }
}

/// Append one response frame for an API outcome to `buf`, allocating
/// nothing beyond `buf`'s own (reused) growth: advice strings are
/// written through `Display` straight into the buffer.
pub(crate) fn encode_api_result(buf: &mut Vec<u8>, result: &Result<ApiOk, ApiError>) {
    match result {
        Ok(ApiOk::Created { id, advice }) => {
            let start = begin_frame(buf, RESP_STARTED);
            put_str(buf, id);
            put_advice(buf, advice);
            end_frame(buf, start);
        }
        Ok(ApiOk::Advice { id, advice }) => {
            let start = begin_frame(buf, RESP_ADVICE);
            put_str(buf, id);
            put_advice(buf, advice);
            end_frame(buf, start);
        }
        Ok(ApiOk::Info {
            id,
            depth,
            breadcrumbs,
            advice,
        }) => {
            let start = begin_frame(buf, RESP_INFO);
            put_str(buf, id);
            put_u64(buf, *depth as u64);
            put_u32(buf, breadcrumbs.len() as u32);
            for b in breadcrumbs {
                put_str(buf, b);
            }
            put_advice(buf, advice);
            end_frame(buf, start);
        }
        Ok(ApiOk::Deleted) => {
            let start = begin_frame(buf, RESP_DELETED);
            end_frame(buf, start);
        }
        Ok(ApiOk::CacheStats(c)) => {
            let start = begin_frame(buf, RESP_CACHE_STATS);
            put_cache_stats(buf, c);
            end_frame(buf, start);
        }
        Ok(ApiOk::Metrics(m)) => {
            let start = begin_frame(buf, RESP_METRICS);
            put_metrics(buf, m);
            end_frame(buf, start);
        }
        Ok(ApiOk::Health) => {
            let start = begin_frame(buf, RESP_HEALTH);
            end_frame(buf, start);
        }
        Err(e) => {
            let start = begin_frame(buf, RESP_ERROR);
            put_u16(buf, e.status);
            put_str(buf, e.code);
            put_str(buf, &e.message);
            match &e.diagnostics {
                None => put_u8(buf, 0),
                Some(diags) => {
                    put_u8(buf, 1);
                    put_u32(buf, diags.len() as u32);
                    for d in diags {
                        put_str(buf, d.code.name());
                        put_str(buf, &d.attr);
                        put_str(buf, &d.detail);
                    }
                }
            }
            end_frame(buf, start);
        }
    }
}

/// Append a transport-level error frame (malformed request framing:
/// there is no request to dispatch, so this is built here, not in the
/// API layer).
fn encode_frame_error(buf: &mut Vec<u8>, err: &WireError) {
    let start = begin_frame(buf, RESP_ERROR);
    put_u16(buf, 400);
    put_str(buf, "bad_frame");
    put_display(buf, err);
    put_u8(buf, 0);
    end_frame(buf, start);
}

/// Encode an `Advice` payload straight from the advisor's types.
fn put_advice(buf: &mut Vec<u8>, advice: &Advice) {
    put_display(buf, &advice.context);
    put_u64(buf, advice.context_size as u64);
    put_u32(buf, advice.ranked.len() as u32);
    for r in &advice.ranked {
        let queries = r.segmentation.queries();
        put_u32(buf, queries.len() as u32);
        for q in queries {
            put_display(buf, q);
        }
        put_f64(buf, r.score.entropy);
        put_u64(buf, r.score.simplicity as u64);
        put_u64(buf, r.score.breadth as u64);
        put_u64(buf, r.score.depth as u64);
    }
    put_str_list(buf, &advice.trace.seeds);
    put_str_list(buf, &advice.trace.skipped);
    put_u32(buf, advice.trace.steps.len() as u32);
    for s in &advice.trace.steps {
        put_str_list(buf, &s.left_attrs);
        put_str_list(buf, &s.right_attrs);
        put_f64(buf, s.indep);
        put_u64(buf, s.depth as u64);
        put_u8(buf, u8::from(s.accepted));
    }
    put_u32(buf, advice.trace.skipped_pairs.len() as u32);
    for p in &advice.trace.skipped_pairs {
        put_str_list(buf, &p.left_attrs);
        put_str_list(buf, &p.right_attrs);
        put_f64(buf, p.indep);
    }
    put_u8(buf, encode_stop(advice.trace.stop));
}

/// Encode a decoded advice payload (the owned mirror of [`put_advice`];
/// the round-trip suites pin the two to identical bytes).
fn put_wire_advice(buf: &mut Vec<u8>, advice: &WireAdvice) {
    put_str(buf, &advice.context);
    put_u64(buf, advice.context_size);
    put_u32(buf, advice.ranked.len() as u32);
    for r in &advice.ranked {
        put_u32(buf, r.segmentation.len() as u32);
        for q in &r.segmentation {
            put_str(buf, q);
        }
        put_f64(buf, r.entropy);
        put_u64(buf, r.simplicity);
        put_u64(buf, r.breadth);
        put_u64(buf, r.depth);
    }
    put_str_list(buf, &advice.trace.seeds);
    put_str_list(buf, &advice.trace.skipped);
    put_u32(buf, advice.trace.steps.len() as u32);
    for s in &advice.trace.steps {
        put_str_list(buf, &s.left);
        put_str_list(buf, &s.right);
        put_f64(buf, s.indep);
        put_u64(buf, s.depth);
        put_u8(buf, u8::from(s.accepted));
    }
    put_u32(buf, advice.trace.skipped_pairs.len() as u32);
    for p in &advice.trace.skipped_pairs {
        put_str_list(buf, &p.left);
        put_str_list(buf, &p.right);
        put_f64(buf, p.indep);
    }
    put_u8(buf, encode_stop(advice.trace.stop));
}

fn put_cache_stats(buf: &mut Vec<u8>, c: &CacheStatsReply) {
    put_u64(buf, c.hits);
    put_u64(buf, c.misses);
    put_u64(buf, c.runs);
    put_u64(buf, c.evictions);
    put_u64(buf, c.entries);
    match c.capacity {
        None => put_u8(buf, 0),
        Some(cap) => {
            put_u8(buf, 1);
            put_u64(buf, cap);
        }
    }
}

fn put_metrics(buf: &mut Vec<u8>, m: &MetricsSnapshot) {
    put_u64(buf, m.connections);
    put_u64(buf, m.requests);
    put_u64(buf, m.responses_2xx);
    put_u64(buf, m.responses_4xx);
    put_u64(buf, m.responses_5xx);
    put_u64(buf, m.analysis_rejects);
    put_u64(buf, m.analysis_prunes);
}

fn encode_stop(stop: Option<StopReason>) -> u8 {
    match stop {
        None => 0,
        Some(StopReason::IndependenceThreshold) => 1,
        Some(StopReason::DepthLimit) => 2,
        Some(StopReason::ExhaustedCandidates) => 3,
        Some(StopReason::ComposeFailed) => 4,
    }
}

fn decode_stop(tag: u8) -> Result<Option<StopReason>, WireError> {
    Ok(match tag {
        0 => None,
        1 => Some(StopReason::IndependenceThreshold),
        2 => Some(StopReason::DepthLimit),
        3 => Some(StopReason::ExhaustedCandidates),
        4 => Some(StopReason::ComposeFailed),
        _ => return Err(WireError::BadValue("stop reason")),
    })
}

fn get_advice(cur: &mut Cur<'_>) -> Result<WireAdvice, WireError> {
    let context = cur.string()?;
    let context_size = cur.u64()?;
    let ranked_count = cur.count()?;
    let mut ranked = Vec::new();
    for _ in 0..ranked_count {
        let seg_count = cur.count()?;
        let mut segmentation = Vec::new();
        for _ in 0..seg_count {
            segmentation.push(cur.string()?);
        }
        ranked.push(WireRanked {
            segmentation,
            entropy: cur.f64()?,
            simplicity: cur.u64()?,
            breadth: cur.u64()?,
            depth: cur.u64()?,
        });
    }
    let seeds = get_str_list(cur)?;
    let skipped = get_str_list(cur)?;
    let step_count = cur.count()?;
    let mut steps = Vec::new();
    for _ in 0..step_count {
        steps.push(WireStep {
            left: get_str_list(cur)?,
            right: get_str_list(cur)?,
            indep: cur.f64()?,
            depth: cur.u64()?,
            accepted: match cur.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::BadValue("accepted flag")),
            },
        });
    }
    let pair_count = cur.count()?;
    let mut skipped_pairs = Vec::new();
    for _ in 0..pair_count {
        skipped_pairs.push(WirePair {
            left: get_str_list(cur)?,
            right: get_str_list(cur)?,
            indep: cur.f64()?,
        });
    }
    let stop = decode_stop(cur.u8()?)?;
    Ok(WireAdvice {
        context,
        context_size,
        ranked,
        trace: WireTrace {
            seeds,
            skipped,
            steps,
            skipped_pairs,
            stop,
        },
    })
}

fn get_str_list(cur: &mut Cur<'_>) -> Result<Vec<String>, WireError> {
    let n = cur.count()?;
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(cur.string()?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Primitive writers / readers.
// ---------------------------------------------------------------------

/// Append a frame header with a zero length placeholder; returns the
/// header's offset for [`end_frame`] to patch.
fn begin_frame(buf: &mut Vec<u8>, opcode: u8) -> usize {
    let start = buf.len();
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(opcode);
    buf.extend_from_slice(&[0u8; 4]);
    start
}

/// Patch the payload length of the frame opened at `start`.
fn end_frame(buf: &mut [u8], start: usize) {
    let len = (buf.len() - start - HEADER_LEN) as u32;
    buf[start + 6..start + HEADER_LEN].copy_from_slice(&len.to_le_bytes()); // lint:allow(panic) start was returned by begin_frame, so the header span exists
}

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_str_list(buf: &mut Vec<u8>, items: &[String]) {
    put_u32(buf, items.len() as u32);
    for s in items {
        put_str(buf, s);
    }
}

/// Write a `Display` value as a length-prefixed string without an
/// intermediate allocation: reserve the length slot, format straight
/// into the buffer, patch the slot.
fn put_display(buf: &mut Vec<u8>, v: &dyn std::fmt::Display) {
    let patch = buf.len();
    buf.extend_from_slice(&[0u8; 4]);
    let start = buf.len();
    // Writes into a Vec are infallible.
    let _ = write!(buf, "{v}");
    let len = (buf.len() - start) as u32;
    buf[patch..patch + 4].copy_from_slice(&len.to_le_bytes()); // lint:allow(panic) patch points at the 4-byte length slot this fn reserved
}

/// Bounds-checked cursor over one frame payload. Every read is
/// explicit-length; nothing indexes unchecked, so arbitrary byte soup
/// decodes to a [`WireError`], never a panic.
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(bytes: &'a [u8]) -> Cur<'a> {
        Cur { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// An element count: rejected up front when the payload cannot
    /// possibly hold that many elements (≥ 1 byte each), so a hostile
    /// count cannot drive a huge loop or allocation.
    fn count(&mut self) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn str_field(&mut self) -> Result<&'a str, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)
    }

    fn string(&mut self) -> Result<String, WireError> {
        Ok(self.str_field()?.to_string())
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

/// Read one frame header + payload from `r`, leaving the payload in
/// `scratch` (reused across calls — the steady-state read path
/// allocates nothing) and returning the opcode.
pub fn read_frame<R: Read>(
    r: &mut R,
    scratch: &mut Vec<u8>,
    max_payload: u32,
) -> Result<u8, WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[..4] != MAGIC {
        return Err(WireError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    if header[4] != VERSION {
        return Err(WireError::UnsupportedVersion(header[4]));
    }
    let opcode = header[5];
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > max_payload {
        return Err(WireError::FrameTooLarge {
            len,
            max: max_payload,
        });
    }
    scratch.clear();
    scratch.resize(len as usize, 0);
    r.read_exact(scratch)?;
    Ok(opcode)
}

// ---------------------------------------------------------------------
// Server: the pipelined per-connection handler.
// ---------------------------------------------------------------------

/// Serve wire frames from one connection until the client closes, the
/// read deadline passes between frames, or a malformed frame arrives
/// (answered with one error frame, then close — framing is lost).
///
/// Read and write are decoupled: this pool worker reads, decodes, and
/// dispatches; a writer thread drains a bounded in-order queue of
/// encoded frames, coalescing bursts into batched writes. Pipelined
/// clients overlap their next request with the server's previous
/// response; the queue bound (not the socket) is the backpressure.
/// Response buffers cycle back through a return channel, so the
/// steady-state request path allocates nothing.
///
/// Unlike HTTP keep-alive there is no per-connection request budget: a
/// budget would have to fail frames the client already pipelined out.
/// The deadline still reaps idle or trickling connections; see the
/// wire-format ADR for the trust tradeoff.
pub(crate) fn handle_wire_connection(stream: TcpStream, state: &ServerState, timeout: Duration) {
    use std::io::BufRead;
    let reader = match stream.try_clone() {
        Ok(s) => DeadlineStream::new(s, timeout),
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader);
    let writer = stream;
    let _ = writer.set_write_timeout(Some(timeout));

    let (resp_tx, resp_rx) = mpsc::sync_channel::<Vec<u8>>(PIPELINE_DEPTH);
    let (recycle_tx, recycle_rx) = mpsc::channel::<Vec<u8>>();
    let writer_thread = std::thread::spawn(move || {
        let mut writer = writer;
        let mut batch: Vec<u8> = Vec::new();
        while let Ok(frame) = resp_rx.recv() {
            batch.clear();
            batch.extend_from_slice(&frame);
            let _ = recycle_tx.send(frame);
            // Coalesce whatever else is already queued into this write.
            while batch.len() < WRITE_BATCH_BYTES {
                match resp_rx.try_recv() {
                    Ok(f) => {
                        batch.extend_from_slice(&f);
                        let _ = recycle_tx.send(f);
                    }
                    Err(_) => break,
                }
            }
            if writer.write_all(&batch).is_err() {
                // Transport gone: draining stops; the reader notices
                // via its send failing (receiver dropped with us).
                return;
            }
        }
    });

    let mut scratch: Vec<u8> = Vec::new();
    loop {
        // Each frame gets a fresh whole-frame deadline; idle time
        // between frames counts against it too.
        reader.get_mut().rearm(timeout);
        match reader.fill_buf() {
            Ok([]) => break, // clean EOF between frames
            Ok(_) => {}      // next frame has begun
            Err(_) => break, // idle deadline or transport error
        }
        let decoded = read_frame(&mut reader, &mut scratch, MAX_REQUEST_PAYLOAD)
            .and_then(|opcode| WireRequest::decode(opcode, &scratch));
        let mut buf = recycle_rx.try_recv().unwrap_or_default();
        buf.clear();
        match decoded {
            Ok(req) => {
                let result = dispatch(state, &req);
                state.metrics().record_response(api_status(&result));
                encode_api_result(&mut buf, &result);
                if resp_tx.send(buf).is_err() {
                    break; // writer died (transport error)
                }
            }
            Err(err) => {
                // A malformed frame poisons the framing: answer with
                // one error frame and close, exactly like HTTP parse
                // errors.
                state.metrics().record_response(400);
                encode_frame_error(&mut buf, &err);
                let _ = resp_tx.send(buf);
                break;
            }
        }
    }
    drop(resp_tx);
    let _ = writer_thread.join();
}

/// Dispatch one decoded request through the shared API layer — the same
/// functions the HTTP router calls, so both listeners' behaviour is one
/// implementation.
fn dispatch(state: &ServerState, req: &WireRequest<'_>) -> Result<ApiOk, ApiError> {
    match req {
        WireRequest::Start { body } => api_create_session(state, body),
        WireRequest::Inspect { id } => api_session_info(state, id),
        WireRequest::Drill { id, rank, seg } => api_drill(state, id, *rank as usize, *seg as usize),
        WireRequest::Back { id } => api_back(state, id),
        WireRequest::Delete { id } => api_delete_session(state, id),
        WireRequest::CacheStats => Ok(api_cache_stats(state)),
        WireRequest::Metrics => Ok(api_metrics(state)),
        WireRequest::Health => Ok(ApiOk::Health),
    }
}

// ---------------------------------------------------------------------
// Client side.
// ---------------------------------------------------------------------

/// One binary-protocol connection: socket + reusable encode/decode
/// buffers. Supports pipelining directly — [`stage`](WireConn::stage)
/// any number of requests, [`flush`](WireConn::flush) them in one
/// write, then receive responses in request order.
pub struct WireConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    encode: Vec<u8>,
    scratch: Vec<u8>,
}

impl WireConn {
    /// Connect with the same deadline and `TCP_NODELAY` semantics as
    /// the HTTP [`crate::Client`] (identical socket setup, shared
    /// code path).
    pub fn connect(addr: &SocketAddr, config: &ClientConfig) -> std::io::Result<WireConn> {
        let stream = crate::client::connect(addr, config)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(WireConn {
            reader,
            writer: stream,
            encode: Vec::new(),
            scratch: Vec::new(),
        })
    }

    /// Queue one request frame in the encode buffer without writing.
    pub fn stage(&mut self, req: &WireRequest<'_>) {
        req.encode(&mut self.encode);
    }

    /// Number of bytes currently staged.
    pub fn staged_bytes(&self) -> usize {
        self.encode.len()
    }

    /// Write all staged frames in one syscall and clear the buffer.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.encode.is_empty() {
            return Ok(());
        }
        let res = self.writer.write_all(&self.encode);
        self.encode.clear();
        res
    }

    /// Stage + flush one request.
    pub fn send(&mut self, req: &WireRequest<'_>) -> std::io::Result<()> {
        self.stage(req);
        self.flush()
    }

    /// Read and fully decode the next response frame.
    pub fn recv(&mut self) -> Result<WireResponse, WireError> {
        let opcode = read_frame(&mut self.reader, &mut self.scratch, MAX_RESPONSE_PAYLOAD)?;
        WireResponse::decode(opcode, &self.scratch)
    }

    /// Read the next response frame and decode only its envelope
    /// (status + session id), skipping advice payloads — the cheap path
    /// for load generation.
    pub fn recv_summary(&mut self) -> Result<WireSummary, WireError> {
        let opcode = read_frame(&mut self.reader, &mut self.scratch, MAX_RESPONSE_PAYLOAD)?;
        summarize_response(opcode, &self.scratch)
    }
}

/// A pooled binary-protocol client mirroring the HTTP [`crate::Client`]
/// semantics: one persistent connection, reconnect-and-retry-once when
/// a *reused* connection fails (the server may have legitimately reaped
/// it between requests), and request/connect counters.
pub struct WireClient {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<WireConn>,
    requests: u64,
    connects: u64,
}

impl WireClient {
    /// Client with default [`ClientConfig`] deadlines.
    pub fn new(addr: SocketAddr) -> WireClient {
        WireClient::with_config(addr, ClientConfig::default())
    }

    /// Client with explicit deadlines/options.
    pub fn with_config(addr: SocketAddr, config: ClientConfig) -> WireClient {
        WireClient {
            addr,
            config,
            conn: None,
            requests: 0,
            connects: 0,
        }
    }

    /// Requests attempted so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// TCP connections opened so far (1 for a fully reused connection;
    /// each server-side close or transport error adds one).
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Issue one request over the persistent connection.
    ///
    /// A failure on a *reused* connection is retried once on a fresh
    /// one — the same policy as the HTTP client, for the same reason:
    /// the server closing an idle connection races with the next
    /// request, and is only observable as a failure on use.
    pub fn request(&mut self, req: &WireRequest<'_>) -> Result<WireResponse, WireError> {
        let fresh = self.conn.is_none();
        match self.exchange(req) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.conn = None;
                if fresh {
                    return Err(e);
                }
                match self.exchange(req) {
                    Ok(resp) => Ok(resp),
                    Err(e2) => {
                        self.conn = None;
                        Err(e2)
                    }
                }
            }
        }
    }

    fn exchange(&mut self, req: &WireRequest<'_>) -> Result<WireResponse, WireError> {
        if self.conn.is_none() {
            self.conn = Some(WireConn::connect(&self.addr, &self.config)?);
            self.connects += 1;
        }
        let Some(conn) = self.conn.as_mut() else {
            return Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection setup failed",
            )));
        };
        self.requests += 1;
        conn.send(req)?;
        conn.recv()
    }
}

/// One-shot helper: connect, issue one request, return the response.
pub fn wire_request(
    addr: impl std::net::ToSocketAddrs,
    req: &WireRequest<'_>,
) -> Result<WireResponse, WireError> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
    let mut conn = WireConn::connect(&addr, &ClientConfig::default())?;
    conn.send(req)?;
    conn.recv()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: WireRequest<'_>) {
        let mut buf = Vec::new();
        req.encode(&mut buf);
        assert_eq!(&buf[..4], &MAGIC);
        assert_eq!(buf[4], VERSION);
        let len = u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]) as usize;
        assert_eq!(buf.len(), HEADER_LEN + len);
        let decoded = WireRequest::decode(buf[5], &buf[HEADER_LEN..]).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn request_frames_round_trip() {
        roundtrip_request(WireRequest::Start {
            body: "(kind: , size: )",
        });
        roundtrip_request(WireRequest::Start { body: "" });
        roundtrip_request(WireRequest::Inspect { id: "s1" });
        roundtrip_request(WireRequest::Drill {
            id: "s42",
            rank: 3,
            seg: u32::MAX,
        });
        roundtrip_request(WireRequest::Back { id: "s1" });
        roundtrip_request(WireRequest::Delete {
            id: "sω-ünïcode"
        });
        roundtrip_request(WireRequest::CacheStats);
        roundtrip_request(WireRequest::Metrics);
        roundtrip_request(WireRequest::Health);
    }

    #[test]
    fn response_frames_round_trip_via_owned_encoder() {
        let advice = WireAdvice {
            context: "(kind: , size: )".to_string(),
            context_size: 48,
            ranked: vec![WireRanked {
                segmentation: vec!["(kind: {even})".to_string(), "(kind: {odd})".to_string()],
                entropy: std::f64::consts::LN_2,
                simplicity: 1,
                breadth: 1,
                depth: 2,
            }],
            trace: WireTrace {
                seeds: vec!["kind".to_string()],
                skipped: vec!["size".to_string()],
                steps: vec![WireStep {
                    left: vec!["kind".to_string()],
                    right: vec!["size".to_string()],
                    indep: 0.25,
                    depth: 4,
                    accepted: false,
                }],
                skipped_pairs: vec![WirePair {
                    left: vec!["a".to_string()],
                    right: vec!["b".to_string()],
                    indep: f64::from_bits(0x7ff8_0000_0000_0001), // a NaN payload
                }],
                stop: Some(StopReason::IndependenceThreshold),
            },
        };
        let responses = vec![
            WireResponse::Started {
                id: "s1".to_string(),
                advice: advice.clone(),
            },
            WireResponse::Advice {
                id: "s1".to_string(),
                advice: advice.clone(),
            },
            WireResponse::Info {
                id: "s1".to_string(),
                depth: 2,
                breadcrumbs: vec!["(kind: )".to_string(), "(kind: {even})".to_string()],
                advice,
            },
            WireResponse::Deleted,
            WireResponse::CacheStats(WireCacheStats {
                hits: 1,
                misses: 2,
                runs: 3,
                evictions: 0,
                entries: 4,
                capacity: Some(1024),
            }),
            WireResponse::CacheStats(WireCacheStats {
                hits: 0,
                misses: 0,
                runs: 0,
                evictions: 0,
                entries: 0,
                capacity: None,
            }),
            WireResponse::Metrics(MetricsSnapshot {
                connections: 1,
                requests: 2,
                responses_2xx: 3,
                responses_4xx: 4,
                responses_5xx: 5,
                analysis_rejects: 6,
                analysis_prunes: 7,
            }),
            WireResponse::Health,
            WireResponse::Error(WireFault {
                status: 422,
                code: "invalid_context".to_string(),
                message: "nope".to_string(),
                diagnostics: Some(vec![WireDiagnostic {
                    code: "unknown_attribute".to_string(),
                    attr: "nope".to_string(),
                    detail: "no such column".to_string(),
                }]),
            }),
            WireResponse::Error(WireFault {
                status: 404,
                code: "no_such_session".to_string(),
                message: "no session \"s9\"".to_string(),
                diagnostics: None,
            }),
        ];
        for resp in responses {
            let mut one = Vec::new();
            resp.encode(&mut one);
            let decoded = WireResponse::decode(one[5], &one[HEADER_LEN..]).unwrap();
            // Bitwise identity, NaN included: compare re-encoded bytes.
            let mut two = Vec::new();
            decoded.encode(&mut two);
            assert_eq!(one, two);
            assert_eq!(decoded.status(), resp.status());
        }
    }

    #[test]
    fn malformed_frames_yield_typed_errors() {
        // Bad magic.
        let mut bad = Vec::new();
        WireRequest::Health.encode(&mut bad);
        bad[0] = b'X';
        let err = read_frame(&mut bad.as_slice(), &mut Vec::new(), MAX_REQUEST_PAYLOAD);
        assert!(matches!(err, Err(WireError::BadMagic(_))), "{err:?}");
        // Bad version.
        let mut bad = Vec::new();
        WireRequest::Health.encode(&mut bad);
        bad[4] = 99;
        let err = read_frame(&mut bad.as_slice(), &mut Vec::new(), MAX_REQUEST_PAYLOAD);
        assert!(
            matches!(err, Err(WireError::UnsupportedVersion(99))),
            "{err:?}"
        );
        // Oversized declared payload.
        let mut bad = Vec::new();
        WireRequest::Health.encode(&mut bad);
        bad[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut bad.as_slice(), &mut Vec::new(), MAX_REQUEST_PAYLOAD);
        assert!(
            matches!(err, Err(WireError::FrameTooLarge { .. })),
            "{err:?}"
        );
        // Truncated transport.
        let mut ok = Vec::new();
        WireRequest::Start { body: "(kind: )" }.encode(&mut ok);
        let err = read_frame(
            &mut &ok[..ok.len() - 3],
            &mut Vec::new(),
            MAX_REQUEST_PAYLOAD,
        );
        assert!(matches!(err, Err(WireError::Io(_))), "{err:?}");
        // Unknown opcode.
        let err = WireRequest::decode(0x7f, &[]);
        assert!(
            matches!(err, Err(WireError::UnknownOpcode(0x7f))),
            "{err:?}"
        );
        // Truncated payload fields.
        let err = WireRequest::decode(OP_DRILL, &[2, 0, 0, 0, b's', b'1']);
        assert!(matches!(err, Err(WireError::Truncated)), "{err:?}");
        // Trailing bytes.
        let err = WireRequest::decode(OP_HEALTH, &[0]);
        assert!(matches!(err, Err(WireError::TrailingBytes)), "{err:?}");
        // Bad UTF-8.
        let err = WireRequest::decode(OP_INSPECT, &[2, 0, 0, 0, 0xff, 0xfe]);
        assert!(matches!(err, Err(WireError::BadUtf8)), "{err:?}");
    }

    #[test]
    fn summaries_match_full_decodes() {
        let mut buf = Vec::new();
        WireResponse::Started {
            id: "s7".to_string(),
            advice: WireAdvice {
                context: "(kind: )".to_string(),
                context_size: 10,
                ranked: vec![],
                trace: WireTrace::default(),
            },
        }
        .encode(&mut buf);
        let summary = summarize_response(buf[5], &buf[HEADER_LEN..]).unwrap();
        assert_eq!(summary.status, 201);
        assert_eq!(summary.session_id.as_deref(), Some("s7"));
        assert_eq!(summary.error, None);

        let mut buf = Vec::new();
        WireResponse::Error(WireFault {
            status: 409,
            code: "session_not_started".to_string(),
            message: "not started".to_string(),
            diagnostics: None,
        })
        .encode(&mut buf);
        let summary = summarize_response(buf[5], &buf[HEADER_LEN..]).unwrap();
        assert_eq!(summary.status, 409);
        assert_eq!(
            summary.error.as_deref(),
            Some("session_not_started: not started")
        );
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        // An Info frame claiming 4 billion breadcrumbs in a tiny
        // payload must fail fast, not loop or allocate.
        let mut payload = Vec::new();
        put_str(&mut payload, "s1");
        put_u64(&mut payload, 1);
        put_u32(&mut payload, u32::MAX); // breadcrumb count
        let err = WireResponse::decode(RESP_INFO, &payload);
        assert!(matches!(err, Err(WireError::Truncated)), "{err:?}");
    }
}
