//! Socket-level tests of the serving path the load harness stands on:
//! the persistent [`Client`] reusing one keep-alive connection across
//! many requests without desync, `TCP_NODELAY` keeping small pipelined
//! exchanges inside an interactive latency budget, and client-side
//! deadlines turning a stalled server into an error instead of a hang.

use charles_serve::{
    http_request, http_request_timeout, Client, ClientConfig, ServeConfig, Server,
};
use charles_store::{Backend, DataType, TableBuilder, Value};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn backend() -> Arc<dyn Backend> {
    let mut b = TableBuilder::new("t");
    b.add_column("kind", DataType::Str)
        .add_column("size", DataType::Int);
    for i in 0..60i64 {
        let kind = match i % 3 {
            0 => "alpha",
            1 => "beta",
            _ => "gamma",
        };
        b.push_row(vec![Value::str(kind), Value::Int(i)]).unwrap();
    }
    Arc::new(b.finish())
}

fn spawn_server(config: ServeConfig) -> charles_serve::ServerHandle {
    Server::bind("127.0.0.1:0", backend(), config)
        .unwrap()
        .spawn()
        .unwrap()
}

#[test]
fn keep_alive_client_reuses_one_connection_for_k_requests() {
    // K requests through the pooled client must produce K in-order
    // responses on ONE TCP connection, each framed with the right
    // Connection: header — any desync (stale bytes, misattributed
    // bodies) would surface as a wrong status or unparseable payload.
    let handle = spawn_server(ServeConfig::default());
    let mut client = Client::new(handle.addr(), ClientConfig::default()).unwrap();

    let resp = client
        .request("POST", "/session", "(kind: , size: )")
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body);
    assert!(resp.keep_alive);
    assert!(
        resp.body.starts_with("{\"session\":\"s1\""),
        "{}",
        resp.body
    );

    const K: usize = 24;
    for i in 0..K {
        // Mix routes so each response has a distinct, checkable shape.
        match i % 3 {
            0 => {
                let r = client.request("GET", "/session/s1", "").unwrap();
                assert_eq!(r.status, 200, "{}", r.body);
                assert!(r.body.contains("\"breadcrumbs\""), "{}", r.body);
            }
            1 => {
                let r = client.request("GET", "/healthz", "").unwrap();
                assert_eq!((r.status, r.body.as_str()), (200, "{\"ok\":true}"));
            }
            _ => {
                let r = client.request("GET", "/cache/stats", "").unwrap();
                assert_eq!(r.status, 200, "{}", r.body);
                assert!(r.body.contains("\"runs\":"), "{}", r.body);
            }
        }
    }
    assert_eq!(client.requests(), K as u64 + 1);
    assert_eq!(client.connects(), 1, "all requests on one connection");
    let metrics = handle.metrics().snapshot();
    assert_eq!(metrics.connections, 1);
    assert_eq!(metrics.requests, K as u64 + 1);
    assert_eq!(metrics.responses_2xx, K as u64 + 1);
    handle.shutdown();
}

#[test]
fn client_reconnects_when_the_request_budget_closes_the_connection() {
    // The server announces `Connection: close` on the budget's last
    // response; the client must drop its socket and transparently
    // reconnect — with no failed or lost requests.
    let handle = spawn_server(ServeConfig {
        max_requests_per_connection: 3,
        ..ServeConfig::default()
    });
    let mut client = Client::new(handle.addr(), ClientConfig::default()).unwrap();
    for _ in 0..12 {
        let r = client.request("GET", "/healthz", "").unwrap();
        assert_eq!(r.status, 200);
    }
    assert_eq!(client.requests(), 12);
    assert_eq!(
        client.connects(),
        4,
        "12 requests / budget 3 = 4 connections"
    );
    handle.shutdown();
}

#[test]
fn pipelined_small_responses_fit_an_interactive_latency_budget() {
    // The Nagle regression pin: without TCP_NODELAY on both ends, each
    // tiny request/response on a reused connection can stall ~40 ms
    // waiting out the peer's delayed-ACK timer — 100 sequential
    // exchanges would take > 4 s. With nodelay set, loopback round
    // trips are tens of microseconds; even a heavily loaded CI box
    // stays far under the budget.
    let handle = spawn_server(ServeConfig::default());
    let mut client = Client::new(handle.addr(), ClientConfig::default()).unwrap();
    const N: u32 = 100;
    let start = Instant::now();
    for _ in 0..N {
        let r = client.request("GET", "/healthz", "").unwrap();
        assert_eq!(r.status, 200);
    }
    let elapsed = start.elapsed();
    assert_eq!(client.connects(), 1);
    assert!(
        elapsed < Duration::from_secs(2),
        "{N} keep-alive round trips took {elapsed:?} — Nagle/delayed-ACK stalls are back"
    );
    handle.shutdown();
}

#[test]
fn one_shot_helper_times_out_on_a_silent_server() {
    // A listener that accepts and never answers: the deadline-carrying
    // helpers must give up within the timeout instead of hanging
    // forever (the original client read to EOF with no deadline).
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || {
        // Accept and park the connections until the test ends.
        let mut held = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            held.push(stream);
            if held.len() >= 2 {
                break;
            }
        }
        std::thread::sleep(Duration::from_secs(2));
        drop(held);
    });

    let start = Instant::now();
    let err = http_request_timeout(addr, "GET", "/healthz", "", Duration::from_millis(200))
        .expect_err("silent server must not yield a response");
    let elapsed = start.elapsed();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
        ),
        "unexpected error: {err:?}"
    );
    assert!(elapsed < Duration::from_secs(1), "hung for {elapsed:?}");

    // The pooled client observes the same deadline on a fresh
    // connection (no silent retry loop).
    let mut client =
        Client::new(addr, ClientConfig::with_timeout(Duration::from_millis(200))).unwrap();
    let start = Instant::now();
    let err = client
        .request("GET", "/healthz", "")
        .expect_err("silent server must time the pooled client out too");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
        ),
        "unexpected error: {err:?}"
    );
    assert!(start.elapsed() < Duration::from_secs(1));
    hold.join().unwrap();
}

#[test]
fn shutdown_with_idle_keep_alive_connections_is_fast() {
    // The shutdown-latency regression the load harness exposed: with a
    // client connection parked idle in keep-alive, stopping the server
    // used to block on the worker pool until that connection's whole
    // read deadline (10 s default) expired. Shutdown now force-closes
    // live sockets, so it is bounded by in-flight work only.
    let handle = spawn_server(ServeConfig::default());
    let mut client = Client::new(handle.addr(), ClientConfig::default()).unwrap();
    let r = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(r.status, 200);
    assert!(r.keep_alive, "connection must be parked in keep-alive");
    let start = Instant::now();
    handle.shutdown(); // client still holds its idle connection
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "shutdown stalled {:?} on an idle keep-alive connection",
        start.elapsed()
    );
}

#[test]
fn one_shot_requests_still_work_end_to_end() {
    // The pre-existing helper keeps its contract (status + body) with
    // deadlines now applied underneath.
    let handle = spawn_server(ServeConfig::default());
    let (status, body) =
        http_request(handle.addr(), "POST", "/session", "(kind: , size: )").unwrap();
    assert_eq!(status, 201, "{body}");
    let (status, body) = http_request(handle.addr(), "GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"connections\":"), "{body}");
    assert!(body.contains("\"responses_2xx\":"), "{body}");
    handle.shutdown();
}
