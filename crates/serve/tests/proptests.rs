//! Protocol property tests: the JSON wire format round-trips through an
//! independent test-side decoder, and the HTTP request parser rejects
//! malformed input without ever panicking.
//!
//! Failing seeds are pinned in `proptest-regressions/proptests.txt`,
//! matching the store/sdl convention.

use charles_core::hbcuts::{ComposeStep, SkippedPair, StopReason, Trace};
use charles_core::{Advice, Ranked, Score};
use charles_sdl::{Constraint, Predicate, Query, Segmentation};
use charles_serve::http::{parse_request, HttpError, MAX_BODY_BYTES};
use charles_serve::json::{encode_advice, json_f64, json_string};
use charles_store::Value;
use proptest::prelude::*;
use std::io::Cursor;

// ---------------------------------------------------------------------
// A minimal test-side JSON decoder (independent of the encoder).
// Numbers are kept as their raw tokens so re-encoding is lexically
// faithful without relying on float precision.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Re-encode with the same conventions as the production encoder:
    /// no whitespace, fixed field order (preserved from decode), raw
    /// number tokens, escaped strings.
    fn encode(&self) -> String {
        match self {
            Json::Null => "null".into(),
            Json::Bool(b) => b.to_string(),
            Json::Num(tok) => tok.clone(),
            Json::Str(s) => json_string(s),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::encode).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}:{}", json_string(k), v.encode()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn decode(text: &'a str) -> Result<Json, String> {
        let mut d = Decoder {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = d.value()?;
        d.skip_ws();
        if d.pos != d.bytes.len() {
            return Err(format!("trailing bytes at {}", d.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at {}, found {:?}",
                expected as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("short \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("surrogate in \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[start..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("empty char")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        // The token must be a valid finite float.
        let parsed: f64 = tok.parse().map_err(|_| format!("bad number {tok:?}"))?;
        if !parsed.is_finite() {
            return Err(format!("non-finite number {tok:?}"));
        }
        Ok(Json::Num(tok.to_string()))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Advice-shaped generators over the sdl constraint vocabulary.

fn arb_constraint() -> impl Strategy<Value = Constraint> {
    let names = ["fluit", "jacht", "pinas", "de lange", "o'neill"];
    prop_oneof![
        Just(Constraint::Any),
        (-500i64..500, 0i64..400).prop_map(|(lo, w)| {
            Constraint::range(Value::Int(lo), Value::Int(lo + w)).expect("lo ≤ hi")
        }),
        (any::<f64>(), 0.0f64..100.0).prop_map(|(lo, w)| {
            let lo = (lo % 1e6) / 1e3;
            Constraint::range_with(Value::Float(lo), Value::Float(lo + w + 0.5), false)
                .expect("lo < hi")
        }),
        proptest::collection::btree_set(0usize..names.len(), 1..4).prop_map(move |idx| {
            Constraint::set(idx.into_iter().map(|i| Value::str(names[i])).collect())
                .expect("non-empty")
        }),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    let attrs = ["alpha", "béta", "gamma delta", "d\"quote", "e\\slash"];
    proptest::collection::btree_set(0usize..attrs.len(), 1..4).prop_map(move |idx| {
        let preds: Vec<Predicate> = idx
            .into_iter()
            .map(|i| Predicate::new(attrs[i], Constraint::Any))
            .collect();
        Query::new(preds).expect("distinct attrs")
    })
}

fn arb_scored_query() -> impl Strategy<Value = (Query, Constraint)> {
    (arb_query(), arb_constraint())
}

fn arb_advice() -> impl Strategy<Value = Advice> {
    (
        arb_scored_query(),
        0usize..1_000_000,
        proptest::collection::vec((arb_scored_query(), any::<f64>(), 0usize..20), 0..5),
        proptest::collection::vec((any::<f64>(), 0usize..16, any::<bool>()), 0..4),
        0usize..5,
    )
        .prop_map(
            |((ctx, ctx_c), context_size, ranked_seed, steps_seed, stop_pick)| {
                let attrs: Vec<String> = ctx.attributes().iter().map(|a| a.to_string()).collect();
                let context = match ctx.refined(&attrs[0], ctx_c) {
                    Some(q) => q,
                    None => ctx.clone(),
                };
                let ranked: Vec<Ranked> = ranked_seed
                    .into_iter()
                    .map(|((q, c), entropy, breadth)| {
                        let seg_q = q.refined("omega", c).unwrap_or(q);
                        Ranked {
                            segmentation: Segmentation::new(vec![seg_q.clone(), seg_q]),
                            score: Score {
                                entropy,
                                simplicity: breadth % 7,
                                breadth,
                                depth: 2,
                            },
                        }
                    })
                    .collect();
                let steps: Vec<ComposeStep> = steps_seed
                    .into_iter()
                    .map(|(indep, depth, accepted)| ComposeStep {
                        left_attrs: attrs.clone(),
                        right_attrs: vec!["tail\nattr".to_string()],
                        indep,
                        depth,
                        accepted,
                    })
                    .collect();
                let stop = match stop_pick {
                    0 => None,
                    1 => Some(StopReason::IndependenceThreshold),
                    2 => Some(StopReason::DepthLimit),
                    3 => Some(StopReason::ExhaustedCandidates),
                    _ => Some(StopReason::ComposeFailed),
                };
                Advice {
                    context,
                    context_size,
                    ranked,
                    trace: Trace {
                        seeds: attrs.clone(),
                        skipped: vec!["control\u{1}char".to_string()],
                        steps,
                        skipped_pairs: vec![SkippedPair {
                            left_attrs: attrs,
                            right_attrs: vec!["quote\"attr".to_string()],
                            indep: 0.5,
                        }],
                        stop,
                    },
                    backend_ops: Default::default(),
                    cache: Default::default(),
                }
            },
        )
}

// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn advice_json_round_trips_through_the_decoder(advice in arb_advice()) {
        let encoded = encode_advice(&advice);
        let decoded = Decoder::decode(&encoded)
            .unwrap_or_else(|e| panic!("decode failed: {e}\npayload: {encoded}"));
        // Lexical fidelity: re-encoding the decoded tree reproduces the
        // exact bytes (field order, number tokens, escapes).
        prop_assert_eq!(decoded.encode(), encoded.clone());
        // Structural fidelity: the key fields carry the source values.
        prop_assert_eq!(
            decoded.get("context"),
            Some(&Json::Str(advice.context.to_string()))
        );
        prop_assert_eq!(
            decoded.get("context_size"),
            Some(&Json::Num(advice.context_size.to_string()))
        );
        let Some(Json::Arr(ranked)) = decoded.get("ranked") else {
            return Err(TestCaseError::fail("ranked missing"));
        };
        prop_assert_eq!(ranked.len(), advice.ranked.len());
        for (got, want) in ranked.iter().zip(&advice.ranked) {
            let Some(Json::Arr(seg)) = got.get("segmentation") else {
                return Err(TestCaseError::fail("segmentation missing"));
            };
            prop_assert_eq!(seg.len(), want.segmentation.depth());
            // Entropy round-trips to the exact bits when finite.
            let Some(score) = got.get("score") else {
                return Err(TestCaseError::fail("score missing"));
            };
            match score.get("entropy") {
                Some(Json::Num(tok)) => {
                    let parsed: f64 = tok.parse().expect("validated by decoder");
                    prop_assert_eq!(parsed.to_bits(), want.score.entropy.to_bits());
                }
                Some(Json::Null) => prop_assert!(!want.score.entropy.is_finite()),
                other => return Err(TestCaseError::fail(format!("bad entropy {other:?}"))),
            }
        }
        let Some(trace) = decoded.get("trace") else {
            return Err(TestCaseError::fail("trace missing"));
        };
        let Some(Json::Arr(steps)) = trace.get("steps") else {
            return Err(TestCaseError::fail("steps missing"));
        };
        prop_assert_eq!(steps.len(), advice.trace.steps.len());
    }

    #[test]
    fn json_f64_round_trips_bitwise(v in any::<f64>()) {
        let s = json_f64(v);
        if v.is_finite() {
            prop_assert_eq!(s.parse::<f64>().unwrap().to_bits(), v.to_bits(), "{}", s);
        } else {
            prop_assert_eq!(s, "null");
        }
    }

    #[test]
    fn json_string_round_trips(s in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Arbitrary (lossy-decoded) text, including controls and quotes.
        let text = String::from_utf8_lossy(&s).to_string();
        let encoded = json_string(&text);
        let mut d = Decoder { bytes: encoded.as_bytes(), pos: 0 };
        let decoded = d.string().unwrap_or_else(|e| panic!("{e}: {encoded}"));
        prop_assert_eq!(d.pos, encoded.len());
        prop_assert_eq!(decoded, text);
    }

    #[test]
    fn request_parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // Whatever arrives on the socket, the parser returns — it never
        // panics and never reads unboundedly.
        let _ = parse_request(&mut Cursor::new(bytes));
    }

    #[test]
    fn request_parser_never_panics_on_structured_garbage(
        method in "[A-Za-z]{0,8}",
        path in "[ -~]{0,24}",
        version in "[ -~]{0,12}",
        header in "[ -~]{0,32}",
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut req = format!("{method} {path} {version}\r\n{header}\r\n\r\n").into_bytes();
        req.extend(&body);
        let _ = parse_request(&mut Cursor::new(req));
    }

    #[test]
    fn request_parser_rejects_bad_method_path_and_length(
        method in "[a-z]{1,6}",
        length in "[A-Za-z]{1,6}",
        huge in (MAX_BODY_BYTES as u64 + 1)..u64::MAX / 2,
    ) {
        // Lower-case methods are not GET/POST/DELETE.
        let req = format!("{method} / HTTP/1.1\r\n\r\n");
        prop_assert!(matches!(
            parse_request(&mut Cursor::new(req.into_bytes())),
            Err(HttpError::UnsupportedMethod(_))
        ));
        // Paths must be absolute.
        let req = b"GET relative HTTP/1.1\r\n\r\n".to_vec();
        prop_assert!(matches!(
            parse_request(&mut Cursor::new(req)),
            Err(HttpError::BadRequestLine(_))
        ));
        // Non-numeric and oversized Content-Length values.
        let req = format!("POST / HTTP/1.1\r\nContent-Length: {length}\r\n\r\n");
        prop_assert!(matches!(
            parse_request(&mut Cursor::new(req.into_bytes())),
            Err(HttpError::BadContentLength(_))
        ));
        let req = format!("POST / HTTP/1.1\r\nContent-Length: {huge}\r\n\r\n");
        prop_assert!(matches!(
            parse_request(&mut Cursor::new(req.into_bytes())),
            Err(HttpError::BodyTooLarge(_)) | Err(HttpError::BadContentLength(_))
        ));
    }
}
