//! Binary wire-protocol property tests, mirroring the JSON suite in
//! `tests/proptests.rs`: arbitrary byte soup decodes to a typed error
//! (never a panic), encode→decode is identity including bitwise f64
//! advice payloads, truncated frames are detected, and the binary
//! advice rendering agrees byte-for-byte with the JSON encoder.
//!
//! Failing seeds are pinned in `proptest-regressions/wire_proptests.txt`,
//! matching the store/sdl convention.

use charles_core::hbcuts::{ComposeStep, SkippedPair, StopReason, Trace};
use charles_core::{Advice, Ranked, Score};
use charles_sdl::{Constraint, Predicate, Query, Segmentation};
use charles_serve::json::encode_advice;
use charles_serve::wire::{
    read_frame, summarize_response, WireAdvice, WireCacheStats, WireDiagnostic, WireError,
    WireFault, WirePair, WireRanked, WireRequest, WireResponse, WireStep, WireTrace, HEADER_LEN,
    MAGIC, MAX_REQUEST_PAYLOAD, MAX_RESPONSE_PAYLOAD, VERSION,
};
use charles_serve::MetricsSnapshot;
use charles_store::Value;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generators. The advice generator follows `tests/proptests.rs`, with
// one deliberate difference: floats include NaNs (with payloads),
// infinities and -0.0, because the binary codec ships verbatim bits and
// must round-trip all of them.

/// Any f64 bit pattern class: finite magnitudes, ±∞, NaN (quiet and
/// payload-carrying), negative zero.
fn arb_bits_f64() -> impl Strategy<Value = f64> {
    (any::<f64>(), 0u8..10).prop_map(|(v, pick)| match pick {
        0 => f64::NAN,
        1 => f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => -0.0,
        _ => v,
    })
}

fn arb_constraint() -> impl Strategy<Value = Constraint> {
    let names = ["fluit", "jacht", "pinas", "de lange", "o'neill"];
    prop_oneof![
        Just(Constraint::Any),
        (-500i64..500, 0i64..400).prop_map(|(lo, w)| {
            Constraint::range(Value::Int(lo), Value::Int(lo + w)).expect("lo ≤ hi")
        }),
        proptest::collection::btree_set(0usize..names.len(), 1..4).prop_map(move |idx| {
            Constraint::set(idx.into_iter().map(|i| Value::str(names[i])).collect())
                .expect("non-empty")
        }),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    let attrs = ["alpha", "béta", "gamma delta", "d\"quote", "e\\slash"];
    proptest::collection::btree_set(0usize..attrs.len(), 1..4).prop_map(move |idx| {
        let preds: Vec<Predicate> = idx
            .into_iter()
            .map(|i| Predicate::new(attrs[i], Constraint::Any))
            .collect();
        Query::new(preds).expect("distinct attrs")
    })
}

fn arb_advice() -> impl Strategy<Value = Advice> {
    (
        (arb_query(), arb_constraint()),
        0usize..1_000_000,
        proptest::collection::vec(
            ((arb_query(), arb_constraint()), arb_bits_f64(), 0usize..20),
            0..5,
        ),
        proptest::collection::vec((arb_bits_f64(), 0usize..16, any::<bool>()), 0..4),
        0usize..5,
    )
        .prop_map(
            |((ctx, ctx_c), context_size, ranked_seed, steps_seed, stop_pick)| {
                let attrs: Vec<String> = ctx.attributes().iter().map(|a| a.to_string()).collect();
                let context = match ctx.refined(&attrs[0], ctx_c) {
                    Some(q) => q,
                    None => ctx.clone(),
                };
                let ranked: Vec<Ranked> = ranked_seed
                    .into_iter()
                    .map(|((q, c), entropy, breadth)| {
                        let seg_q = q.refined("omega", c).unwrap_or(q);
                        Ranked {
                            segmentation: Segmentation::new(vec![seg_q.clone(), seg_q]),
                            score: Score {
                                entropy,
                                simplicity: breadth % 7,
                                breadth,
                                depth: 2,
                            },
                        }
                    })
                    .collect();
                let steps: Vec<ComposeStep> = steps_seed
                    .into_iter()
                    .map(|(indep, depth, accepted)| ComposeStep {
                        left_attrs: attrs.clone(),
                        right_attrs: vec!["tail\nattr".to_string()],
                        indep,
                        depth,
                        accepted,
                    })
                    .collect();
                let stop = match stop_pick {
                    0 => None,
                    1 => Some(StopReason::IndependenceThreshold),
                    2 => Some(StopReason::DepthLimit),
                    3 => Some(StopReason::ExhaustedCandidates),
                    _ => Some(StopReason::ComposeFailed),
                };
                Advice {
                    context,
                    context_size,
                    ranked,
                    trace: Trace {
                        seeds: attrs.clone(),
                        skipped: vec!["control\u{1}char".to_string()],
                        steps,
                        skipped_pairs: vec![SkippedPair {
                            left_attrs: attrs,
                            right_attrs: vec!["quote\"attr".to_string()],
                            indep: 0.5,
                        }],
                        stop,
                    },
                    backend_ops: Default::default(),
                    cache: Default::default(),
                }
            },
        )
}

/// The field-by-field conversion an advice payload undergoes on the
/// wire: strings are pre-rendered, counters widen to u64, floats travel
/// as bits. This is the test-side mirror of the server's encoder.
fn wire_advice_of(advice: &Advice) -> WireAdvice {
    WireAdvice {
        context: advice.context.to_string(),
        context_size: advice.context_size as u64,
        ranked: advice
            .ranked
            .iter()
            .map(|r| WireRanked {
                segmentation: r
                    .segmentation
                    .queries()
                    .iter()
                    .map(|q| q.to_string())
                    .collect(),
                entropy: r.score.entropy,
                simplicity: r.score.simplicity as u64,
                breadth: r.score.breadth as u64,
                depth: r.score.depth as u64,
            })
            .collect(),
        trace: WireTrace {
            seeds: advice.trace.seeds.clone(),
            skipped: advice.trace.skipped.clone(),
            steps: advice
                .trace
                .steps
                .iter()
                .map(|s| WireStep {
                    left: s.left_attrs.clone(),
                    right: s.right_attrs.clone(),
                    indep: s.indep,
                    depth: s.depth as u64,
                    accepted: s.accepted,
                })
                .collect(),
            skipped_pairs: advice
                .trace
                .skipped_pairs
                .iter()
                .map(|p| WirePair {
                    left: p.left_attrs.clone(),
                    right: p.right_attrs.clone(),
                    indep: p.indep,
                })
                .collect(),
            stop: advice.trace.stop,
        },
    }
}

fn arb_fault() -> impl Strategy<Value = WireFault> {
    (
        100u16..600,
        "[a-z_]{1,20}",
        "[ -~]{0,40}",
        proptest::option::of(proptest::collection::vec(
            ("[a-z_]{1,16}", "[ -~]{0,16}", "[ -~]{0,24}")
                .prop_map(|(code, attr, detail)| WireDiagnostic { code, attr, detail }),
            0..3,
        )),
    )
        .prop_map(|(status, code, message, diagnostics)| WireFault {
            status,
            code,
            message,
            diagnostics,
        })
}

fn arb_response() -> impl Strategy<Value = WireResponse> {
    let advice = || arb_advice().prop_map(|a| wire_advice_of(&a));
    prop_oneof![
        (any::<u32>(), advice()).prop_map(|(n, advice)| WireResponse::Started {
            id: format!("s{n}"),
            advice,
        }),
        (any::<u32>(), advice()).prop_map(|(n, advice)| WireResponse::Advice {
            id: format!("s{n}"),
            advice,
        }),
        (
            any::<u32>(),
            any::<u64>(),
            proptest::collection::vec("[ -~]{0,24}", 0..4),
            advice()
        )
            .prop_map(|(n, depth, breadcrumbs, advice)| WireResponse::Info {
                id: format!("s{n}"),
                depth,
                breadcrumbs,
                advice,
            }),
        Just(WireResponse::Deleted),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(any::<u64>())
        )
            .prop_map(|(hits, misses, runs, evictions, entries, capacity)| {
                WireResponse::CacheStats(WireCacheStats {
                    hits,
                    misses,
                    runs,
                    evictions,
                    entries,
                    capacity,
                })
            }),
        proptest::collection::vec(any::<u64>(), 7).prop_map(|v| {
            WireResponse::Metrics(MetricsSnapshot {
                connections: v[0],
                requests: v[1],
                responses_2xx: v[2],
                responses_4xx: v[3],
                responses_5xx: v[4],
                analysis_rejects: v[5],
                analysis_prunes: v[6],
            })
        }),
        Just(WireResponse::Health),
        arb_fault().prop_map(WireResponse::Error),
    ]
}

/// Split one encoded frame into (opcode, payload), validating the
/// header invariants every encoder must uphold.
fn split_frame(buf: &[u8]) -> (u8, &[u8]) {
    assert_eq!(&buf[..4], &MAGIC);
    assert_eq!(buf[4], VERSION);
    let len = u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]) as usize;
    assert_eq!(buf.len(), HEADER_LEN + len, "declared length mismatch");
    (buf[5], &buf[HEADER_LEN..])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn request_decoder_never_panics_on_byte_soup(
        opcode in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Whatever the payload, decoding returns a value or a typed
        // error — it never panics and never over-allocates.
        let _ = WireRequest::decode(opcode, &payload);
    }

    #[test]
    fn response_decoder_never_panics_on_byte_soup(
        opcode in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = WireResponse::decode(opcode, &payload);
        let _ = summarize_response(opcode, &payload);
    }

    #[test]
    fn frame_reader_never_panics_on_byte_soup(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut scratch = Vec::new();
        let _ = read_frame(&mut bytes.as_slice(), &mut scratch, MAX_REQUEST_PAYLOAD);
    }

    #[test]
    fn request_frames_round_trip(
        body in "[ -~]{0,64}",
        id in "[a-z0-9]{1,12}",
        rank in any::<u32>(),
        seg in any::<u32>(),
        pick in 0usize..8,
    ) {
        let requests = [
            WireRequest::Start { body: &body },
            WireRequest::Inspect { id: &id },
            WireRequest::Drill { id: &id, rank, seg },
            WireRequest::Back { id: &id },
            WireRequest::Delete { id: &id },
            WireRequest::CacheStats,
            WireRequest::Metrics,
            WireRequest::Health,
        ];
        let req = requests[pick];
        let mut buf = Vec::new();
        req.encode(&mut buf);
        let (opcode, payload) = split_frame(&buf);
        // Through the frame reader too: header parse + payload fill.
        let mut scratch = Vec::new();
        let read_op = read_frame(&mut buf.as_slice(), &mut scratch, MAX_REQUEST_PAYLOAD)
            .expect("own frames must parse");
        prop_assert_eq!(read_op, opcode);
        prop_assert_eq!(&scratch[..], payload);
        let decoded = WireRequest::decode(opcode, payload).expect("own frames must decode");
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn response_frames_round_trip_bitwise(resp in arb_response()) {
        // Encode → decode → re-encode must reproduce the exact bytes:
        // f64 fields (including NaNs and infinities from the generator)
        // travel as verbatim bits, so byte equality is the identity
        // check that sidesteps NaN ≠ NaN.
        let mut one = Vec::new();
        resp.encode(&mut one);
        let (opcode, payload) = split_frame(&one);
        let decoded = WireResponse::decode(opcode, payload)
            .expect("own frames must decode");
        prop_assert_eq!(decoded.status(), resp.status());
        let mut two = Vec::new();
        decoded.encode(&mut two);
        prop_assert_eq!(one, two);
    }

    #[test]
    fn truncated_response_frames_are_detected(
        resp in arb_response(),
        cut_frac in 0usize..1000,
    ) {
        let mut buf = Vec::new();
        resp.encode(&mut buf);
        let keep = cut_frac * buf.len() / 1000; // strict prefix: keep < len
        let mut scratch = Vec::new();
        match read_frame(&mut &buf[..keep], &mut scratch, MAX_RESPONSE_PAYLOAD) {
            // Cut inside the header or payload: the transport read fails.
            Err(WireError::Io(e)) => {
                prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected: {other}"))),
            Ok(_) => return Err(TestCaseError::fail("truncated frame parsed")),
        }
        // Cut inside the payload with a *corrected* header length: the
        // typed decoder reports the damage (usually Truncated; a cut
        // can also land so that a length prefix now reads as string
        // bytes, surfacing as UTF-8/domain/trailing errors — but never
        // a panic and never success).
        if keep > HEADER_LEN {
            let body = &buf[HEADER_LEN..keep];
            match WireResponse::decode(buf[5], body) {
                Ok(_) => return Err(TestCaseError::fail("truncated payload decoded")),
                Err(WireError::Truncated)
                | Err(WireError::TrailingBytes)
                | Err(WireError::BadValue(_))
                | Err(WireError::BadUtf8) => {}
                Err(other) => {
                    return Err(TestCaseError::fail(format!("unexpected: {other}")));
                }
            }
        }
    }

    #[test]
    fn wire_advice_rendering_matches_the_json_encoder(advice in arb_advice()) {
        // The cross-listener contract: a decoded binary advice payload
        // renders to the exact bytes the JSON path serves. Floats made
        // the trip as bits, so even shortest-round-trip float text
        // agrees (non-finite renders as null on both sides).
        let wire = wire_advice_of(&advice);
        prop_assert_eq!(wire.to_json(), encode_advice(&advice));
        // And after a full encode→decode trip the rendering still
        // agrees — nothing was lost on the wire.
        let resp = WireResponse::Advice { id: "s1".to_string(), advice: wire };
        let mut one = Vec::new();
        resp.encode(&mut one);
        let (opcode, payload) = split_frame(&one);
        let decoded = WireResponse::decode(opcode, payload).expect("own frames must decode");
        let WireResponse::Advice { advice: round, .. } = &decoded else {
            return Err(TestCaseError::fail("wrong opcode back"));
        };
        prop_assert_eq!(round.to_json(), encode_advice(&advice));
    }

    #[test]
    fn out_of_domain_stop_tags_are_rejected(tag in 5u8..=255) {
        // A stop-reason byte beyond the known variants is a typed
        // error, not a default and not a panic.
        let empty = WireAdvice {
            context: String::new(),
            context_size: 0,
            ranked: vec![],
            trace: WireTrace::default(),
        };
        let resp = WireResponse::Advice { id: "s".to_string(), advice: empty };
        let mut buf = Vec::new();
        resp.encode(&mut buf);
        let last = buf.len() - 1; // trailing payload byte is the stop tag
        buf[last] = tag;
        let (opcode, body) = split_frame(&buf);
        prop_assert!(matches!(
            WireResponse::decode(opcode, body),
            Err(WireError::BadValue(_))
        ));
    }
}

/// `StopReason` coverage marker: pins every variant through a full
/// encode→decode trip should the enum grow.
#[test]
fn stop_reason_variants_are_exhaustively_encodable() {
    for stop in [
        None,
        Some(StopReason::IndependenceThreshold),
        Some(StopReason::DepthLimit),
        Some(StopReason::ExhaustedCandidates),
        Some(StopReason::ComposeFailed),
    ] {
        let advice = WireAdvice {
            context: "(a: )".to_string(),
            context_size: 1,
            ranked: vec![],
            trace: WireTrace {
                stop,
                ..WireTrace::default()
            },
        };
        let resp = WireResponse::Advice {
            id: "s1".to_string(),
            advice,
        };
        let mut buf = Vec::new();
        resp.encode(&mut buf);
        let decoded = WireResponse::decode(buf[5], &buf[HEADER_LEN..]).expect("round trip");
        let WireResponse::Advice { advice, .. } = decoded else {
            panic!("wrong opcode back");
        };
        assert_eq!(advice.trace.stop, stop);
    }
}
