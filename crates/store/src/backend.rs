//! The `Backend` trait: what Charles requires from its database.
//!
//! The paper positions Charles as "a front-end for SQL systems" (§1) and
//! enumerates the operations its workload issues: counts over predicates
//! and median calculations (§5.1), plus the frequency histograms implied
//! by nominal cuts (§4.1). Abstracting them behind a trait lets the same
//! advisor code run against the columnar engine ([`crate::Table`]) and the
//! row-store baseline ([`crate::RowTable`]) — which is exactly the
//! comparison the paper's "column-based systems such as MonetDB are well
//! suited for Charles' workloads" claim calls for (experiment E7).

use crate::bitmap::Bitmap;
use crate::error::StoreResult;
use crate::predicate::StorePredicate;
use crate::schema::Schema;
use crate::stats::FrequencyTable;
use crate::value::Value;

/// Operation counters exposed by a backend, for the experiment harness.
///
/// The paper's workload taxonomy (§5.1) is "counts over predicates and
/// median calculations": `counts` tallies the former as a logical
/// operation in its own right, while `scans` counts physical predicate
/// scans (a `count` issues scans too — one per leaf predicate — so the
/// two move together but measure different layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendStats {
    /// Number of predicate scans executed.
    pub scans: u64,
    /// Number of `count` operations answered (the paper's "counts over
    /// predicates" metric).
    pub counts: u64,
    /// Number of median/quantile computations executed.
    pub medians: u64,
}

/// Implement [`Backend`] for a dense columnar type.
///
/// [`crate::Table`] (in-memory) and [`crate::DiskTable`] (lazily loaded
/// from a `.charles` file) promise **bitwise-identical** behaviour for
/// every operation; this macro makes that identity structural rather
/// than hand-synchronized — both expand the exact same implementation.
/// The target type must expose `column(&self, &str) -> StoreResult<&Column>`
/// and `all_rows(&self) -> Bitmap`, a `schema: Schema` field, and
/// `scans`/`counts`/`medians` `AtomicU64` counter fields. (The only
/// behavioural difference between the two backends is that
/// `DiskTable::column` may fault with `Io`/`Corrupt` on first touch.)
macro_rules! impl_dense_backend {
    ($ty:ty) => {
        impl $crate::backend::Backend for $ty {
            fn row_count(&self) -> usize {
                self.rows
            }

            fn schema(&self) -> &$crate::schema::Schema {
                &self.schema
            }

            fn eval(
                &self,
                pred: &$crate::predicate::StorePredicate,
            ) -> $crate::error::StoreResult<$crate::bitmap::Bitmap> {
                use $crate::predicate::StorePredicate;
                match pred {
                    StorePredicate::True => Ok(self.all_rows()),
                    StorePredicate::Range(r) => {
                        self.scans
                            .fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
                        $crate::predicate::eval_range(self.column(&r.column)?, r)
                    }
                    StorePredicate::Set(s) => {
                        self.scans
                            .fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
                        $crate::predicate::eval_set(self.column(&s.column)?, s)
                    }
                    StorePredicate::And(ps) => {
                        let mut acc: Option<$crate::bitmap::Bitmap> = None;
                        for p in ps {
                            let sel = $crate::backend::Backend::eval(self, p)?;
                            acc = Some(match acc {
                                None => sel,
                                Some(mut a) => {
                                    a.and_inplace(&sel);
                                    a
                                }
                            });
                            // Early exit on empty intermediate selections:
                            // common in product cells of nearly dependent
                            // segmentations.
                            if acc
                                .as_ref()
                                .map($crate::bitmap::Bitmap::none)
                                .unwrap_or(false)
                            {
                                break;
                            }
                        }
                        Ok(acc.unwrap_or_else(|| self.all_rows()))
                    }
                }
            }

            fn count(
                &self,
                pred: &$crate::predicate::StorePredicate,
            ) -> $crate::error::StoreResult<usize> {
                // Counts get their own counter: delegating to `eval` used
                // to record the paper's "counts over predicates" workload
                // as plain scans, so the count metric never showed up in
                // the experiment tables.
                self.counts
                    .fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
                Ok($crate::backend::Backend::eval(self, pred)?.count_ones())
            }

            fn not_null(&self, column: &str) -> $crate::error::StoreResult<$crate::bitmap::Bitmap> {
                Ok(self.column(column)?.validity().clone())
            }

            fn median(
                &self,
                column: &str,
                sel: &$crate::bitmap::Bitmap,
            ) -> $crate::error::StoreResult<Option<$crate::value::Value>> {
                self.medians
                    .fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
                let col = self.column(column)?;
                if !col.data_type().is_numeric() {
                    return Err($crate::error::StoreError::TypeMismatch {
                        column: column.to_string(),
                        expected: "numeric".into(),
                        found: col.data_type().name().into(),
                    });
                }
                let mut buf = Vec::new();
                col.gather_f64(sel, &mut buf)?;
                if buf.is_empty() {
                    return Ok(None);
                }
                let med = $crate::stats::exact_median(&mut buf)?;
                Ok(Some($crate::value::numeric_value(col.data_type(), med)))
            }

            fn sampled_median(
                &self,
                column: &str,
                sel: &$crate::bitmap::Bitmap,
                sample_size: usize,
                seed: u64,
            ) -> $crate::error::StoreResult<Option<$crate::value::Value>> {
                use ::rand::SeedableRng;
                self.medians
                    .fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
                let col = self.column(column)?;
                if !col.data_type().is_numeric() {
                    return Err($crate::error::StoreError::TypeMismatch {
                        column: column.to_string(),
                        expected: "numeric".into(),
                        found: col.data_type().name().into(),
                    });
                }
                let mut rng = ::rand::rngs::StdRng::seed_from_u64(seed);
                let rows = $crate::sample::reservoir_sample(sel, sample_size, &mut rng);
                let mut buf = Vec::with_capacity(rows.len());
                for i in rows {
                    if let Some(v) = col.get(i).and_then(|v| v.as_f64()) {
                        if !v.is_nan() {
                            buf.push(v);
                        }
                    }
                }
                if buf.is_empty() {
                    return Ok(None);
                }
                let med = $crate::stats::exact_median(&mut buf)?;
                Ok(Some($crate::value::numeric_value(col.data_type(), med)))
            }

            fn quantile(
                &self,
                column: &str,
                sel: &$crate::bitmap::Bitmap,
                q: f64,
            ) -> $crate::error::StoreResult<Option<$crate::value::Value>> {
                self.medians
                    .fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
                let col = self.column(column)?;
                let mut buf = Vec::new();
                col.gather_f64(sel, &mut buf)?;
                if buf.is_empty() {
                    return Ok(None);
                }
                let v = $crate::stats::quantile_value(&mut buf, q)?;
                Ok(Some($crate::value::numeric_value(col.data_type(), v)))
            }

            fn min_max(
                &self,
                column: &str,
                sel: &$crate::bitmap::Bitmap,
            ) -> $crate::error::StoreResult<Option<($crate::value::Value, $crate::value::Value)>>
            {
                Ok(self.column(column)?.min_max(sel))
            }

            fn mean_and_var(
                &self,
                column: &str,
                sel: &$crate::bitmap::Bitmap,
            ) -> $crate::error::StoreResult<Option<(f64, f64)>> {
                let col = self.column(column)?;
                let mut buf = Vec::new();
                col.gather_f64(sel, &mut buf)?;
                Ok($crate::stats::mean_and_var_of(&buf))
            }

            fn next_above(
                &self,
                column: &str,
                sel: &$crate::bitmap::Bitmap,
                v: &$crate::value::Value,
            ) -> $crate::error::StoreResult<Option<$crate::value::Value>> {
                let col = self.column(column)?;
                let mut best: Option<$crate::value::Value> = None;
                for i in sel.iter_ones() {
                    let Some(x) = col.get(i) else { continue };
                    if !matches!(x.try_cmp(v), Ok(::std::cmp::Ordering::Greater)) {
                        continue;
                    }
                    if best
                        .as_ref()
                        .map(|b| matches!(x.try_cmp(b), Ok(::std::cmp::Ordering::Less)))
                        .unwrap_or(true)
                    {
                        best = Some(x);
                    }
                }
                Ok(best)
            }

            fn frequencies(
                &self,
                column: &str,
                sel: &$crate::bitmap::Bitmap,
            ) -> $crate::error::StoreResult<($crate::stats::FrequencyTable, Vec<String>)> {
                self.scans
                    .fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
                let col = self.column(column)?;
                match col.data() {
                    $crate::column::ColumnData::Str(codes) => {
                        let mut counts = vec![0usize; col.dict().len()];
                        for i in sel.iter_ones() {
                            if col.validity().get(i) {
                                counts[codes[i] as usize] += 1;
                            }
                        }
                        Ok((
                            $crate::stats::FrequencyTable::from_counts(counts),
                            col.dict().to_vec(),
                        ))
                    }
                    $crate::column::ColumnData::Bool(vals) => {
                        // Treat booleans as a two-entry dictionary
                        // {false, true}.
                        let mut counts = vec![0usize; 2];
                        for i in sel.iter_ones() {
                            if col.validity().get(i) {
                                counts[vals[i] as usize] += 1;
                            }
                        }
                        Ok((
                            $crate::stats::FrequencyTable::from_counts(counts),
                            vec!["false".into(), "true".into()],
                        ))
                    }
                    _ => Err($crate::error::StoreError::TypeMismatch {
                        column: column.to_string(),
                        expected: "nominal".into(),
                        found: col.data_type().name().into(),
                    }),
                }
            }

            fn distinct_count(
                &self,
                column: &str,
                sel: &$crate::bitmap::Bitmap,
            ) -> $crate::error::StoreResult<usize> {
                let col = self.column(column)?;
                match col.data() {
                    $crate::column::ColumnData::Str(_) | $crate::column::ColumnData::Bool(_) => {
                        let (ft, _) = $crate::backend::Backend::frequencies(self, column, sel)?;
                        Ok(ft.cardinality())
                    }
                    _ => {
                        let mut buf = Vec::new();
                        col.gather_f64(sel, &mut buf)?;
                        buf.sort_by(f64::total_cmp);
                        buf.dedup();
                        Ok(buf.len())
                    }
                }
            }

            fn stats(&self) -> $crate::backend::BackendStats {
                $crate::backend::BackendStats {
                    scans: self.scans.load(::std::sync::atomic::Ordering::Relaxed),
                    counts: self.counts.load(::std::sync::atomic::Ordering::Relaxed),
                    medians: self.medians.load(::std::sync::atomic::Ordering::Relaxed),
                }
            }

            fn reset_stats(&self) {
                self.scans.store(0, ::std::sync::atomic::Ordering::Relaxed);
                self.counts.store(0, ::std::sync::atomic::Ordering::Relaxed);
                self.medians
                    .store(0, ::std::sync::atomic::Ordering::Relaxed);
            }
        }
    };
}

pub(crate) use impl_dense_backend;

/// The database operations the advisor needs.
///
/// `Send + Sync` is a supertrait requirement: the advisor's parallel
/// evaluation path shares one backend reference across worker threads.
/// Backends are immutable after construction (their op counters are
/// atomic), so this costs implementors nothing.
pub trait Backend: Send + Sync {
    /// Total number of rows in the relation.
    fn row_count(&self) -> usize;

    /// The relation's schema.
    fn schema(&self) -> &Schema;

    /// Evaluate a predicate into a selection bitmap.
    fn eval(&self, pred: &StorePredicate) -> StoreResult<Bitmap>;

    /// Selection of the rows where `column` is not null
    /// (`WHERE col IS NOT NULL`). The advisor restricts its context to the
    /// non-null extent of the explored attributes so that cut pieces
    /// partition the context exactly.
    fn not_null(&self, column: &str) -> StoreResult<Bitmap>;

    /// Count rows matching a predicate (`|R(Q)|` in the paper).
    fn count(&self, pred: &StorePredicate) -> StoreResult<usize>;

    /// Exact median of a numeric column over a selection.
    /// `None` when the selection holds no non-null value.
    fn median(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<Value>>;

    /// Approximate median from a reservoir sample of `sample_size` rows
    /// (§5.2 sampling strategies). Deterministic for a fixed `seed`.
    fn sampled_median(
        &self,
        column: &str,
        sel: &Bitmap,
        sample_size: usize,
        seed: u64,
    ) -> StoreResult<Option<Value>>;

    /// Value at an arbitrary quantile `q ∈ [0,1]` (§5.2 "support for other
    /// quantiles").
    fn quantile(&self, column: &str, sel: &Bitmap, q: f64) -> StoreResult<Option<Value>>;

    /// Minimum and maximum of a column over a selection.
    fn min_max(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<(Value, Value)>>;

    /// Smallest value strictly greater than `v` within a selection
    /// (`SELECT MIN(col) WHERE col > v`): the fallback split point for
    /// degenerate cuts where the median equals the minimum.
    fn next_above(&self, column: &str, sel: &Bitmap, v: &Value) -> StoreResult<Option<Value>>;

    /// Mean and population variance of a numeric column over a selection
    /// (`SELECT AVG(col), VAR_POP(col)`). `None` when no non-null value is
    /// selected. Feeds the homogeneity diagnostics and surprise scoring.
    fn mean_and_var(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<(f64, f64)>>;

    /// Frequency histogram of a nominal column over a selection; returns
    /// the table plus the dictionary used to decode its codes.
    fn frequencies(&self, column: &str, sel: &Bitmap)
        -> StoreResult<(FrequencyTable, Vec<String>)>;

    /// Number of distinct non-null values of a column over a selection.
    fn distinct_count(&self, column: &str, sel: &Bitmap) -> StoreResult<usize>;

    /// Operation counters accumulated since the last reset.
    fn stats(&self) -> BackendStats;

    /// Reset the operation counters.
    fn reset_stats(&self);
}
