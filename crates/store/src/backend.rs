//! The `Backend` trait: what Charles requires from its database.
//!
//! The paper positions Charles as "a front-end for SQL systems" (§1) and
//! enumerates the operations its workload issues: counts over predicates
//! and median calculations (§5.1), plus the frequency histograms implied
//! by nominal cuts (§4.1). Abstracting them behind a trait lets the same
//! advisor code run against the columnar engine ([`crate::Table`]) and the
//! row-store baseline ([`crate::RowTable`]) — which is exactly the
//! comparison the paper's "column-based systems such as MonetDB are well
//! suited for Charles' workloads" claim calls for (experiment E7).

use crate::bitmap::Bitmap;
use crate::error::StoreResult;
use crate::predicate::StorePredicate;
use crate::schema::Schema;
use crate::stats::FrequencyTable;
use crate::value::Value;

/// Operation counters exposed by a backend, for the experiment harness.
///
/// The paper's workload taxonomy (§5.1) is "counts over predicates and
/// median calculations": `counts` tallies the former as a logical
/// operation in its own right, while `scans` counts physical predicate
/// scans (a `count` issues scans too — one per leaf predicate — so the
/// two move together but measure different layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendStats {
    /// Number of predicate scans executed.
    pub scans: u64,
    /// Number of `count` operations answered (the paper's "counts over
    /// predicates" metric).
    pub counts: u64,
    /// Number of median/quantile computations executed.
    pub medians: u64,
}

/// The database operations the advisor needs.
///
/// `Send + Sync` is a supertrait requirement: the advisor's parallel
/// evaluation path shares one backend reference across worker threads.
/// Backends are immutable after construction (their op counters are
/// atomic), so this costs implementors nothing.
pub trait Backend: Send + Sync {
    /// Total number of rows in the relation.
    fn row_count(&self) -> usize;

    /// The relation's schema.
    fn schema(&self) -> &Schema;

    /// Evaluate a predicate into a selection bitmap.
    fn eval(&self, pred: &StorePredicate) -> StoreResult<Bitmap>;

    /// Selection of the rows where `column` is not null
    /// (`WHERE col IS NOT NULL`). The advisor restricts its context to the
    /// non-null extent of the explored attributes so that cut pieces
    /// partition the context exactly.
    fn not_null(&self, column: &str) -> StoreResult<Bitmap>;

    /// Count rows matching a predicate (`|R(Q)|` in the paper).
    fn count(&self, pred: &StorePredicate) -> StoreResult<usize>;

    /// Exact median of a numeric column over a selection.
    /// `None` when the selection holds no non-null value.
    fn median(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<Value>>;

    /// Approximate median from a reservoir sample of `sample_size` rows
    /// (§5.2 sampling strategies). Deterministic for a fixed `seed`.
    fn sampled_median(
        &self,
        column: &str,
        sel: &Bitmap,
        sample_size: usize,
        seed: u64,
    ) -> StoreResult<Option<Value>>;

    /// Value at an arbitrary quantile `q ∈ [0,1]` (§5.2 "support for other
    /// quantiles").
    fn quantile(&self, column: &str, sel: &Bitmap, q: f64) -> StoreResult<Option<Value>>;

    /// Minimum and maximum of a column over a selection.
    fn min_max(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<(Value, Value)>>;

    /// Smallest value strictly greater than `v` within a selection
    /// (`SELECT MIN(col) WHERE col > v`): the fallback split point for
    /// degenerate cuts where the median equals the minimum.
    fn next_above(&self, column: &str, sel: &Bitmap, v: &Value) -> StoreResult<Option<Value>>;

    /// Mean and population variance of a numeric column over a selection
    /// (`SELECT AVG(col), VAR_POP(col)`). `None` when no non-null value is
    /// selected. Feeds the homogeneity diagnostics and surprise scoring.
    fn mean_and_var(&self, column: &str, sel: &Bitmap) -> StoreResult<Option<(f64, f64)>>;

    /// Frequency histogram of a nominal column over a selection; returns
    /// the table plus the dictionary used to decode its codes.
    fn frequencies(&self, column: &str, sel: &Bitmap)
        -> StoreResult<(FrequencyTable, Vec<String>)>;

    /// Number of distinct non-null values of a column over a selection.
    fn distinct_count(&self, column: &str, sel: &Bitmap) -> StoreResult<usize>;

    /// Operation counters accumulated since the last reset.
    fn stats(&self) -> BackendStats;

    /// Reset the operation counters.
    fn reset_stats(&self);
}
