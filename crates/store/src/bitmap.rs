//! Selection bitmaps: the vectorised "selection vector" of the engine.
//!
//! Every predicate evaluation produces a [`Bitmap`] with one bit per row of
//! the table. Conjunctions are bitwise ANDs, segment disjointness checks
//! are AND + count, covers are popcounts. Keeping selections as bitmaps is
//! what makes the advisor's inner loop (thousands of intersection counts
//! during INDEP search) cheap.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-length bitmap over row indices `0..len`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap of the given length.
    pub fn new(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// All-ones bitmap of the given length.
    pub fn ones(len: usize) -> Bitmap {
        let mut bm = Bitmap {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        bm.clear_tail();
        bm
    }

    /// Build from an iterator of row indices (need not be sorted).
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Bitmap {
        let mut bm = Bitmap::new(len);
        for i in indices {
            bm.set(i);
        }
        bm
    }

    /// Number of addressable rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap addresses zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`. Panics if out of range (programming error).
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clear bit `i`.
    pub fn unset(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Read bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Number of set bits (the *count over a predicate* of the paper).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place intersection with another bitmap of the same length.
    pub fn and_inplace(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// New bitmap: `self ∩ other`.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.and_inplace(other);
        out
    }

    /// New bitmap: `self ∪ other`.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let mut out = self.clone();
        for (a, b) in out.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
        out
    }

    /// New bitmap: `self \ other`.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let mut out = self.clone();
        for (a, b) in out.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
        out
    }

    /// New bitmap: complement within `0..len`.
    pub fn not(&self) -> Bitmap {
        let mut out = Bitmap {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.clear_tail();
        out
    }

    /// `|self ∩ other|` without materialising the intersection — the hot
    /// operation of INDEP search (pairwise product cell counts).
    pub fn and_count(&self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// True if the two bitmaps share no set bit (segment disjointness).
    pub fn is_disjoint(&self, other: &Bitmap) -> bool {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// True if every set bit of `self` is set in `other`.
    pub fn is_subset_of(&self, other: &Bitmap) -> bool {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Append one bit, growing the bitmap by one row (amortized O(1)).
    /// Used by load paths that build validity masks incrementally.
    pub fn push(&mut self, value: bool) {
        // Invariant: no bit beyond `len` may be set in the last word —
        // otherwise the pushed position could inherit a stale bit from a
        // previous occupant of the word. All constructors uphold this
        // (see `clear_tail`), so a dirty tail is a bug; restore it anyway
        // so `push` never silently corrupts the new row.
        debug_assert!(self.tail_is_clear(), "stale bits beyond len {}", self.len);
        self.clear_tail();
        let i = self.len;
        self.len += 1;
        if self.words.len() * WORD_BITS < self.len {
            self.words.push(0);
        }
        if value {
            self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
        }
    }

    /// Append all bits of `other` after the bits of `self` (offset-aware:
    /// bit `i` of `other` lands at `self.len() + i`). This is the shard
    /// concatenation primitive — per-shard selection bitmaps glue back
    /// into one table-wide selection in shard order.
    pub fn append(&mut self, other: &Bitmap) {
        if other.len == 0 {
            return;
        }
        let shift = self.len % WORD_BITS;
        let new_len = self.len + other.len;
        if shift == 0 {
            self.words.extend_from_slice(&other.words);
        } else {
            let inv = WORD_BITS - shift;
            for &w in &other.words {
                *self
                    .words
                    .last_mut()
                    .expect("non-word-aligned len implies at least one word") |= w << shift;
                self.words.push(w >> inv);
            }
        }
        self.words.truncate(new_len.div_ceil(WORD_BITS));
        self.len = new_len;
        self.clear_tail();
    }

    /// Concatenate bitmaps in order: row `i` of part `k` becomes row
    /// `len(part 0) + … + len(part k-1) + i` of the result.
    pub fn concat<'a>(parts: impl IntoIterator<Item = &'a Bitmap>) -> Bitmap {
        let mut out = Bitmap::new(0);
        for p in parts {
            out.append(p);
        }
        out
    }

    /// The sub-bitmap covering rows `start..end` (bit `start + i` of
    /// `self` becomes bit `i`). Inverse of [`Bitmap::append`]; sharded
    /// backends use it to restrict a table-wide selection to one shard's
    /// row range.
    pub fn slice(&self, start: usize, end: usize) -> Bitmap {
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of range {}",
            self.len
        );
        let mut out = Bitmap::new(end - start);
        let shift = start % WORD_BITS;
        let first = start / WORD_BITS;
        for k in 0..out.words.len() {
            let lo = self.words[first + k] >> shift;
            let hi = if shift == 0 {
                0
            } else {
                self.words
                    .get(first + k + 1)
                    .map_or(0, |w| w << (WORD_BITS - shift))
            };
            out.words[k] = lo | hi;
        }
        out.clear_tail();
        out
    }

    /// The raw 64-bit word layout (bit `i` lives at word `i / 64`, bit
    /// position `i % 64`; bits beyond `len` in the last word are zero).
    /// This is the layout the on-disk `.charles` format serialises
    /// verbatim — see `docs/FORMAT.md`.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a bitmap from its word layout (inverse of
    /// [`Bitmap::words`]). Returns `None` when `words` is not exactly
    /// `len.div_ceil(64)` words long or a bit beyond `len` is set — the
    /// two ways a deserialised buffer can violate the invariants every
    /// other operation assumes.
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<Bitmap> {
        if words.len() != len.div_ceil(WORD_BITS) {
            return None;
        }
        let bm = Bitmap { words, len };
        if !bm.tail_is_clear() {
            return None;
        }
        Some(bm)
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// True when no bit beyond `len` is set in the last word — the
    /// invariant every public operation must preserve (popcounts,
    /// complements and appends all assume it).
    fn tail_is_clear(&self) -> bool {
        let tail = self.len % WORD_BITS;
        tail == 0
            || self
                .words
                .last()
                .is_none_or(|last| last & !((1u64 << tail) - 1) == 0)
    }

    /// Zero out the bits beyond `len` in the last word so popcounts and
    /// complements stay correct.
    fn clear_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap[{}/{}]", self.count_ones(), self.len)
    }
}

/// Iterator over set-bit indices of a [`Bitmap`].
pub struct OnesIter<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_round_trip_and_reject_bad_layouts() {
        let bm = Bitmap::from_indices(130, [0, 63, 64, 129]);
        let rebuilt = Bitmap::from_words(bm.words().to_vec(), 130).unwrap();
        assert_eq!(rebuilt, bm);
        // Wrong word count.
        assert!(Bitmap::from_words(vec![0; 2], 130).is_none());
        assert!(Bitmap::from_words(vec![0; 4], 130).is_none());
        // Dirty tail: bit 130 set in the last word.
        let mut words = bm.words().to_vec();
        words[2] |= 1 << 2;
        assert!(Bitmap::from_words(words, 130).is_none());
        // Degenerate empty bitmap.
        assert_eq!(Bitmap::from_words(Vec::new(), 0).unwrap(), Bitmap::new(0));
    }

    #[test]
    fn new_is_all_zero_ones_is_all_one() {
        let z = Bitmap::new(130);
        assert_eq!(z.count_ones(), 0);
        let o = Bitmap::ones(130);
        assert_eq!(o.count_ones(), 130);
    }

    #[test]
    fn ones_tail_is_clean() {
        // 70 bits spans two words; second word must only have 6 bits set.
        let o = Bitmap::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert_eq!(o.not().count_ones(), 0);
    }

    #[test]
    fn set_get_unset() {
        let mut bm = Bitmap::new(100);
        bm.set(0);
        bm.set(63);
        bm.set(64);
        bm.set(99);
        assert!(bm.get(0) && bm.get(63) && bm.get(64) && bm.get(99));
        assert!(!bm.get(1));
        bm.unset(64);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::new(10).get(10);
    }

    #[test]
    fn boolean_algebra() {
        let a = Bitmap::from_indices(10, [0, 1, 2, 3]);
        let b = Bitmap::from_indices(10, [2, 3, 4, 5]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(
            a.or(&b).iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5]
        );
        assert_eq!(a.and_not(&b).iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(a.and_count(&b), 2);
        assert!(!a.is_disjoint(&b));
        assert!(a.and_not(&b).is_disjoint(&b));
    }

    #[test]
    fn complement_partitions_universe() {
        let a = Bitmap::from_indices(77, [0, 10, 76]);
        let c = a.not();
        assert_eq!(a.count_ones() + c.count_ones(), 77);
        assert!(a.is_disjoint(&c));
        assert_eq!(a.or(&c).count_ones(), 77);
    }

    #[test]
    fn subset_checks() {
        let a = Bitmap::from_indices(20, [1, 2]);
        let b = Bitmap::from_indices(20, [1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(Bitmap::new(20).is_subset_of(&a));
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let idx = vec![0usize, 63, 64, 65, 127, 128];
        let bm = Bitmap::from_indices(200, idx.clone());
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn iter_ones_empty() {
        assert_eq!(Bitmap::new(0).iter_ones().count(), 0);
        assert_eq!(Bitmap::new(64).iter_ones().count(), 0);
    }

    #[test]
    fn none_detects_empty_selection() {
        assert!(Bitmap::new(100).none());
        assert!(!Bitmap::from_indices(100, [50]).none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let _ = Bitmap::new(10).and(&Bitmap::new(11));
    }

    #[test]
    fn append_concat_round_trip() {
        // Lengths straddle word boundaries on purpose: 0, 1, 63, 64, 65, 130.
        let lens = [0usize, 1, 63, 64, 65, 130];
        let mut parts = Vec::new();
        let mut expected = Vec::new();
        let mut offset = 0usize;
        for (p, &len) in lens.iter().enumerate() {
            let idx: Vec<usize> = (0..len).filter(|i| (i + p) % 3 == 0).collect();
            for &i in &idx {
                expected.push(offset + i);
            }
            offset += len;
            parts.push(Bitmap::from_indices(len, idx));
        }
        let glued = Bitmap::concat(parts.iter());
        assert_eq!(glued.len(), offset);
        assert_eq!(glued.iter_ones().collect::<Vec<_>>(), expected);
        // Slicing the concatenation back apart recovers every part.
        let mut start = 0usize;
        for part in &parts {
            let back = glued.slice(start, start + part.len());
            assert_eq!(&back, part);
            start += part.len();
        }
    }

    #[test]
    fn append_onto_unaligned_tail() {
        // 70 bits of ones, then 70 more: the second append starts mid-word.
        let mut bm = Bitmap::ones(70);
        bm.append(&Bitmap::ones(70));
        assert_eq!(bm.len(), 140);
        assert_eq!(bm.count_ones(), 140);
        assert!(bm.tail_is_clear());
        bm.append(&Bitmap::new(3));
        assert_eq!(bm.count_ones(), 140);
        assert_eq!(bm.len(), 143);
    }

    #[test]
    fn slice_matches_per_bit_extraction() {
        let bm = Bitmap::from_indices(200, (0..200).filter(|i| i % 7 == 0));
        for (start, end) in [(0, 200), (1, 64), (63, 65), (64, 128), (65, 199), (50, 50)] {
            let s = bm.slice(start, end);
            assert_eq!(s.len(), end - start);
            for i in 0..(end - start) {
                assert_eq!(s.get(i), bm.get(start + i), "bit {i} of {start}..{end}");
            }
            assert!(s.tail_is_clear());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let _ = Bitmap::new(10).slice(5, 11);
    }

    /// Manufacture an invariant violation (as a future length-mutating
    /// refactor might): a stale bit exactly where the next push lands.
    fn dirty_tail_bitmap() -> Bitmap {
        let mut bm = Bitmap::ones(3);
        bm.words[0] |= 1u64 << 3;
        assert!(!bm.tail_is_clear());
        bm
    }

    // `push` on a dirty tail has one pinned behaviour per build mode:
    // debug trips the assertion, release silently repairs. Each test is
    // compiled only into the mode whose behaviour it checks, so neither
    // is ever a silent no-op.

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale bits beyond len")]
    fn push_asserts_on_dirty_tail_in_debug() {
        dirty_tail_bitmap().push(false);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn push_restores_dirty_tail_in_release() {
        let mut bm = dirty_tail_bitmap();
        bm.push(false);
        assert!(!bm.get(3), "stale tail bit leaked into pushed row");
        assert_eq!(bm.count_ones(), 3);
        assert!(bm.tail_is_clear());
    }

    /// Every public operation preserves "no bits set beyond len".
    mod invariant_props {
        use super::*;
        use proptest::prelude::*;

        fn arb_bitmap() -> impl Strategy<Value = Bitmap> {
            proptest::collection::vec(any::<bool>(), 0usize..200).prop_map(|bits| {
                let mut bm = Bitmap::new(bits.len());
                for (i, b) in bits.into_iter().enumerate() {
                    if b {
                        bm.set(i);
                    }
                }
                bm
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn every_public_op_keeps_tail_clear(
                a in arb_bitmap(),
                b in arb_bitmap(),
                extra in proptest::collection::vec(any::<bool>(), 0..130),
            ) {
                prop_assert!(a.tail_is_clear());
                prop_assert!(Bitmap::ones(a.len()).tail_is_clear());
                prop_assert!(a.not().tail_is_clear());
                // Same-length algebra on a re-sliced pair.
                let n = a.len().min(b.len());
                let (x, y) = (a.slice(0, n), b.slice(0, n));
                prop_assert!(x.tail_is_clear() && y.tail_is_clear());
                prop_assert!(x.and(&y).tail_is_clear());
                prop_assert!(x.or(&y).tail_is_clear());
                prop_assert!(x.and_not(&y).tail_is_clear());
                // Append/concat across arbitrary (unaligned) offsets.
                let mut glued = a.clone();
                glued.append(&b);
                prop_assert!(glued.tail_is_clear());
                prop_assert_eq!(glued.count_ones(), a.count_ones() + b.count_ones());
                prop_assert!(Bitmap::concat([&a, &b, &a]).tail_is_clear());
                // Incremental pushes on top of everything above.
                let mut grown = glued.clone();
                for &bit in &extra {
                    grown.push(bit);
                    prop_assert!(grown.tail_is_clear());
                }
                let pushed_ones = extra.iter().filter(|&&v| v).count();
                prop_assert_eq!(grown.count_ones(), glued.count_ones() + pushed_ones);
                // Slice ↔ append round-trip at an arbitrary split point.
                let mid = glued.len() / 2;
                let (lo, hi) = (glued.slice(0, mid), glued.slice(mid, glued.len()));
                prop_assert!(lo.tail_is_clear() && hi.tail_is_clear());
                let mut rejoined = lo;
                rejoined.append(&hi);
                prop_assert_eq!(&rejoined, &glued);
            }
        }
    }
}
