//! Roaring-style compressed chunk containers for [`super::Bitmap`].
//!
//! The bit universe is cut into 64 Ki-bit **chunks**; each chunk stores
//! its set bits in whichever of three container shapes is smallest:
//!
//! * [`Container::Array`] — sorted `u16` offsets, 2 bytes per set bit
//!   (sparse chunks, at most [`ARRAY_MAX`] values);
//! * [`Container::Runs`] — sorted inclusive `(start, end)` intervals,
//!   4 bytes per run (long stretches: all-set chunks cost 4 bytes);
//! * [`Container::Words`] — the dense 1024-word block, 8 KiB flat
//!   (chunks with no exploitable structure).
//!
//! [`Container::Empty`] is the fourth, heap-free state. Containers
//! produced by whole-chunk operations go through [`from_block`], which
//! picks the smallest shape (canonicalisation); point mutations keep
//! whatever shape is cheapest to update and only *promote* when a
//! shape outgrows its budget, so a container's kind is an encoding
//! detail — equality, hashing and every set operation in the parent
//! module are defined on content, never on shape.
//!
//! Everything here is `pub(crate)`: the only public surface is the
//! `Bitmap` API one level up, which dispatches per chunk through
//! [`ChunkView`] so dense bitmaps (whose chunks are plain word slices)
//! and compressed bitmaps flow through the same operation kernels.

/// Bits per chunk: the `u16` offset space of one container.
pub(crate) const CHUNK_BITS: usize = 1 << 16;
/// 64-bit words per fully materialised chunk block.
pub(crate) const CHUNK_WORDS: usize = CHUNK_BITS / 64;
/// Largest array container: beyond 4096 values the 8 KiB word block is
/// no bigger, so the array shape stops paying for itself.
pub(crate) const ARRAY_MAX: usize = 4096;
/// Largest run container kept through point mutations: 2048 runs cost
/// exactly one word block, so past that the block wins.
pub(crate) const RUNS_MAX: usize = CHUNK_WORDS * 8 / 4;

/// One chunk's worth of set bits, in its current encoding.
#[derive(Clone, Debug)]
pub(crate) enum Container {
    /// No bit set; costs nothing.
    Empty,
    /// Sorted, deduplicated bit offsets.
    Array(Vec<u16>),
    /// Sorted, disjoint, non-adjacent inclusive intervals.
    Runs(Vec<(u16, u16)>),
    /// The dense 1024-word block.
    Words(Box<[u64; CHUNK_WORDS]>),
}

/// A borrowed, read-only view of one chunk's content. Dense bitmaps
/// expose their word slices through [`ChunkView::Words`] (trailing
/// all-zero words may be absent), so every operation kernel below
/// serves both representations.
#[derive(Clone, Copy)]
pub(crate) enum ChunkView<'a> {
    /// No bit set in this chunk.
    Empty,
    /// Sorted bit offsets.
    Array(&'a [u16]),
    /// Sorted inclusive intervals.
    Runs(&'a [(u16, u16)]),
    /// Dense words; words beyond the slice are implicitly zero.
    Words(&'a [u64]),
}

impl Container {
    /// Read-only view of this container.
    pub(crate) fn view(&self) -> ChunkView<'_> {
        match self {
            Container::Empty => ChunkView::Empty,
            Container::Array(a) => ChunkView::Array(a),
            Container::Runs(r) => ChunkView::Runs(r),
            Container::Words(w) => ChunkView::Words(&w[..]),
        }
    }

    /// Number of set bits.
    pub(crate) fn card(&self) -> usize {
        view_card(self.view())
    }

    /// Is bit `v` set?
    pub(crate) fn contains(&self, v: u16) -> bool {
        view_contains(self.view(), v)
    }

    /// Largest set bit, if any (the tail-invariant probe).
    pub(crate) fn max(&self) -> Option<usize> {
        match self {
            Container::Empty => None,
            Container::Array(a) => a.last().map(|&v| v as usize),
            Container::Runs(r) => r.last().map(|&(_, e)| e as usize),
            Container::Words(w) => w
                .iter()
                .rposition(|&x| x != 0)
                .map(|wi| wi * 64 + 63 - w[wi].leading_zeros() as usize),
        }
    }

    /// Heap bytes held by this container's payload (the resident-size
    /// figure `BENCH_store.json` reports; capacity slack is ignored so
    /// the number is deterministic).
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            Container::Empty => 0,
            Container::Array(a) => a.len() * 2,
            Container::Runs(r) => r.len() * 4,
            Container::Words(_) => CHUNK_WORDS * 8,
        }
    }

    /// Set bit `v`, promoting the container when its shape outgrows
    /// its budget ([`ARRAY_MAX`] values / [`RUNS_MAX`] runs — the
    /// replacement shape is re-picked by [`from_block`], so an array
    /// that grew into a solid prefix promotes to runs, not words).
    pub(crate) fn insert(&mut self, v: u16) {
        match self {
            Container::Empty => *self = Container::Array(vec![v]),
            Container::Array(a) => {
                if a.last().is_none_or(|&last| last < v) {
                    a.push(v); // ascending fill: the `push`/`set`-in-order hot path
                } else {
                    match a.binary_search(&v) {
                        Ok(_) => return,
                        Err(i) => a.insert(i, v),
                    }
                }
                if a.len() > ARRAY_MAX {
                    let mut block = [0u64; CHUNK_WORDS];
                    for &x in a.iter() {
                        block[x as usize / 64] |= 1u64 << (x % 64);
                    }
                    *self = from_block(&block);
                }
            }
            Container::Runs(rs) => {
                let i = match rs.binary_search_by_key(&v, |&(s, _)| s) {
                    Ok(_) => return, // v starts an existing run
                    Err(i) => i,
                };
                if i > 0 && rs[i - 1].1 >= v {
                    return; // covered by the previous run
                }
                let prev_adj = i > 0 && rs[i - 1].1 as usize + 1 == v as usize;
                let next_adj = i < rs.len() && v as usize + 1 == rs[i].0 as usize;
                match (prev_adj, next_adj) {
                    (true, true) => {
                        rs[i - 1].1 = rs[i].1;
                        rs.remove(i);
                    }
                    (true, false) => rs[i - 1].1 = v,
                    (false, true) => rs[i].0 = v,
                    (false, false) => rs.insert(i, (v, v)),
                }
                if rs.len() > RUNS_MAX {
                    let mut block = [0u64; CHUNK_WORDS];
                    for &(s, e) in rs.iter() {
                        set_range_in_block(&mut block, s as usize, e as usize);
                    }
                    *self = from_block(&block);
                }
            }
            Container::Words(w) => w[v as usize / 64] |= 1u64 << (v % 64),
        }
    }

    /// Clear bit `v`. May leave the container non-canonical (e.g. a
    /// nearly empty word block); that is fine because every consumer is
    /// shape-agnostic, and the next whole-chunk operation re-picks the
    /// smallest shape.
    pub(crate) fn remove(&mut self, v: u16) {
        match self {
            Container::Empty => {}
            Container::Array(a) => {
                if let Ok(i) = a.binary_search(&v) {
                    a.remove(i);
                    if a.is_empty() {
                        *self = Container::Empty;
                    }
                }
            }
            Container::Runs(rs) => {
                let i = match rs.binary_search_by_key(&v, |&(s, _)| s) {
                    Ok(i) => i,
                    Err(0) => return,
                    Err(i) => i - 1,
                };
                let (s, e) = rs[i];
                if v < s || v > e {
                    return;
                }
                if s == e {
                    rs.remove(i);
                    if rs.is_empty() {
                        *self = Container::Empty;
                    }
                } else if v == s {
                    rs[i].0 = s + 1;
                } else if v == e {
                    rs[i].1 = e - 1;
                } else {
                    rs[i].1 = v - 1;
                    rs.insert(i + 1, (v + 1, e));
                }
            }
            Container::Words(w) => w[v as usize / 64] &= !(1u64 << (v % 64)),
        }
    }
}

/// Number of set bits in a view.
pub(crate) fn view_card(v: ChunkView<'_>) -> usize {
    match v {
        ChunkView::Empty => 0,
        ChunkView::Array(a) => a.len(),
        ChunkView::Runs(rs) => rs.iter().map(|&(s, e)| e as usize - s as usize + 1).sum(),
        ChunkView::Words(ws) => ws.iter().map(|w| w.count_ones() as usize).sum(),
    }
}

/// Is bit `x` set in the view?
pub(crate) fn view_contains(v: ChunkView<'_>, x: u16) -> bool {
    match v {
        ChunkView::Empty => false,
        ChunkView::Array(a) => a.binary_search(&x).is_ok(),
        ChunkView::Runs(rs) => match rs.binary_search_by_key(&x, |&(s, _)| s) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => rs[i - 1].1 >= x,
        },
        ChunkView::Words(ws) => ws
            .get(x as usize / 64)
            .is_some_and(|w| w >> (x % 64) & 1 == 1),
    }
}

/// Materialise a view into a zeroed 1024-word block.
pub(crate) fn to_block(v: ChunkView<'_>, block: &mut [u64; CHUNK_WORDS]) {
    block.fill(0);
    match v {
        ChunkView::Empty => {}
        ChunkView::Array(a) => {
            for &x in a {
                block[x as usize / 64] |= 1u64 << (x % 64);
            }
        }
        ChunkView::Runs(rs) => {
            for &(s, e) in rs {
                set_range_in_block(block, s as usize, e as usize);
            }
        }
        ChunkView::Words(ws) => block[..ws.len()].copy_from_slice(ws),
    }
}

/// Set the inclusive bit range `[a, b]` in a word block.
pub(crate) fn set_range_in_block(block: &mut [u64; CHUNK_WORDS], a: usize, b: usize) {
    debug_assert!(a <= b && b < CHUNK_BITS);
    let (wa, wb) = (a / 64, b / 64);
    let ma = !0u64 << (a % 64);
    let mb = !0u64 >> (63 - b % 64);
    if wa == wb {
        block[wa] |= ma & mb;
    } else {
        block[wa] |= ma;
        for w in &mut block[wa + 1..wb] {
            *w = !0;
        }
        block[wb] |= mb;
    }
}

/// Canonicalise a block into the smallest container shape: bytes are
/// `2·card` (array, only if `card ≤ ARRAY_MAX`), `4·runs`, or the flat
/// 8 KiB block; ties prefer the array (cheapest to intersect).
pub(crate) fn from_block(block: &[u64; CHUNK_WORDS]) -> Container {
    let mut card = 0usize;
    let mut runs = 0usize;
    let mut prev_msb = 0u64;
    for &w in block.iter() {
        card += w.count_ones() as usize;
        // A run starts at every set bit whose predecessor bit is clear.
        runs += (w & !((w << 1) | prev_msb)).count_ones() as usize;
        prev_msb = w >> 63;
    }
    if card == 0 {
        return Container::Empty;
    }
    let runs_bytes = 4 * runs;
    if card <= ARRAY_MAX && 2 * card <= runs_bytes {
        let mut a = Vec::with_capacity(card);
        for (wi, &w) in block.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                a.push((wi * 64 + w.trailing_zeros() as usize) as u16);
                w &= w - 1;
            }
        }
        Container::Array(a)
    } else if runs_bytes < CHUNK_WORDS * 8 {
        Container::Runs(runs_of_block(block, runs))
    } else {
        Container::Words(Box::new(*block))
    }
}

/// Extract the sorted inclusive runs of a block (`nruns` known from the
/// counting pass, so the vec allocates once).
fn runs_of_block(block: &[u64; CHUNK_WORDS], nruns: usize) -> Vec<(u16, u16)> {
    let mut out = Vec::with_capacity(nruns);
    let mut in_run = false;
    let mut start = 0usize;
    for (wi, &w) in block.iter().enumerate() {
        if !in_run && w == 0 {
            continue;
        }
        if in_run && w == !0u64 {
            continue;
        }
        for b in 0..64 {
            let bit = w >> b & 1 == 1;
            let pos = wi * 64 + b;
            if bit && !in_run {
                start = pos;
            }
            if !bit && in_run {
                out.push((start as u16, (pos - 1) as u16));
            }
            in_run = bit;
        }
    }
    if in_run {
        out.push((start as u16, (CHUNK_BITS - 1) as u16));
    }
    out
}

/// Deep-copy a view into an owned container of the same shape (word
/// views shorter than a full block are zero-padded).
pub(crate) fn to_container(v: ChunkView<'_>) -> Container {
    match v {
        ChunkView::Empty => Container::Empty,
        ChunkView::Array(a) => {
            if a.is_empty() {
                Container::Empty
            } else {
                Container::Array(a.to_vec())
            }
        }
        ChunkView::Runs(rs) => {
            if rs.is_empty() {
                Container::Empty
            } else {
                Container::Runs(rs.to_vec())
            }
        }
        ChunkView::Words(ws) => {
            let mut b = Box::new([0u64; CHUNK_WORDS]);
            b[..ws.len()].copy_from_slice(ws);
            from_shaped_words(b)
        }
    }
}

/// Keep a word block as a `Words` container unless it is empty.
fn from_shaped_words(b: Box<[u64; CHUNK_WORDS]>) -> Container {
    if b.iter().all(|&w| w == 0) {
        Container::Empty
    } else {
        Container::Words(b)
    }
}

/// `|a ∩ b|` without materialising — the INDEP-search hot kernel, with
/// a fast path per shape pair.
pub(crate) fn and_count_views(a: ChunkView<'_>, b: ChunkView<'_>) -> usize {
    use ChunkView as V;
    match (a, b) {
        (V::Empty, _) | (_, V::Empty) => 0,
        (V::Array(x), V::Array(y)) => {
            // Two-pointer merge over sorted offsets.
            let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
            while i < x.len() && j < y.len() {
                match x[i].cmp(&y[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        n += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            n
        }
        (V::Array(x), other) | (other, V::Array(x)) => {
            x.iter().filter(|&&v| view_contains(other, v)).count()
        }
        (V::Words(x), V::Words(y)) => x
            .iter()
            .zip(y)
            .map(|(p, q)| (p & q).count_ones() as usize)
            .sum(),
        (V::Runs(rs), V::Words(ws)) | (V::Words(ws), V::Runs(rs)) => rs
            .iter()
            .map(|&(s, e)| popcount_range(ws, s as usize, e as usize))
            .sum(),
        (V::Runs(x), V::Runs(y)) => {
            // Two-pointer interval intersection.
            let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
            while i < x.len() && j < y.len() {
                let lo = x[i].0.max(y[j].0) as usize;
                let hi = x[i].1.min(y[j].1) as usize;
                if lo <= hi {
                    n += hi - lo + 1;
                }
                if x[i].1 <= y[j].1 {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            n
        }
    }
}

/// Popcount of the inclusive bit range `[s, e]` of a word slice (words
/// beyond the slice are implicitly zero).
fn popcount_range(ws: &[u64], s: usize, e: usize) -> usize {
    let get = |i: usize| ws.get(i).copied().unwrap_or(0);
    let (wa, wb) = (s / 64, e / 64);
    let ma = !0u64 << (s % 64);
    let mb = !0u64 >> (63 - e % 64);
    if wa == wb {
        return (get(wa) & ma & mb).count_ones() as usize;
    }
    let mut n = (get(wa) & ma).count_ones() as usize + (get(wb) & mb).count_ones() as usize;
    if wa + 1 < ws.len() {
        for w in &ws[wa + 1..wb.min(ws.len())] {
            n += w.count_ones() as usize;
        }
    }
    n
}

/// `a ∩ b` as a canonical container.
pub(crate) fn and_views(a: ChunkView<'_>, b: ChunkView<'_>) -> Container {
    use ChunkView as V;
    match (a, b) {
        (V::Empty, _) | (_, V::Empty) => Container::Empty,
        (V::Array(x), other) | (other, V::Array(x)) => {
            let vals: Vec<u16> = x
                .iter()
                .copied()
                .filter(|&v| view_contains(other, v))
                .collect();
            if vals.is_empty() {
                Container::Empty
            } else {
                Container::Array(vals)
            }
        }
        _ => {
            let mut ba = [0u64; CHUNK_WORDS];
            let mut bb = [0u64; CHUNK_WORDS];
            to_block(a, &mut ba);
            to_block(b, &mut bb);
            for (p, q) in ba.iter_mut().zip(bb.iter()) {
                *p &= q;
            }
            from_block(&ba)
        }
    }
}

/// `a ∪ b` as a canonical container.
pub(crate) fn or_views(a: ChunkView<'_>, b: ChunkView<'_>) -> Container {
    use ChunkView as V;
    match (a, b) {
        (V::Empty, v) | (v, V::Empty) => to_container(v),
        _ => {
            let mut ba = [0u64; CHUNK_WORDS];
            let mut bb = [0u64; CHUNK_WORDS];
            to_block(a, &mut ba);
            to_block(b, &mut bb);
            for (p, q) in ba.iter_mut().zip(bb.iter()) {
                *p |= q;
            }
            from_block(&ba)
        }
    }
}

/// `a \ b` as a canonical container.
pub(crate) fn andnot_views(a: ChunkView<'_>, b: ChunkView<'_>) -> Container {
    use ChunkView as V;
    match (a, b) {
        (V::Empty, _) => Container::Empty,
        (v, V::Empty) => to_container(v),
        (V::Array(x), other) => {
            let vals: Vec<u16> = x
                .iter()
                .copied()
                .filter(|&v| !view_contains(other, v))
                .collect();
            if vals.is_empty() {
                Container::Empty
            } else {
                Container::Array(vals)
            }
        }
        _ => {
            let mut ba = [0u64; CHUNK_WORDS];
            let mut bb = [0u64; CHUNK_WORDS];
            to_block(a, &mut ba);
            to_block(b, &mut bb);
            for (p, q) in ba.iter_mut().zip(bb.iter()) {
                *p &= !q;
            }
            from_block(&ba)
        }
    }
}

/// Complement of `a` within the chunk's first `limit` bits (the last
/// chunk of a bitmap is partial; `limit < CHUNK_BITS` masks its tail).
pub(crate) fn not_view(a: ChunkView<'_>, limit: usize) -> Container {
    debug_assert!(0 < limit && limit <= CHUNK_BITS);
    match a {
        ChunkView::Empty => Container::Runs(vec![(0, (limit - 1) as u16)]),
        ChunkView::Runs(rs) => {
            // Walk the gaps; the complement has at most runs+1 runs.
            let mut out = Vec::with_capacity(rs.len() + 1);
            let mut next = 0usize;
            for &(s, e) in rs {
                let s = s as usize;
                if s >= limit {
                    break;
                }
                if s > next {
                    out.push((next as u16, (s - 1) as u16));
                }
                next = e as usize + 1;
            }
            if next < limit {
                out.push((next as u16, (limit - 1) as u16));
            }
            if out.is_empty() {
                Container::Empty
            } else {
                Container::Runs(out)
            }
        }
        _ => {
            let mut b = [0u64; CHUNK_WORDS];
            to_block(a, &mut b);
            for w in b.iter_mut() {
                *w = !*w;
            }
            mask_block_tail(&mut b, limit);
            from_block(&b)
        }
    }
}

/// Zero every bit at position `≥ limit` in a block.
pub(crate) fn mask_block_tail(block: &mut [u64; CHUNK_WORDS], limit: usize) {
    debug_assert!(limit <= CHUNK_BITS);
    if limit == CHUNK_BITS {
        return;
    }
    let wl = limit / 64;
    if !limit.is_multiple_of(64) {
        block[wl] &= (1u64 << (limit % 64)) - 1;
        block[wl + 1..].fill(0);
    } else {
        block[wl..].fill(0);
    }
}

/// Ascending iterator over the set-bit offsets of one chunk view.
pub(crate) enum ContainerIter<'a> {
    /// Nothing to yield.
    Empty,
    /// Walk the sorted offsets.
    Array(std::slice::Iter<'a, u16>),
    /// Walk the intervals, expanding each.
    Runs {
        /// Remaining runs (`idx` indexes into this).
        runs: &'a [(u16, u16)],
        /// Current run.
        idx: usize,
        /// Next offset to yield (clamped up to the current run's start).
        next: u32,
    },
    /// Walk the words, clearing the lowest set bit of `cur`.
    Words {
        /// The chunk's words.
        words: &'a [u64],
        /// Current word index.
        wi: usize,
        /// Remaining bits of the current word.
        cur: u64,
    },
}

/// Iterate a chunk view's set bits in ascending order.
pub(crate) fn view_iter(v: ChunkView<'_>) -> ContainerIter<'_> {
    match v {
        ChunkView::Empty => ContainerIter::Empty,
        ChunkView::Array(a) => ContainerIter::Array(a.iter()),
        ChunkView::Runs(rs) => ContainerIter::Runs {
            runs: rs,
            idx: 0,
            next: 0,
        },
        ChunkView::Words(ws) => ContainerIter::Words {
            words: ws,
            wi: 0,
            cur: ws.first().copied().unwrap_or(0),
        },
    }
}

impl Iterator for ContainerIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            ContainerIter::Empty => None,
            ContainerIter::Array(it) => it.next().map(|&v| v as u32),
            ContainerIter::Runs { runs, idx, next } => {
                let &(s, e) = runs.get(*idx)?;
                if *next < s as u32 {
                    *next = s as u32;
                }
                let v = *next;
                if v >= e as u32 {
                    *idx += 1;
                    *next = 0;
                } else {
                    *next = v + 1;
                }
                Some(v)
            }
            ContainerIter::Words { words, wi, cur } => {
                while *cur == 0 {
                    *wi += 1;
                    if *wi >= words.len() {
                        return None;
                    }
                    *cur = words[*wi];
                }
                let bit = cur.trailing_zeros();
                *cur &= *cur - 1;
                Some(*wi as u32 * 64 + bit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_of(bits: &[usize]) -> [u64; CHUNK_WORDS] {
        let mut b = [0u64; CHUNK_WORDS];
        for &i in bits {
            b[i / 64] |= 1u64 << (i % 64);
        }
        b
    }

    #[test]
    fn from_block_picks_the_smallest_shape() {
        // Sparse scattered bits → array.
        let sparse = block_of(&[0, 100, 9_999, 65_535]);
        assert!(matches!(from_block(&sparse), Container::Array(a) if a.len() == 4));
        // One solid stretch → runs (4 bytes beats 2·card as soon as card > 2).
        let mut solid = [0u64; CHUNK_WORDS];
        set_range_in_block(&mut solid, 10, 60_000);
        assert!(matches!(from_block(&solid), Container::Runs(r) if r == vec![(10, 60_000)]));
        // Everything set → a single run.
        let full = [!0u64; CHUNK_WORDS];
        assert!(matches!(from_block(&full), Container::Runs(r) if r == vec![(0, 65_535)]));
        // Alternating bits → no structure, keep the words.
        let mut alt = [0u64; CHUNK_WORDS];
        for w in alt.iter_mut() {
            *w = 0xAAAA_AAAA_AAAA_AAAA;
        }
        assert!(matches!(from_block(&alt), Container::Words(_)));
        // Nothing set → empty.
        assert!(matches!(from_block(&[0u64; CHUNK_WORDS]), Container::Empty));
    }

    #[test]
    fn exactly_array_max_values_stay_an_array_one_more_promotes() {
        let mut c = Container::Empty;
        // 4096 widely spaced values (stride 16 keeps runs expensive).
        for i in 0..ARRAY_MAX as u32 {
            c.insert((i * 16) as u16);
        }
        assert!(matches!(&c, Container::Array(a) if a.len() == ARRAY_MAX));
        c.insert(1); // 4097th distinct value
        assert!(
            !matches!(&c, Container::Array(_)),
            "array failed to promote"
        );
        assert_eq!(c.card(), ARRAY_MAX + 1);
        assert!(c.contains(1) && c.contains(16) && !c.contains(2));
    }

    #[test]
    fn ascending_array_fill_promotes_to_runs_not_words() {
        // 0..=4096 contiguous: after promotion the canonical shape is a
        // single run, not an 8 KiB block.
        let mut c = Container::Empty;
        for i in 0..=ARRAY_MAX as u32 {
            c.insert(i as u16);
        }
        assert!(matches!(&c, Container::Runs(r) if r == &vec![(0, ARRAY_MAX as u16)]));
    }

    #[test]
    fn run_insert_merges_and_splits() {
        let mut c = Container::Runs(vec![(10, 20), (30, 40)]);
        c.insert(25);
        assert!(matches!(&c, Container::Runs(r) if r == &vec![(10, 20), (25, 25), (30, 40)]));
        c.insert(21); // extends first run
        c.insert(24); // extends the middle singleton downward… then:
        c.insert(22);
        c.insert(23); // bridges 10..=25
        assert!(matches!(&c, Container::Runs(r) if r[0] == (10, 25)));
        c.remove(15);
        assert!(matches!(&c, Container::Runs(r) if r[0] == (10, 14) && r[1] == (16, 25)));
        c.remove(10);
        c.remove(25);
        assert!(c.contains(11) && c.contains(24) && !c.contains(10) && !c.contains(25));
    }

    #[test]
    fn view_contains_and_card_agree_across_shapes() {
        let bits: Vec<usize> = (0..CHUNK_BITS)
            .filter(|i| i % 97 == 0 || i / 7 % 13 == 0)
            .collect();
        let block = block_of(&bits);
        let canonical = from_block(&block);
        let words = Container::Words(Box::new(block));
        for c in [&canonical, &words] {
            assert_eq!(c.card(), bits.len());
            for &i in &bits[..200.min(bits.len())] {
                assert!(c.contains(i as u16));
            }
            assert!(!c.contains(8)); // 8 % 97 != 0 and (8/7) % 13 != 0
        }
        assert_eq!(and_count_views(canonical.view(), words.view()), bits.len());
    }

    #[test]
    fn and_count_matches_block_math_for_every_shape_pair() {
        let a_bits: Vec<usize> = (0..CHUNK_BITS).step_by(3).collect();
        let b_bits: Vec<usize> = (1000..30_000).collect();
        let (ba, bb) = (block_of(&a_bits), block_of(&b_bits));
        let expect: usize = ba
            .iter()
            .zip(bb.iter())
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum();
        let shapes_a = [from_block(&ba), Container::Words(Box::new(ba))];
        let shapes_b = [from_block(&bb), Container::Words(Box::new(bb))];
        for x in &shapes_a {
            for y in &shapes_b {
                assert_eq!(and_count_views(x.view(), y.view()), expect);
                assert_eq!(and_views(x.view(), y.view()).card(), expect);
            }
        }
    }

    #[test]
    fn not_view_of_runs_walks_gaps() {
        let c = Container::Runs(vec![(0, 9), (20, 29)]);
        let n = not_view(c.view(), 40);
        assert!(matches!(&n, Container::Runs(r) if r == &vec![(10, 19), (30, 39)]));
        let full = not_view(ChunkView::Empty, CHUNK_BITS);
        assert!(matches!(&full, Container::Runs(r) if r == &vec![(0, 65_535)]));
        assert!(matches!(
            not_view(full.view(), CHUNK_BITS),
            Container::Empty
        ));
    }

    #[test]
    fn container_iter_is_ascending_for_every_shape() {
        let bits: Vec<u32> = vec![0, 1, 63, 64, 65, 1000, 65_535];
        let block = block_of(&bits.iter().map(|&b| b as usize).collect::<Vec<_>>());
        for c in [
            from_block(&block),
            Container::Words(Box::new(block)),
            Container::Runs(vec![(0, 1), (63, 65), (1000, 1000), (65_535, 65_535)]),
        ] {
            assert_eq!(view_iter(c.view()).collect::<Vec<_>>(), bits);
        }
        assert_eq!(view_iter(ChunkView::Empty).count(), 0);
    }
}
