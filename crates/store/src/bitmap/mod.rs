//! Selection bitmaps: the vectorised "selection vector" of the engine.
//!
//! Every predicate evaluation produces a [`Bitmap`] with one bit per row of
//! the table. Conjunctions are bitwise ANDs, segment disjointness checks
//! are AND + count, covers are popcounts. Keeping selections as bitmaps is
//! what makes the advisor's inner loop (thousands of intersection counts
//! during INDEP search) cheap.
//!
//! # Two representations, one value
//!
//! A `Bitmap` stores its bits in one of two interchangeable layouts:
//!
//! * **Dense** — one flat `Vec<u64>`, 1 bit per addressable row. Simple
//!   and cache-friendly, but a selection over 10⁸ rows costs ~12 MB no
//!   matter how few rows it actually selects.
//! * **Compressed** — Roaring-style: the row space is cut into 64 Ki-bit
//!   chunks, each stored as a sorted `u16` array (sparse), a run list
//!   (solid stretches — an all-set chunk is 4 bytes), or a dense word
//!   block (no structure), whichever is smallest. A drill-down selecting
//!   10 k of 10⁸ rows drops from ~12 MB to tens of KB. See
//!   the `compressed` module for the container shapes and promotion
//!   rules.
//!
//! The representation is **never observable through results**: equality,
//! hashing, iteration and every set operation are defined on content, and
//! mixed-representation operands are legal everywhere (each operation
//! dispatches per chunk; a dense bitmap's chunks are plain word-slice
//! views). `tests/bitmap_containers.rs` pins this with a differential
//! battery replaying random op sequences against the dense layout as a
//! bitwise oracle, and `tests/backend_contract.rs` pins bitwise-equal
//! advisor output over both layouts.
//!
//! Which layout new bitmaps get is a process-wide default: dense, unless
//! the `compressed-bitmap` cargo feature or `CHARLES_BITMAP=compressed`
//! says otherwise (see [`set_compressed_selections`]). Operations follow
//! their operands (`slice` keeps `self`'s layout, binary ops yield a
//! compressed result iff either operand is compressed), so a process
//! stays in one layout unless told otherwise.

use std::borrow::Cow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU8, Ordering};

pub(crate) mod compressed;

use compressed::{ChunkView, Container, CHUNK_BITS, CHUNK_WORDS};

const WORD_BITS: usize = 64;

const MODE_UNSET: u8 = 0;
const MODE_DENSE: u8 = 1;
const MODE_COMPRESSED: u8 = 2;

/// Process-wide default layout for newly constructed bitmaps, resolved
/// lazily from (in order) [`set_compressed_selections`], the
/// `CHARLES_BITMAP` env var (`dense` / `compressed`), and the
/// `compressed-bitmap` cargo feature.
static BITMAP_MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn compressed_default() -> bool {
    match BITMAP_MODE.load(Ordering::Relaxed) {
        MODE_DENSE => false,
        MODE_COMPRESSED => true,
        _ => {
            let on = match std::env::var("CHARLES_BITMAP").as_deref() {
                Ok("compressed") => true,
                Ok("dense") => false,
                _ => cfg!(feature = "compressed-bitmap"),
            };
            BITMAP_MODE.store(
                if on { MODE_COMPRESSED } else { MODE_DENSE },
                Ordering::Relaxed,
            );
            on
        }
    }
}

/// Override the process-wide default layout for new bitmaps:
/// `Some(true)` → compressed, `Some(false)` → dense, `None` → forget the
/// override and re-read `CHARLES_BITMAP` / the `compressed-bitmap`
/// feature on next use. Existing bitmaps keep their layout; results are
/// bitwise identical either way (that is the point — this switch trades
/// memory against per-op constant factors, never answers).
pub fn set_compressed_selections(mode: Option<bool>) {
    BITMAP_MODE.store(
        match mode {
            Some(true) => MODE_COMPRESSED,
            Some(false) => MODE_DENSE,
            None => MODE_UNSET,
        },
        Ordering::Relaxed,
    );
}

/// The layout newly constructed bitmaps currently get (see
/// [`set_compressed_selections`]).
pub fn compressed_selections() -> bool {
    compressed_default()
}

/// A fixed-length bitmap over row indices `0..len`.
#[derive(Clone)]
pub struct Bitmap {
    repr: Repr,
    len: usize,
}

/// The two physical layouts (see the module docs).
#[derive(Clone)]
enum Repr {
    /// Flat little-endian word layout: bit `i` at word `i/64`.
    Dense(Vec<u64>),
    /// One container per 64 Ki-bit chunk, indexed by `i >> 16`.
    Chunks(Vec<Container>),
}

fn n_chunks(len: usize) -> usize {
    len.div_ceil(CHUNK_BITS)
}

impl Bitmap {
    /// All-zeros bitmap of the given length.
    pub fn new(len: usize) -> Bitmap {
        if compressed_default() {
            Bitmap {
                repr: Repr::Chunks(vec![Container::Empty; n_chunks(len)]),
                len,
            }
        } else {
            Bitmap {
                repr: Repr::Dense(vec![0; len.div_ceil(WORD_BITS)]),
                len,
            }
        }
    }

    /// All-ones bitmap of the given length.
    pub fn ones(len: usize) -> Bitmap {
        if compressed_default() {
            let cs = (0..n_chunks(len))
                .map(|ci| Container::Runs(vec![(0, (chunk_limit(len, ci) - 1) as u16)]))
                .collect();
            Bitmap {
                repr: Repr::Chunks(cs),
                len,
            }
        } else {
            let mut bm = Bitmap {
                repr: Repr::Dense(vec![u64::MAX; len.div_ceil(WORD_BITS)]),
                len,
            };
            bm.clear_tail();
            bm
        }
    }

    /// Build from an iterator of row indices (need not be sorted).
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Bitmap {
        let mut bm = Bitmap::new(len);
        for i in indices {
            bm.set(i);
        }
        bm
    }

    /// Number of addressable rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap addresses zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when this bitmap uses the compressed chunk layout.
    pub fn is_compressed(&self) -> bool {
        matches!(self.repr, Repr::Chunks(_))
    }

    /// Heap bytes this bitmap's payload occupies: `words·8` for the
    /// dense layout, per-container payload plus the fixed per-chunk
    /// container header for the compressed one. Deterministic (capacity
    /// slack is not counted) — this is the "resident selection bytes"
    /// figure `BENCH_store.json` gates on.
    pub fn resident_bytes(&self) -> usize {
        match &self.repr {
            Repr::Dense(w) => w.len() * 8,
            Repr::Chunks(cs) => cs
                .iter()
                .map(|c| std::mem::size_of::<Container>() + c.heap_bytes())
                .sum(),
        }
    }

    /// This bitmap's content in the compressed layout (clone if already
    /// compressed). Canonicalises every chunk into its smallest shape.
    pub fn compress(&self) -> Bitmap {
        match &self.repr {
            Repr::Chunks(_) => self.clone(),
            Repr::Dense(w) => {
                let mut cs = Vec::with_capacity(n_chunks(self.len));
                let mut block = [0u64; CHUNK_WORDS];
                for ci in 0..n_chunks(self.len) {
                    let s = ci * CHUNK_WORDS;
                    let e = ((ci + 1) * CHUNK_WORDS).min(w.len());
                    block.fill(0);
                    block[..e - s].copy_from_slice(&w[s..e]);
                    cs.push(compressed::from_block(&block));
                }
                Bitmap {
                    repr: Repr::Chunks(cs),
                    len: self.len,
                }
            }
        }
    }

    /// This bitmap's content in the dense layout (clone if already
    /// dense).
    pub fn to_dense(&self) -> Bitmap {
        match &self.repr {
            Repr::Dense(_) => self.clone(),
            Repr::Chunks(_) => {
                let mut words = Vec::with_capacity(self.len.div_ceil(WORD_BITS));
                self.for_each_word(|w| words.push(w));
                Bitmap {
                    repr: Repr::Dense(words),
                    len: self.len,
                }
            }
        }
    }

    /// Set bit `i`. Panics if out of range (programming error).
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        match &mut self.repr {
            Repr::Dense(w) => w[i / WORD_BITS] |= 1u64 << (i % WORD_BITS),
            Repr::Chunks(cs) => cs[i / CHUNK_BITS].insert((i % CHUNK_BITS) as u16),
        }
    }

    /// Clear bit `i`.
    pub fn unset(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        match &mut self.repr {
            Repr::Dense(w) => w[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS)),
            Repr::Chunks(cs) => cs[i / CHUNK_BITS].remove((i % CHUNK_BITS) as u16),
        }
    }

    /// Read bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        match &self.repr {
            Repr::Dense(w) => w[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1,
            Repr::Chunks(cs) => cs[i / CHUNK_BITS].contains((i % CHUNK_BITS) as u16),
        }
    }

    /// Number of set bits (the *count over a predicate* of the paper).
    pub fn count_ones(&self) -> usize {
        match &self.repr {
            Repr::Dense(w) => w.iter().map(|x| x.count_ones() as usize).sum(),
            Repr::Chunks(cs) => cs.iter().map(|c| c.card()).sum(),
        }
    }

    /// True if no bit is set.
    pub fn none(&self) -> bool {
        match &self.repr {
            Repr::Dense(w) => w.iter().all(|&x| x == 0),
            Repr::Chunks(cs) => cs.iter().all(|c| c.card() == 0),
        }
    }

    /// One chunk's content as a layout-agnostic view (the per-chunk
    /// dispatch point every mixed-representation operation goes
    /// through).
    fn chunk_view(&self, ci: usize) -> ChunkView<'_> {
        match &self.repr {
            Repr::Dense(w) => {
                let start = ci * CHUNK_WORDS;
                let end = ((ci + 1) * CHUNK_WORDS).min(w.len());
                ChunkView::Words(&w[start..end])
            }
            Repr::Chunks(cs) => cs[ci].view(),
        }
    }

    /// Chunk-wise binary operation; used whenever at least one operand
    /// is compressed, so the result is compressed too.
    fn zip_chunks(
        &self,
        other: &Bitmap,
        op: fn(ChunkView<'_>, ChunkView<'_>) -> Container,
    ) -> Bitmap {
        let cs = (0..n_chunks(self.len))
            .map(|ci| op(self.chunk_view(ci), other.chunk_view(ci)))
            .collect();
        Bitmap {
            repr: Repr::Chunks(cs),
            len: self.len,
        }
    }

    /// In-place intersection with another bitmap of the same length.
    pub fn and_inplace(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        if let (Repr::Dense(a), Repr::Dense(b)) = (&mut self.repr, &other.repr) {
            for (x, y) in a.iter_mut().zip(b) {
                *x &= *y;
            }
        } else {
            *self = self.zip_chunks(other, compressed::and_views);
        }
    }

    /// New bitmap: `self ∩ other`.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => Bitmap {
                repr: Repr::Dense(a.iter().zip(b).map(|(x, y)| x & y).collect()),
                len: self.len,
            },
            _ => self.zip_chunks(other, compressed::and_views),
        }
    }

    /// New bitmap: `self ∪ other`.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => Bitmap {
                repr: Repr::Dense(a.iter().zip(b).map(|(x, y)| x | y).collect()),
                len: self.len,
            },
            _ => self.zip_chunks(other, compressed::or_views),
        }
    }

    /// New bitmap: `self \ other`.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => Bitmap {
                repr: Repr::Dense(a.iter().zip(b).map(|(x, y)| x & !y).collect()),
                len: self.len,
            },
            _ => self.zip_chunks(other, compressed::andnot_views),
        }
    }

    /// New bitmap: complement within `0..len`.
    pub fn not(&self) -> Bitmap {
        match &self.repr {
            Repr::Dense(w) => {
                let mut out = Bitmap {
                    repr: Repr::Dense(w.iter().map(|x| !x).collect()),
                    len: self.len,
                };
                out.clear_tail();
                out
            }
            Repr::Chunks(_) => {
                let cs = (0..n_chunks(self.len))
                    .map(|ci| compressed::not_view(self.chunk_view(ci), chunk_limit(self.len, ci)))
                    .collect();
                Bitmap {
                    repr: Repr::Chunks(cs),
                    len: self.len,
                }
            }
        }
    }

    /// `|self ∩ other|` without materialising the intersection — the hot
    /// operation of INDEP search (pairwise product cell counts).
    pub fn and_count(&self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum(),
            _ => (0..n_chunks(self.len))
                .map(|ci| compressed::and_count_views(self.chunk_view(ci), other.chunk_view(ci)))
                .sum(),
        }
    }

    /// True if the two bitmaps share no set bit (segment disjointness).
    pub fn is_disjoint(&self, other: &Bitmap) -> bool {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => a.iter().zip(b).all(|(x, y)| x & y == 0),
            _ => (0..n_chunks(self.len)).all(|ci| {
                compressed::and_count_views(self.chunk_view(ci), other.chunk_view(ci)) == 0
            }),
        }
    }

    /// True if every set bit of `self` is set in `other`.
    pub fn is_subset_of(&self, other: &Bitmap) -> bool {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => a.iter().zip(b).all(|(x, y)| x & !y == 0),
            _ => (0..n_chunks(self.len)).all(|ci| {
                let a = self.chunk_view(ci);
                compressed::and_count_views(a, other.chunk_view(ci)) == compressed::view_card(a)
            }),
        }
    }

    /// Append one bit, growing the bitmap by one row (amortized O(1)).
    /// Used by load paths that build validity masks incrementally.
    pub fn push(&mut self, value: bool) {
        // Invariant: no bit beyond `len` may be set — otherwise the
        // pushed position could inherit a stale bit from a previous
        // occupant. All constructors uphold this (see `clear_tail`), so
        // a dirty tail is a bug; restore the pushed position anyway so
        // `push` never silently corrupts the new row.
        debug_assert!(self.tail_is_clear(), "stale bits beyond len {}", self.len);
        let i = self.len;
        self.len += 1;
        match &mut self.repr {
            Repr::Dense(w) => {
                // Cheap full repair for the dense layout (last word only).
                let tail = i % WORD_BITS;
                if tail != 0 {
                    if let Some(last) = w.last_mut() {
                        *last &= (1u64 << tail) - 1;
                    }
                }
                if w.len() * WORD_BITS < self.len {
                    w.push(0);
                }
                if value {
                    w[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
                }
            }
            Repr::Chunks(cs) => {
                if cs.len() * CHUNK_BITS < self.len {
                    cs.push(Container::Empty);
                }
                let c = &mut cs[i / CHUNK_BITS];
                let v = (i % CHUNK_BITS) as u16;
                if value {
                    c.insert(v);
                } else if c.contains(v) {
                    c.remove(v); // repair a stale bit at the pushed row
                }
            }
        }
    }

    /// Append all bits of `other` after the bits of `self` (offset-aware:
    /// bit `i` of `other` lands at `self.len() + i`). This is the shard
    /// concatenation primitive — per-shard selection bitmaps glue back
    /// into one table-wide selection in shard order.
    pub fn append(&mut self, other: &Bitmap) {
        if other.len == 0 {
            return;
        }
        if matches!(self.repr, Repr::Chunks(_)) {
            let old_len = self.len;
            self.len += other.len;
            let Repr::Chunks(cs) = &mut self.repr else {
                unreachable!() // lint:allow(panic) the matches! guard on this branch proves the layout
            };
            cs.resize(n_chunks(old_len + other.len), Container::Empty);
            blit(cs, old_len, other, 0, other.len);
        } else {
            self.append_words(&other.words(), other.len);
        }
    }

    /// Dense-layout append: shift `olen` bits of `ow` onto the tail.
    fn append_words(&mut self, ow: &[u64], olen: usize) {
        let new_len = self.len + olen;
        let shift = self.len % WORD_BITS;
        let Repr::Dense(words) = &mut self.repr else {
            unreachable!("append_words is only called on the dense layout") // lint:allow(panic) sole caller is the dense branch of append
        };
        if shift == 0 {
            words.extend_from_slice(ow);
        } else {
            let inv = WORD_BITS - shift;
            for &w in ow {
                *words
                    .last_mut()
                    .expect("non-word-aligned len implies at least one word") // lint:allow(panic) len % 64 != 0 implies a non-empty word vec
                    |= w << shift;
                words.push(w >> inv);
            }
        }
        words.truncate(new_len.div_ceil(WORD_BITS));
        self.len = new_len;
        self.clear_tail();
    }

    /// Concatenate bitmaps in order: row `i` of part `k` becomes row
    /// `len(part 0) + … + len(part k-1) + i` of the result.
    pub fn concat<'a>(parts: impl IntoIterator<Item = &'a Bitmap>) -> Bitmap {
        let mut out = Bitmap::new(0);
        for p in parts {
            out.append(p);
        }
        out
    }

    /// The sub-bitmap covering rows `start..end` (bit `start + i` of
    /// `self` becomes bit `i`). Inverse of [`Bitmap::append`]; sharded
    /// backends use it to restrict a table-wide selection to one shard's
    /// row range. Keeps `self`'s layout.
    pub fn slice(&self, start: usize, end: usize) -> Bitmap {
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of range {}",
            self.len
        );
        match &self.repr {
            Repr::Dense(words) => {
                let mut ow = vec![0u64; (end - start).div_ceil(WORD_BITS)];
                let shift = start % WORD_BITS;
                let first = start / WORD_BITS;
                for (k, out_word) in ow.iter_mut().enumerate() {
                    let lo = words[first + k] >> shift;
                    let hi = if shift == 0 {
                        0
                    } else {
                        words
                            .get(first + k + 1)
                            .map_or(0, |w| w << (WORD_BITS - shift))
                    };
                    *out_word = lo | hi;
                }
                let mut out = Bitmap {
                    repr: Repr::Dense(ow),
                    len: end - start,
                };
                out.clear_tail();
                out
            }
            Repr::Chunks(_) => {
                let mut cs = vec![Container::Empty; n_chunks(end - start)];
                blit(&mut cs, 0, self, start, end);
                Bitmap {
                    repr: Repr::Chunks(cs),
                    len: end - start,
                }
            }
        }
    }

    /// The flat 64-bit word layout (bit `i` lives at word `i / 64`, bit
    /// position `i % 64`; bits beyond `len` in the last word are zero).
    /// This is the layout the on-disk `.charles` format serialises
    /// verbatim — see `docs/FORMAT.md`. Borrowed for dense bitmaps,
    /// materialised on the fly for compressed ones.
    pub fn words(&self) -> Cow<'_, [u64]> {
        match &self.repr {
            Repr::Dense(w) => Cow::Borrowed(w.as_slice()),
            Repr::Chunks(_) => {
                let mut words = Vec::with_capacity(self.len.div_ceil(WORD_BITS));
                self.for_each_word(|w| words.push(w));
                Cow::Owned(words)
            }
        }
    }

    /// Rebuild a bitmap from its word layout (inverse of
    /// [`Bitmap::words`]). Returns `None` when `words` is not exactly
    /// `len.div_ceil(64)` words long or a bit beyond `len` is set — the
    /// two ways a deserialised buffer can violate the invariants every
    /// other operation assumes. The result follows the process-wide
    /// default layout.
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<Bitmap> {
        if words.len() != len.div_ceil(WORD_BITS) {
            return None;
        }
        let bm = Bitmap {
            repr: Repr::Dense(words),
            len,
        };
        if !bm.tail_is_clear() {
            return None;
        }
        Some(if compressed_default() {
            bm.compress()
        } else {
            bm
        })
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            state: match &self.repr {
                Repr::Dense(w) => IterState::Dense {
                    words: w,
                    word_idx: 0,
                    current: w.first().copied().unwrap_or(0),
                },
                Repr::Chunks(cs) => IterState::Chunks {
                    bitmap: self,
                    chunk_idx: 0,
                    inner: compressed::view_iter(cs.first().map_or(ChunkView::Empty, |c| c.view())),
                },
            },
        }
    }

    /// Feed the canonical word layout to `f`, word by word (exactly
    /// `len.div_ceil(64)` words; the basis for [`Bitmap::words`] and
    /// the layout-independent [`Hash`]).
    fn for_each_word(&self, mut f: impl FnMut(u64)) {
        match &self.repr {
            Repr::Dense(w) => w.iter().for_each(|&x| f(x)),
            Repr::Chunks(cs) => {
                let total = self.len.div_ceil(WORD_BITS);
                let mut emitted = 0usize;
                let mut block = [0u64; CHUNK_WORDS];
                for c in cs {
                    compressed::to_block(c.view(), &mut block);
                    let take = (total - emitted).min(CHUNK_WORDS);
                    for &w in &block[..take] {
                        f(w);
                    }
                    emitted += take;
                }
            }
        }
    }

    /// True when no bit beyond `len` is set — the invariant every public
    /// operation must preserve (popcounts, complements and appends all
    /// assume it). For the compressed layout this means: exactly
    /// `len.div_ceil(2¹⁶)` chunks, and no container stores an offset at
    /// or beyond its chunk's limit.
    pub(crate) fn tail_is_clear(&self) -> bool {
        match &self.repr {
            Repr::Dense(words) => {
                let tail = self.len % WORD_BITS;
                tail == 0
                    || words
                        .last()
                        .is_none_or(|last| last & !((1u64 << tail) - 1) == 0)
            }
            Repr::Chunks(cs) => {
                cs.len() == n_chunks(self.len)
                    && cs
                        .iter()
                        .enumerate()
                        .all(|(ci, c)| c.max().is_none_or(|m| m < chunk_limit(self.len, ci)))
            }
        }
    }

    /// Zero out the bits beyond `len` (dense layout only — the
    /// compressed constructors never produce a dirty tail).
    fn clear_tail(&mut self) {
        if let Repr::Dense(words) = &mut self.repr {
            let tail = self.len % WORD_BITS;
            if tail != 0 {
                if let Some(last) = words.last_mut() {
                    *last &= (1u64 << tail) - 1;
                }
            }
        }
    }
}

/// Valid bits in chunk `ci` of a bitmap of length `len` (the last chunk
/// is usually partial).
fn chunk_limit(len: usize, ci: usize) -> usize {
    if (ci + 1) * CHUNK_BITS <= len {
        CHUNK_BITS
    } else {
        len - ci * CHUNK_BITS
    }
}

/// OR bits `src_start..src_end` of `src` into `dst` starting at bit
/// offset `dst_off`, then re-canonicalise every touched chunk. The
/// engine of compressed `append`/`slice`/`concat`: per touched
/// destination chunk it materialises an 8 KiB block, ORs in the mapped
/// source bits (word-shift fast path for dense source chunks, range
/// fills for runs, point sets for arrays), and lets
/// [`compressed::from_block`] pick the smallest shape again.
fn blit(dst: &mut [Container], dst_off: usize, src: &Bitmap, src_start: usize, src_end: usize) {
    if src_start >= src_end {
        return;
    }
    let dst_start = dst_off;
    let dst_end = dst_off + (src_end - src_start);
    let mut block = [0u64; CHUNK_WORDS];
    let (dc_first, dc_last) = (dst_start / CHUNK_BITS, (dst_end - 1) / CHUNK_BITS);
    for (dc, dst_c) in dst.iter_mut().enumerate().take(dc_last + 1).skip(dc_first) {
        let dc_base = dc * CHUNK_BITS;
        compressed::to_block(dst_c.view(), &mut block);
        let d_lo = dst_start.max(dc_base);
        let d_hi = dst_end.min(dc_base + CHUNK_BITS);
        // Bit `s` of the source lands at block bit `s + off`.
        let off = dst_off as i64 - src_start as i64 - dc_base as i64;
        or_src_range(
            &mut block,
            src,
            d_lo - dst_off + src_start,
            d_hi - dst_off + src_start,
            off,
        );
        *dst_c = compressed::from_block(&block);
    }
}

/// OR source bits `[s_lo, s_hi)` into `block`, where source bit `s`
/// maps to block bit `s + off` (guaranteed in range by the caller).
fn or_src_range(block: &mut [u64; CHUNK_WORDS], src: &Bitmap, s_lo: usize, s_hi: usize, off: i64) {
    for sc in s_lo / CHUNK_BITS..=(s_hi - 1) / CHUNK_BITS {
        let sc_base = sc * CHUNK_BITS;
        let lo = s_lo.max(sc_base);
        let hi = s_hi.min(sc_base + CHUNK_BITS);
        match src.chunk_view(sc) {
            ChunkView::Empty => {}
            ChunkView::Array(vals) => {
                let a = vals.partition_point(|&v| sc_base + (v as usize) < lo);
                let b = vals.partition_point(|&v| sc_base + (v as usize) < hi);
                for &v in &vals[a..b] {
                    let bit = (sc_base + v as usize) as i64 + off;
                    block[bit as usize / 64] |= 1u64 << (bit as usize % 64);
                }
            }
            ChunkView::Runs(rs) => {
                for &(s, e) in rs {
                    let cs = (sc_base + s as usize).max(lo);
                    let ce = (sc_base + e as usize).min(hi - 1);
                    if cs > ce {
                        continue;
                    }
                    compressed::set_range_in_block(
                        block,
                        (cs as i64 + off) as usize,
                        (ce as i64 + off) as usize,
                    );
                }
            }
            ChunkView::Words(ws) => {
                let w_lo = (lo - sc_base) / 64;
                let w_hi = (hi - 1 - sc_base) / 64;
                for wi in w_lo..=w_hi {
                    let mut w = ws.get(wi).copied().unwrap_or(0);
                    if w == 0 {
                        continue;
                    }
                    let wbase = sc_base + wi * 64;
                    if wbase < lo {
                        w &= !0u64 << (lo - wbase);
                    }
                    if wbase + 64 > hi {
                        w &= (1u64 << (hi - wbase)) - 1;
                    }
                    if w == 0 {
                        continue;
                    }
                    // Two-word scatter at bit offset `p`; parts that
                    // would land outside the block are provably zero
                    // (their source bits were masked off above), so the
                    // bounds guards never drop live bits.
                    let p = wbase as i64 + off;
                    let sh = p.rem_euclid(64) as u32;
                    let lo_idx = p.div_euclid(64);
                    let lo_w = if sh == 0 { w } else { w << sh };
                    let hi_w = if sh == 0 { 0 } else { w >> (64 - sh) };
                    if lo_w != 0 && (0..CHUNK_WORDS as i64).contains(&lo_idx) {
                        block[lo_idx as usize] |= lo_w;
                    }
                    if hi_w != 0 && (0..CHUNK_WORDS as i64).contains(&(lo_idx + 1)) {
                        block[(lo_idx + 1) as usize] |= hi_w;
                    }
                }
            }
        }
    }
}

impl PartialEq for Bitmap {
    /// Content equality, independent of layout: a compressed bitmap
    /// equals the dense bitmap with the same bits set.
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => a == b,
            _ => (0..n_chunks(self.len)).all(|ci| {
                let (a, b) = (self.chunk_view(ci), other.chunk_view(ci));
                let ca = compressed::view_card(a);
                ca == compressed::view_card(b) && compressed::and_count_views(a, b) == ca
            }),
        }
    }
}

impl Eq for Bitmap {}

impl Hash for Bitmap {
    /// Hashes the canonical word layout, so equal bitmaps hash equal
    /// regardless of layout (required by the [`PartialEq`] contract).
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        self.for_each_word(|w| w.hash(state));
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.is_compressed() { "~" } else { "" };
        write!(f, "Bitmap{tag}[{}/{}]", self.count_ones(), self.len)
    }
}

/// Iterator over set-bit indices of a [`Bitmap`].
pub struct OnesIter<'a> {
    state: IterState<'a>,
}

enum IterState<'a> {
    Dense {
        words: &'a [u64],
        word_idx: usize,
        current: u64,
    },
    Chunks {
        bitmap: &'a Bitmap,
        chunk_idx: usize,
        inner: compressed::ContainerIter<'a>,
    },
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match &mut self.state {
            IterState::Dense {
                words,
                word_idx,
                current,
            } => {
                while *current == 0 {
                    *word_idx += 1;
                    if *word_idx >= words.len() {
                        return None;
                    }
                    *current = words[*word_idx];
                }
                let bit = current.trailing_zeros() as usize;
                *current &= *current - 1; // clear lowest set bit
                Some(*word_idx * WORD_BITS + bit)
            }
            IterState::Chunks {
                bitmap,
                chunk_idx,
                inner,
            } => loop {
                if let Some(v) = inner.next() {
                    return Some(*chunk_idx * CHUNK_BITS + v as usize);
                }
                *chunk_idx += 1;
                if *chunk_idx >= n_chunks(bitmap.len) {
                    return None;
                }
                *inner = compressed::view_iter(bitmap.chunk_view(*chunk_idx));
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialise tests that flip the process-wide layout default.
    fn mode_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Run `f` twice: once with the dense default, once compressed.
    fn in_both_modes(f: impl Fn()) {
        let _guard = mode_lock();
        for compressed in [false, true] {
            set_compressed_selections(Some(compressed));
            f();
        }
        set_compressed_selections(None);
    }

    #[test]
    fn words_round_trip_and_reject_bad_layouts() {
        in_both_modes(|| {
            let bm = Bitmap::from_indices(130, [0, 63, 64, 129]);
            let rebuilt = Bitmap::from_words(bm.words().into_owned(), 130).unwrap();
            assert_eq!(rebuilt, bm);
            // Wrong word count.
            assert!(Bitmap::from_words(vec![0; 2], 130).is_none());
            assert!(Bitmap::from_words(vec![0; 4], 130).is_none());
            // Dirty tail: bit 130 set in the last word.
            let mut words = bm.words().into_owned();
            words[2] |= 1 << 2;
            assert!(Bitmap::from_words(words, 130).is_none());
            // Degenerate empty bitmap.
            assert_eq!(Bitmap::from_words(Vec::new(), 0).unwrap(), Bitmap::new(0));
        });
    }

    #[test]
    fn new_is_all_zero_ones_is_all_one() {
        in_both_modes(|| {
            let z = Bitmap::new(130);
            assert_eq!(z.count_ones(), 0);
            let o = Bitmap::ones(130);
            assert_eq!(o.count_ones(), 130);
        });
    }

    #[test]
    fn ones_tail_is_clean() {
        in_both_modes(|| {
            // 70 bits spans two words; second word must only have 6 bits set.
            let o = Bitmap::ones(70);
            assert_eq!(o.count_ones(), 70);
            assert_eq!(o.not().count_ones(), 0);
        });
    }

    #[test]
    fn set_get_unset() {
        in_both_modes(|| {
            let mut bm = Bitmap::new(100);
            bm.set(0);
            bm.set(63);
            bm.set(64);
            bm.set(99);
            assert!(bm.get(0) && bm.get(63) && bm.get(64) && bm.get(99));
            assert!(!bm.get(1));
            bm.unset(64);
            assert!(!bm.get(64));
            assert_eq!(bm.count_ones(), 3);
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::new(10).get(10);
    }

    #[test]
    fn boolean_algebra() {
        in_both_modes(|| {
            let a = Bitmap::from_indices(10, [0, 1, 2, 3]);
            let b = Bitmap::from_indices(10, [2, 3, 4, 5]);
            assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![2, 3]);
            assert_eq!(
                a.or(&b).iter_ones().collect::<Vec<_>>(),
                vec![0, 1, 2, 3, 4, 5]
            );
            assert_eq!(a.and_not(&b).iter_ones().collect::<Vec<_>>(), vec![0, 1]);
            assert_eq!(a.and_count(&b), 2);
            assert!(!a.is_disjoint(&b));
            assert!(a.and_not(&b).is_disjoint(&b));
        });
    }

    #[test]
    fn complement_partitions_universe() {
        in_both_modes(|| {
            let a = Bitmap::from_indices(77, [0, 10, 76]);
            let c = a.not();
            assert_eq!(a.count_ones() + c.count_ones(), 77);
            assert!(a.is_disjoint(&c));
            assert_eq!(a.or(&c).count_ones(), 77);
        });
    }

    #[test]
    fn subset_checks() {
        in_both_modes(|| {
            let a = Bitmap::from_indices(20, [1, 2]);
            let b = Bitmap::from_indices(20, [1, 2, 3]);
            assert!(a.is_subset_of(&b));
            assert!(!b.is_subset_of(&a));
            assert!(Bitmap::new(20).is_subset_of(&a));
        });
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        in_both_modes(|| {
            let idx = vec![0usize, 63, 64, 65, 127, 128];
            let bm = Bitmap::from_indices(200, idx.clone());
            assert_eq!(bm.iter_ones().collect::<Vec<_>>(), idx);
        });
    }

    #[test]
    fn iter_ones_empty() {
        in_both_modes(|| {
            assert_eq!(Bitmap::new(0).iter_ones().count(), 0);
            assert_eq!(Bitmap::new(64).iter_ones().count(), 0);
        });
    }

    #[test]
    fn none_detects_empty_selection() {
        in_both_modes(|| {
            assert!(Bitmap::new(100).none());
            assert!(!Bitmap::from_indices(100, [50]).none());
        });
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let _ = Bitmap::new(10).and(&Bitmap::new(11));
    }

    #[test]
    fn append_concat_round_trip() {
        in_both_modes(|| {
            // Lengths straddle word boundaries on purpose: 0, 1, 63, 64, 65, 130.
            let lens = [0usize, 1, 63, 64, 65, 130];
            let mut parts = Vec::new();
            let mut expected = Vec::new();
            let mut offset = 0usize;
            for (p, &len) in lens.iter().enumerate() {
                let idx: Vec<usize> = (0..len).filter(|i| (i + p) % 3 == 0).collect();
                for &i in &idx {
                    expected.push(offset + i);
                }
                offset += len;
                parts.push(Bitmap::from_indices(len, idx));
            }
            let glued = Bitmap::concat(parts.iter());
            assert_eq!(glued.len(), offset);
            assert_eq!(glued.iter_ones().collect::<Vec<_>>(), expected);
            // Slicing the concatenation back apart recovers every part.
            let mut start = 0usize;
            for part in &parts {
                let back = glued.slice(start, start + part.len());
                assert_eq!(&back, part);
                start += part.len();
            }
        });
    }

    #[test]
    fn append_onto_unaligned_tail() {
        in_both_modes(|| {
            // 70 bits of ones, then 70 more: the second append starts mid-word.
            let mut bm = Bitmap::ones(70);
            bm.append(&Bitmap::ones(70));
            assert_eq!(bm.len(), 140);
            assert_eq!(bm.count_ones(), 140);
            assert!(bm.tail_is_clear());
            bm.append(&Bitmap::new(3));
            assert_eq!(bm.count_ones(), 140);
            assert_eq!(bm.len(), 143);
        });
    }

    #[test]
    fn slice_matches_per_bit_extraction() {
        in_both_modes(|| {
            let bm = Bitmap::from_indices(200, (0..200).filter(|i| i % 7 == 0));
            for (start, end) in [(0, 200), (1, 64), (63, 65), (64, 128), (65, 199), (50, 50)] {
                let s = bm.slice(start, end);
                assert_eq!(s.len(), end - start);
                for i in 0..(end - start) {
                    assert_eq!(s.get(i), bm.get(start + i), "bit {i} of {start}..{end}");
                }
                assert!(s.tail_is_clear());
            }
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let _ = Bitmap::new(10).slice(5, 11);
    }

    #[test]
    fn mixed_layout_operands_agree_with_pure_dense() {
        let _guard = mode_lock();
        set_compressed_selections(Some(false));
        let a = Bitmap::from_indices(200_000, (0..200_000).filter(|i| i % 13 == 0));
        let b = Bitmap::from_indices(200_000, (0..200_000).filter(|i| i % 7 == 0));
        let (ca, cb) = (a.compress(), b.compress());
        for (x, y) in [(&a, &cb), (&ca, &b), (&ca, &cb)] {
            let got = x.and(y);
            assert!(got.is_compressed());
            assert_eq!(got, a.and(&b));
            assert_eq!(x.or(y), a.or(&b));
            assert_eq!(x.and_not(y), a.and_not(&b));
            assert_eq!(x.and_count(y), a.and_count(&b));
            assert_eq!(x.is_disjoint(y), a.is_disjoint(&b));
            assert_eq!(x.is_subset_of(y), a.is_subset_of(&b));
        }
        assert_eq!(ca.not(), a.not());
        set_compressed_selections(None);
    }

    #[test]
    fn equal_content_hashes_equal_across_layouts() {
        use std::collections::hash_map::DefaultHasher;
        let _guard = mode_lock();
        set_compressed_selections(Some(false));
        let a = Bitmap::from_indices(70_000, [0, 63, 64, 65_535, 65_536, 69_999]);
        let c = a.compress();
        assert_eq!(a, c);
        assert_eq!(c, a);
        let h = |bm: &Bitmap| {
            let mut s = DefaultHasher::new();
            bm.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&c));
        set_compressed_selections(None);
    }

    #[test]
    fn compress_to_dense_round_trip_preserves_everything() {
        let _guard = mode_lock();
        set_compressed_selections(Some(false));
        // Mixed-structure content: a sparse chunk, a solid chunk, an
        // unstructured chunk, and a partial tail chunk.
        let len = 3 * (1 << 16) + 777;
        let mut bm = Bitmap::new(len);
        for i in (0..1 << 16).step_by(1000) {
            bm.set(i); // chunk 0: sparse → array
        }
        for i in 1 << 16..2 << 16 {
            bm.set(i); // chunk 1: solid → one run
        }
        for i in (2 << 16..3 << 16).step_by(2) {
            bm.set(i); // chunk 2: alternating → words
        }
        bm.set(len - 1); // tail chunk
        let c = bm.compress();
        assert!(c.is_compressed() && !bm.is_compressed());
        assert_eq!(c, bm);
        assert_eq!(c.count_ones(), bm.count_ones());
        assert_eq!(c.to_dense(), bm);
        assert_eq!(
            c.iter_ones().collect::<Vec<_>>(),
            bm.iter_ones().collect::<Vec<_>>()
        );
        assert_eq!(c.words(), bm.words());
        // The whole point: mixed-structure content is far smaller
        // compressed (one solid chunk: 8 KiB dense vs 4 B as a run).
        assert!(c.resident_bytes() < bm.resident_bytes());
        set_compressed_selections(None);
    }

    #[test]
    fn sparse_selection_is_at_least_4x_smaller_compressed() {
        let _guard = mode_lock();
        set_compressed_selections(Some(false));
        // The sparse drill-down shape: 0.1 % of 10⁷ rows.
        let n = 10_000_000;
        let bm = Bitmap::from_indices(n, (0..n).step_by(1000));
        let c = bm.compress();
        assert_eq!(c, bm);
        assert!(
            c.resident_bytes() * 4 <= bm.resident_bytes(),
            "compressed {} B vs dense {} B",
            c.resident_bytes(),
            bm.resident_bytes()
        );
        set_compressed_selections(None);
    }

    /// Manufacture an invariant violation (as a future length-mutating
    /// refactor might): a stale bit exactly where the next push lands.
    fn dirty_tail_bitmap() -> Bitmap {
        let mut bm = Bitmap::ones(3).to_dense();
        let Repr::Dense(words) = &mut bm.repr else {
            unreachable!()
        };
        words[0] |= 1u64 << 3;
        assert!(!bm.tail_is_clear());
        bm
    }

    // `push` on a dirty tail has one pinned behaviour per build mode:
    // debug trips the assertion, release silently repairs. Each test is
    // compiled only into the mode whose behaviour it checks, so neither
    // is ever a silent no-op.

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale bits beyond len")]
    fn push_asserts_on_dirty_tail_in_debug() {
        dirty_tail_bitmap().push(false);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn push_restores_dirty_tail_in_release() {
        let mut bm = dirty_tail_bitmap();
        bm.push(false);
        assert!(!bm.get(3), "stale tail bit leaked into pushed row");
        assert_eq!(bm.count_ones(), 3);
        assert!(bm.tail_is_clear());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn push_restores_dirty_pushed_row_in_release_compressed() {
        // The compressed analogue: a stale offset at the pushed row is
        // repaired, never inherited by the new row.
        let mut bm = Bitmap::ones(3).compress();
        let Repr::Chunks(cs) = &mut bm.repr else {
            unreachable!()
        };
        cs[0].insert(3);
        assert!(!bm.tail_is_clear());
        bm.push(false);
        assert!(!bm.get(3), "stale tail bit leaked into pushed row");
        assert_eq!(bm.count_ones(), 3);
    }

    /// Every public operation preserves "no bits set beyond len" — in
    /// both layouts, and for every container kind the compressed layout
    /// can produce (the structured strategy steers chunks toward
    /// arrays, runs and word blocks).
    mod invariant_props {
        use super::*;
        use proptest::prelude::*;

        fn arb_bitmap() -> impl Strategy<Value = Bitmap> {
            proptest::collection::vec(any::<bool>(), 0usize..200).prop_map(|bits| {
                let mut bm = Bitmap::new(bits.len());
                for (i, b) in bits.into_iter().enumerate() {
                    if b {
                        bm.set(i);
                    }
                }
                bm
            })
        }

        /// Bitmaps whose chunks exercise every container kind: sparse
        /// strides (arrays), solid prefixes (runs), and alternating
        /// noise (word blocks), over lengths that straddle the 64 Ki
        /// chunk boundary.
        fn arb_structured() -> impl Strategy<Value = Bitmap> {
            (
                0usize..3,
                proptest::sample::select(vec![
                    0usize, 1, 100, 65_535, 65_536, 65_537, 70_000, 131_072,
                ]),
            )
                .prop_map(|(kind, len)| {
                    let mut bm = Bitmap::new(len);
                    match kind {
                        0 => {
                            for i in (0..len).step_by(97) {
                                bm.set(i); // arrays
                            }
                        }
                        1 => {
                            for i in 0..len * 3 / 4 {
                                bm.set(i); // runs
                            }
                        }
                        _ => {
                            for i in (0..len).step_by(2) {
                                bm.set(i); // word blocks
                            }
                        }
                    }
                    bm
                })
        }

        fn check_invariants(a: &Bitmap, b: &Bitmap, extra: &[bool]) -> Result<(), TestCaseError> {
            prop_assert!(a.tail_is_clear());
            prop_assert!(Bitmap::ones(a.len()).tail_is_clear());
            prop_assert!(a.not().tail_is_clear());
            // Same-length algebra on a re-sliced pair.
            let n = a.len().min(b.len());
            let (x, y) = (a.slice(0, n), b.slice(0, n));
            prop_assert!(x.tail_is_clear() && y.tail_is_clear());
            prop_assert!(x.and(&y).tail_is_clear());
            prop_assert!(x.or(&y).tail_is_clear());
            prop_assert!(x.and_not(&y).tail_is_clear());
            // Append/concat across arbitrary (unaligned) offsets.
            let mut glued = a.clone();
            glued.append(b);
            prop_assert!(glued.tail_is_clear());
            prop_assert_eq!(glued.count_ones(), a.count_ones() + b.count_ones());
            prop_assert!(Bitmap::concat([a, b, a]).tail_is_clear());
            // Incremental pushes on top of everything above.
            let mut grown = glued.clone();
            for &bit in extra {
                grown.push(bit);
                prop_assert!(grown.tail_is_clear());
            }
            let pushed_ones = extra.iter().filter(|&&v| v).count();
            prop_assert_eq!(grown.count_ones(), glued.count_ones() + pushed_ones);
            // Slice ↔ append round-trip at an arbitrary split point.
            let mid = glued.len() / 2;
            let (lo, hi) = (glued.slice(0, mid), glued.slice(mid, glued.len()));
            prop_assert!(lo.tail_is_clear() && hi.tail_is_clear());
            let mut rejoined = lo;
            rejoined.append(&hi);
            prop_assert_eq!(&rejoined, &glued);
            Ok(())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn every_public_op_keeps_tail_clear(
                a in arb_bitmap(),
                b in arb_bitmap(),
                extra in proptest::collection::vec(any::<bool>(), 0..130),
            ) {
                // Dense layout (whatever the ambient default, force
                // both layouts over the same content)…
                check_invariants(&a.to_dense(), &b.to_dense(), &extra)?;
                // …and the compressed layout.
                check_invariants(&a.compress(), &b.compress(), &extra)?;
            }

            #[test]
            fn every_container_kind_keeps_tail_clear(
                a in arb_structured(),
                b in arb_structured(),
                extra in proptest::collection::vec(any::<bool>(), 0..70),
            ) {
                check_invariants(&a.compress(), &b.compress(), &extra)?;
            }
        }
    }
}
