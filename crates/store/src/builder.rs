//! Row-at-a-time construction of columnar tables.

use crate::column::Column;
use crate::datatype::DataType;
use crate::error::{StoreError, StoreResult};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

/// Accumulates rows and produces an immutable [`Table`].
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl TableBuilder {
    /// Start building a table with the given name and an empty schema.
    pub fn new(name: impl Into<String>) -> TableBuilder {
        TableBuilder {
            name: name.into(),
            schema: Schema::new(),
            columns: Vec::new(),
            rows: 0,
        }
    }

    /// Declare a column. Panics if rows were already pushed (schema is
    /// fixed before data) or on duplicate names — both programming errors.
    pub fn add_column(&mut self, name: &str, ty: DataType) -> &mut Self {
        assert_eq!(self.rows, 0, "cannot add columns after pushing rows");
        self.schema
            .add(name, ty)
            .unwrap_or_else(|e| panic!("add_column: {e}"));
        self.columns.push(Column::new(name, ty));
        self
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows were pushed yet.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append a fully populated row.
    pub fn push_row(&mut self, values: Vec<Value>) -> StoreResult<()> {
        self.push_row_opt(values.into_iter().map(Some).collect())
    }

    /// Append a row that may contain nulls.
    pub fn push_row_opt(&mut self, values: Vec<Option<Value>>) -> StoreResult<()> {
        if values.len() != self.schema.arity() {
            return Err(StoreError::ArityMismatch {
                expected: self.schema.arity(),
                found: values.len(),
            });
        }
        // Validate all fields before mutating any column so a failed push
        // leaves the builder consistent.
        for (col, v) in self.columns.iter().zip(&values) {
            if let Some(v) = v {
                if v.data_type() != col.data_type() {
                    return Err(StoreError::TypeMismatch {
                        column: col.name().to_string(),
                        expected: col.data_type().name().into(),
                        found: v.data_type().name().into(),
                    });
                }
            }
        }
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Finish and seal the table.
    pub fn finish(self) -> Table {
        Table::from_parts(self.name, self.schema, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_table() {
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int)
            .add_column("s", DataType::Str);
        b.push_row(vec![Value::Int(1), Value::str("x")]).unwrap();
        b.push_row_opt(vec![None, Some(Value::str("y"))]).unwrap();
        let t = b.finish();
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(1, "a").unwrap(), None);
        assert_eq!(t.value(1, "s").unwrap(), Some(Value::str("y")));
    }

    #[test]
    fn arity_mismatch_rejected_without_corruption() {
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int);
        assert!(b.push_row(vec![]).is_err());
        assert!(b.push_row(vec![Value::Int(1), Value::Int(2)]).is_err());
        assert_eq!(b.len(), 0);
        b.push_row(vec![Value::Int(1)]).unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn type_mismatch_checked_before_mutation() {
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int)
            .add_column("b", DataType::Int);
        // Second field is bad; first column must not grow.
        assert!(b.push_row(vec![Value::Int(1), Value::str("bad")]).is_err());
        b.push_row(vec![Value::Int(1), Value::Int(2)]).unwrap();
        let t = b.finish();
        assert_eq!(t.len(), 1);
        assert_eq!(t.column("a").unwrap().len(), 1);
        assert_eq!(t.column("b").unwrap().len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot add columns")]
    fn add_column_after_rows_panics() {
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int);
        b.push_row(vec![Value::Int(1)]).unwrap();
        b.add_column("late", DataType::Int);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_column_panics() {
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int)
            .add_column("a", DataType::Str);
    }

    #[test]
    fn empty_table_is_valid() {
        let mut b = TableBuilder::new("t");
        b.add_column("a", DataType::Int);
        let t = b.finish();
        assert!(t.is_empty());
        assert_eq!(t.all_rows().count_ones(), 0);
    }
}
